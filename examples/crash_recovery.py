"""Crash recovery with encrypted indexes (Section 4.5).

Walks through all three recovery outcomes the paper describes when a crash
leaves an uncommitted transaction touching a table with an encrypted range
index, and the enclave has no keys (the client only sends keys when it
runs queries):

1. without CTR — the transaction is **deferred**, holds its locks, and
   blocks log truncation until the client connects (supplying keys);
2. with CTR — the database is available immediately; the **version
   cleaner** retries in the background until keys arrive;
3. **index invalidation** — policy-forced resolution without keys.

Run:  python examples/crash_recovery.py
"""

from repro.attestation import HostGuardianService, HostMachine
from repro.attestation.hgs import AttestationPolicy
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import Enclave, EnclaveBinary
from repro.errors import LockTimeoutError, TransactionError
from repro.keys import default_registry
from repro.client import connect
from repro.sqlengine import SqlServer
from repro.tools import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


def build(ctr_enabled: bool):
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(
        enclave=enclave, host_machine=host, hgs=hgs,
        ctr_enabled=ctr_enabled, lock_timeout_s=0.2,
    )
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)
    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/recov")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE R (k int PRIMARY KEY, "
        f"v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    conn.execute_ddl("CREATE NONCLUSTERED INDEX R_V ON R(v)")
    for k in range(8):
        conn.execute("INSERT INTO R (k, v) VALUES (@k, @v)", {"k": k, "v": k * 11})
    return server, conn, binary


def crash_mid_transaction(server, conn):
    """Leave an uncommitted insert in the log, then crash."""
    conn.begin()
    conn.execute("INSERT INTO R (k, v) VALUES (@k, @v)", {"k": 99, "v": 999})
    server.engine.checkpoint()
    # New enclave after "reboot" — keyless until a client connects.
    new_enclave = Enclave(server.enclave.binary)
    server.crash()
    server.engine.enclave = new_enclave
    server.enclave = new_enclave
    return server.recover()


def scenario_deferred() -> None:
    print("--- scenario 1: deferred transactions (CTR off) ---")
    server, conn, binary = build(ctr_enabled=False)
    report = crash_mid_transaction(server, conn)
    print("recovery report:", report)
    assert report.deferred, "transaction should be deferred"

    session = server.connect()
    try:
        session.execute("BEGIN TRANSACTION")
        # The deferred transaction holds X locks on the rows it touched.
        session.execute("DELETE FROM R WHERE k = @k", {"k": 99})
        print("unexpected: delete went through")
    except (LockTimeoutError, TransactionError) as exc:
        print("update blocked by deferred txn:", type(exc).__name__)
    try:
        server.engine.truncate_log()
    except TransactionError as exc:
        print("log truncation blocked:", str(exc)[:50], "...")

    # The client connects and runs a query → keys flow to the enclave →
    # deferred transactions resolve.
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    fresh = connect(server, default_registry_with(conn), attestation_policy=policy)
    fresh.cek_cache = conn.cek_cache  # same client process: cached CEKs
    fresh.registry = conn.registry
    r = fresh.execute("SELECT k FROM R WHERE v = @v", {"v": 33})
    print("query after reconnect:", r.rows)
    assert not server.engine.deferred, "deferred txns resolved by key arrival"
    print("rows now:", sum(1 for __ in server.engine.scan("R")), "(99 rolled back)")
    server.engine.truncate_log()
    print("log truncated OK\n")


def default_registry_with(conn):
    return conn.registry


def scenario_ctr() -> None:
    print("--- scenario 2: constant-time recovery (CTR on) ---")
    server, conn, __ = build(ctr_enabled=True)
    report = crash_mid_transaction(server, conn)
    print("recovery report:", report)
    assert report.ctr_reverted and not report.deferred
    # Database fully available immediately; the version cleaner retries.
    cleaned, pending = server.engine.run_version_cleaner()
    print(f"version cleaner pass: cleaned={cleaned} pending={pending}")
    server.enclave.sqlos.install_key("CEK", conn.cek_cache.get("CEK"))
    cleaned, pending = server.engine.run_version_cleaner()
    print(f"after keys arrive: cleaned={cleaned} pending={pending}\n")


def scenario_invalidation() -> None:
    print("--- scenario 3: index invalidation policy ---")
    server, conn, __ = build(ctr_enabled=False)
    report = crash_mid_transaction(server, conn)
    assert report.deferred
    invalidated = server.engine.apply_invalidation_policy(max_log_records=0)
    print("invalidated indexes:", invalidated)
    assert not server.engine.deferred
    server.engine.truncate_log()
    print("deferred txns force-resolved, log truncated OK")
    # The invalidated index is gone from planning; queries still work by scan.
    r = server.connect().execute("SELECT k FROM R WHERE k = 3", {})
    print("query via scan:", r.rows)


def main() -> None:
    scenario_deferred()
    scenario_ctr()
    scenario_invalidation()
    print("OK")


if __name__ == "__main__":
    main()
