"""Online key rotation and in-place initial encryption (Sections 1.1, 2.4.2).

Demonstrates the AEv2 usability win the paper leads with:

1. a table starts *unencrypted*; ``ALTER TABLE ALTER COLUMN`` encrypts it
   in place through the enclave — no client round-trip per row, gated on
   the client's signed authorization of the exact DDL text (Section 3.2);
2. a **CMK rotation** re-wraps only the CEK (no data touched), with the
   CEK temporarily encrypted under both CMKs so clients see no downtime;
3. a **CEK rotation** re-encrypts the data, again in place via the enclave;
4. for contrast, the AEv1-style client round-trip path encrypts a column
   the slow way (the one that took "as long as a week" at terabyte scale).

Run:  python examples/key_rotation.py
"""

from repro.attestation import HostGuardianService, HostMachine
from repro.attestation.hgs import AttestationPolicy
from repro.crypto.aead import EncryptionScheme
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import Enclave, EnclaveBinary
from repro.keys import default_registry
from repro.client import connect
from repro.sqlengine import SqlServer
from repro.tools import (
    client_side_initial_encryption,
    provision_cek,
    provision_cmk,
    rotate_cek_in_place,
    rotate_cmk,
)

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


def main() -> None:
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)

    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)

    cmk = provision_cmk(conn, vault, "CMK1", "https://vault.azure.net/keys/cmk-1")
    provision_cek(conn, vault, cmk, "CEK1")

    # A plaintext table with data already in it.
    conn.execute_ddl("CREATE TABLE PATIENT (pid int PRIMARY KEY, diagnosis varchar(40))")
    for pid, diagnosis in [(1, "hypertension"), (2, "arrhythmia"), (3, "asthma")]:
        conn.execute(
            "INSERT INTO PATIENT (pid, diagnosis) VALUES (@p, @d)",
            {"p": pid, "d": diagnosis},
        )

    # 1. In-place initial encryption through the enclave.
    encrypts_before = enclave.counters.cell_encrypts
    conn.execute_ddl(
        "ALTER TABLE PATIENT ALTER COLUMN diagnosis varchar(40) "
        f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK1, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}')",
        authorize_enclave=True,
    )
    print(f"initial encryption: {enclave.counters.cell_encrypts - encrypts_before} "
          "cells encrypted in place, zero client round-trips per row")

    # Queries keep working transparently.
    r = conn.execute("SELECT pid FROM PATIENT WHERE diagnosis = @d", {"d": "asthma"})
    assert r.rows == [(3,)]
    print("query after encryption:", r.rows)

    # 2. CMK rotation: re-wrap the CEK only; data untouched.
    new_cmk = provision_cmk(conn, vault, "CMK2", "https://vault.azure.net/keys/cmk-2")
    decrypts_before = enclave.counters.cell_decrypts
    rotate_cmk(conn, vault, "CEK1", old_cmk=cmk, new_cmk=new_cmk)
    print(f"CMK rotation: data decrypts performed = "
          f"{enclave.counters.cell_decrypts - decrypts_before} (expected 0)")
    assert server.catalog.cek("CEK1").cmk_names() == ["CMK2"]

    # 3. CEK rotation: re-encrypt the column in place via the enclave.
    provision_cek(conn, vault, new_cmk, "CEK2")
    conn.cek_cache.invalidate("CEK1")  # force re-fetch through the new CMK
    rotate_cek_in_place(conn, "PATIENT", "diagnosis", "varchar(40)", "CEK2")
    r = conn.execute("SELECT pid FROM PATIENT WHERE diagnosis = @d", {"d": "arrhythmia"})
    assert r.rows == [(2,)]
    print("query after CEK rotation:", r.rows)

    # 4. The AEv1 contrast: client-side round-trip encryption.
    conn.execute_ddl("CREATE TABLE LEGACY (k int PRIMARY KEY, note varchar(30))")
    for k in range(5):
        conn.execute("INSERT INTO LEGACY (k, note) VALUES (@k, @n)",
                     {"k": k, "n": f"note-{k}"})
    cmk_legacy = provision_cmk(
        conn, vault, "LegacyCMK", "https://vault.azure.net/keys/legacy",
        allow_enclave_computations=False,
    )
    material = provision_cek(conn, vault, cmk_legacy, "LegacyCEK")
    cells = client_side_initial_encryption(
        conn, "LEGACY", "note", "LegacyCEK", material,
        EncryptionScheme.DETERMINISTIC, roundtrip_latency_s=0.0,
    )
    print(f"client-side (AEv1-style) initial encryption: {cells} cells, "
          "with a full client round-trip of the data")
    r = conn.execute("SELECT k FROM LEGACY WHERE note = @n", {"n": "note-3"})
    assert r.rows == [(3,)]
    print("DET equality after client-side encryption:", r.rows)
    print("OK")


if __name__ == "__main__":
    main()
