"""The strong adversary's view (Sections 2.6, 3.2, Figure 5).

Attaches the strong-adversary simulation to a running AE system and shows
exactly what leaks per operation class — and what doesn't:

* the plaintext of encrypted columns appears on **no** observable surface
  (disk, log, buffer pool, wire);
* DET columns leak their frequency distribution;
* enclave range processing leaks the ordering (reconstructed live);
* the encryption oracle is unusable without client authorization.

Run:  python examples/adversary_view.py
"""

from repro.attestation import HostGuardianService, HostMachine
from repro.attestation.hgs import AttestationPolicy
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import Enclave, EnclaveBinary
from repro.errors import EnclaveError
from repro.keys import default_registry
from repro.client import connect
from repro.security import (
    StrongAdversary,
    det_frequency_distribution,
    reconstruct_order,
)
from repro.sqlengine import SqlServer
from repro.sqlengine.cells import Ciphertext
from repro.tools import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


def main() -> None:
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)

    adversary = StrongAdversary()
    adversary.attach(server)

    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)

    cmk = provision_cmk(conn, vault, "CMK", "https://vault.azure.net/keys/adv")
    provision_cek(conn, vault, cmk, "CEK")
    conn.execute_ddl(
        "CREATE TABLE S (k int PRIMARY KEY, "
        f"city varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Deterministic, ALGORITHM = '{ALGO}'), "
        f"salary int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = CEK, ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )

    cities = ["seattle", "seattle", "seattle", "zurich", "zurich", "portland"]
    salaries = [120, 95, 180, 75, 140, 60]
    for k, (city, salary) in enumerate(zip(cities, salaries)):
        conn.execute("INSERT INTO S (k, city, salary) VALUES (@k, @c, @s)",
                     {"k": k, "c": city, "s": salary})

    # 0. Operational guarantee: plaintext never hits an observable surface.
    secrets = [c.encode() for c in set(cities)]
    exposures = adversary.plaintext_exposures(secrets)
    print("plaintext exposures of encrypted values:", exposures or "none")

    # 1. DET leakage: frequency distribution, straight off the stored blobs.
    det_cells = [
        row[1] for __, row in server.engine.scan("S") if isinstance(row[1], Ciphertext)
    ]
    print("DET frequency histogram recovered:", det_frequency_distribution(det_cells),
          "(true: [3, 2, 1])")

    # 2. RND range leakage: build a range index; the sort leaks the order.
    conn.execute_ddl("CREATE NONCLUSTERED INDEX S_SAL ON S(salary)")
    order = reconstruct_order(adversary, "CEK")
    print(f"ordering reconstructed from {order.comparisons_used} observed "
          f"comparisons over {len(order.ordered_envelopes)} ciphertexts")

    # 3. The enclave's encryption oracle refuses unauthorized use.
    try:
        enclave.encrypt_for_ddl("ALTER TABLE S ...", "CEK", b"\x01\x00", None)
    except EnclaveError as exc:
        print("unauthorized Encrypt refused:", str(exc)[:60], "...")

    # 4. Metadata is NOT hidden (the paper concedes this).
    print("adversary reads table names:", [t.name for t in server.catalog.tables()])
    print("adversary reads row count:", sum(1 for __ in server.engine.scan("S")))
    print("OK")


if __name__ == "__main__":
    main()
