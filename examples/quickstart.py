"""Quickstart: the paper's running example, end to end.

Builds the full Figure 3 architecture — enclave, HGS, SQL Server, AE-aware
driver — provisions the Figure 1 key hierarchy and table, and runs the
``select * from T where value = @v`` query over a randomized-encrypted
column through the enclave.

Run:  python examples/quickstart.py
"""

from repro.attestation import HostGuardianService, HostMachine
from repro.attestation.hgs import AttestationPolicy
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import Enclave, EnclaveBinary
from repro.keys import default_registry
from repro.client import connect
from repro.sqlengine import SqlServer
from repro.tools import provision_cek, provision_cmk


def main() -> None:
    # --- the trusted pieces: enclave binary, host machine, HGS -------------
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)

    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())  # offline whitelist step

    # --- the untrusted piece: SQL Server ------------------------------------
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)

    # --- the client: key providers + AE driver ------------------------------
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)

    # --- Figure 1: CMK, CEK, and an encrypted table -------------------------
    cmk = provision_cmk(conn, vault, "MyCMK", "https://vault.azure.net/keys/mycmk")
    provision_cek(conn, vault, cmk, "MyCEK")
    conn.execute_ddl(
        "CREATE TABLE T(id int PRIMARY KEY, "
        "value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = MyCEK, "
        "ENCRYPTION_TYPE = Randomized, "
        "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"
    )

    # --- transparent inserts: the driver encrypts @v, SQL never sees 10/20/30
    for i, v in [(1, 10), (2, 20), (3, 30)]:
        conn.execute("INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": v})

    # --- the running example: equality over RND via the enclave -------------
    result = conn.execute("SELECT * FROM T WHERE value = @v", {"v": 20})
    print("select * from T where value = @v  ->", result.rows)
    assert result.rows == [(2, 20)]

    # --- range queries work too (Section 2.4.3) ------------------------------
    result = conn.execute("SELECT id FROM T WHERE value > @lo", {"lo": 15})
    print("values > 15 ->", sorted(r[0] for r in result.rows))

    # --- what the server actually stores ------------------------------------
    server.engine.checkpoint()
    disk = server.engine.disk.raw_bytes()
    print("plaintext 20 on disk?", b"\x00\x00\x00\x00\x00\x00\x00\x14" in disk)
    print("enclave boundary counters:", enclave.counters.snapshot())
    print("driver round-trips:", conn.stats.total_roundtrips)
    print("OK")


if __name__ == "__main__":
    main()
