"""A banking scenario: PII columns encrypted, analytics on the rest.

Models the customer pattern Section 1.2 describes (financial institutions
encrypting only personally identifiable columns): account holders' names,
SSNs, and addresses are encrypted — SSN deterministically (exact-match
lookups without the enclave), names randomized with enclave-enabled keys
(LIKE search, sorting client-side) — while balances and branch data stay
plaintext for unrestricted analytics.

Run:  python examples/pii_banking.py
"""

from repro.attestation import HostGuardianService, HostMachine
from repro.attestation.hgs import AttestationPolicy
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import Enclave, EnclaveBinary
from repro.keys import default_registry
from repro.client import connect
from repro.sqlengine import SqlServer
from repro.tools import provision_cek, provision_cmk

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

HOLDERS = [
    (1, "Ada Lampson", "514-22-9076", "12 Turing Rd", "Seattle", 9_200.50),
    (2, "Grace Moore", "301-44-1187", "7 Loop Ave", "Seattle", 120.75),
    (3, "Alan Stroud", "514-87-3321", "99 Vector St", "Zurich", 54_310.00),
    (4, "Ada Vaughan", "622-19-4455", "3 Branch Way", "Zurich", 87.25),
    (5, "Lin Whitfield", "301-90-8841", "41 Cache Ln", "Portland", 15_400.10),
]


def main() -> None:
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)

    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    # The bank restricts CMKs to its own vault paths (Section 4.1 control).
    conn = connect(
        server,
        registry,
        attestation_policy=policy,
        trusted_cmk_key_paths=("https://vault.azure.net/keys/bank-cmk",),
    )

    cmk = provision_cmk(conn, vault, "BankCMK", "https://vault.azure.net/keys/bank-cmk")
    provision_cek(conn, vault, cmk, "PiiCEK")

    conn.execute_ddl(
        "CREATE TABLE ACCOUNT ("
        "  acct_id int PRIMARY KEY,"
        f" holder_name varchar(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PiiCEK, ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'),"
        f" ssn varchar(11) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PiiCEK, ENCRYPTION_TYPE = Deterministic, ALGORITHM = '{ALGO}'),"
        f" street varchar(40) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PiiCEK, ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'),"
        "  city varchar(20),"
        "  balance float)"
    )
    # Range index on the encrypted holder name: enclave-ordered B+-tree.
    conn.execute_ddl("CREATE NONCLUSTERED INDEX ACCT_NAME ON ACCOUNT(holder_name)")

    for acct_id, name, ssn, street, city, balance in HOLDERS:
        conn.execute(
            "INSERT INTO ACCOUNT (acct_id, holder_name, ssn, street, city, balance) "
            "VALUES (@a, @n, @s, @st, @c, @b)",
            {"a": acct_id, "n": name, "s": ssn, "st": street, "c": city, "b": balance},
        )

    # 1. Exact SSN lookup — DET equality, no enclave involved.
    before = enclave.counters.evals
    r = conn.execute("SELECT acct_id, holder_name FROM ACCOUNT WHERE ssn = @s",
                     {"s": "514-87-3321"})
    print("SSN lookup:", r.rows, f"(enclave evals used: {enclave.counters.evals - before})")

    # 2. Name prefix search — LIKE over RND through the enclave.
    r = conn.execute("SELECT acct_id, holder_name FROM ACCOUNT WHERE holder_name LIKE @p",
                     {"p": "Ada %"})
    print("Names 'Ada %':", sorted(r.rows))

    # 3. Plaintext analytics unaffected by encryption.
    r = conn.execute(
        "SELECT city, COUNT(*) AS accounts, SUM(balance) AS total "
        "FROM ACCOUNT GROUP BY city ORDER BY city", {}
    )
    print("Per-city totals:", r.rows)

    # 4. Mixed predicate: plaintext range AND encrypted equality.
    r = conn.execute(
        "SELECT acct_id FROM ACCOUNT WHERE balance > @b AND holder_name = @n",
        {"b": 1000.0, "n": "Ada Lampson"},
    )
    print("Rich Ada Lampson accounts:", r.rows)

    # 5. The operator's view: encrypted blobs only.
    r_server = server.connect().execute("SELECT ssn FROM ACCOUNT WHERE acct_id = 1", {})
    print("What a DBA sees for SSN #1:", r_server.rows[0][0])
    print("OK")


if __name__ == "__main__":
    main()
