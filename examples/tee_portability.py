"""TEE portability: the same enclave attested via VBS *and* SGX.

Section 2.6 of the paper: "The design of AE is not dependent on a specific
TEE implementation allowing us to transition to a more secure
implementation if necessary" — and Section 2.1 notes SGX support was in
progress. This example loads ONE enclave and attests it through both
chains of trust:

* VBS: TPM boot measurement → HGS whitelist → health certificate →
  hypervisor-signed enclave report;
* SGX: CPU-signed quote → attestation-service verification report.

Both produce a shared secret the enclave accepts CEKs under; the enclave
code, the CEK channel, and query processing are identical.

Run:  python examples/tee_portability.py
"""

from repro.attestation import (
    AttestationPolicy,
    HostGuardianService,
    HostMachine,
    SgxAttestationService,
    SgxMachine,
    SgxPolicy,
    server_attest,
    server_attest_sgx,
    verify_attestation_and_derive_secret,
    verify_sgx_attestation_and_derive_secret,
)
from repro.crypto.aead import generate_cek_material
from repro.crypto.dh import DiffieHellman
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import CekPackage, Enclave, EnclaveBinary, seal_package


def main() -> None:
    author_key = RsaKeyPair.generate(1024)
    binary = EnclaveBinary.build(author_key)
    enclave = Enclave(binary)  # one enclave, two attestation roots

    # --- path 1: VBS (hypervisor root of trust) -----------------------------
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    vbs_policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))

    client_dh = DiffieHellman()
    info = server_attest(host, hgs, enclave, client_dh.public_key)
    vbs_secret = verify_attestation_and_derive_secret(
        info, client_dh, hgs.signing_public_key, vbs_policy
    )
    print("VBS chain verified: HGS cert → host-signed report → enclave keys")

    cek = generate_cek_material()
    enclave.install_package(
        info.session_id,
        seal_package(vbs_secret, CekPackage(nonce=0, ceks=(("VbsCEK", cek),))),
    )
    print("  CEK installed over the VBS-attested channel:",
          "VbsCEK" in enclave.installed_ceks())

    # --- path 2: SGX (CPU root of trust) -------------------------------------
    machine = SgxMachine.provision()
    ias = SgxAttestationService()
    ias.register_cpu(machine.cpu_key.public)
    sgx_policy = SgxPolicy(trusted_mr_signers=frozenset({binary.author_id}))

    client_dh2 = DiffieHellman()
    sgx_info = server_attest_sgx(machine, ias, enclave, client_dh2.public_key)
    sgx_secret = verify_sgx_attestation_and_derive_secret(
        sgx_info, client_dh2, ias.signing_public_key, sgx_policy
    )
    print("SGX chain verified: CPU quote → IAS verification report → enclave keys")

    enclave.install_package(
        sgx_info.session_id,
        seal_package(sgx_secret, CekPackage(nonce=0, ceks=(("SgxCEK", cek),))),
    )
    print("  CEK installed over the SGX-attested channel:",
          "SgxCEK" in enclave.installed_ceks())

    # --- the enclave itself never changed -------------------------------------
    print("enclave sessions served:", enclave.counters.sessions_started)
    print("same binary, same measurement:",
          sgx_info.verification_report.quote.mr_enclave == binary.binary_hash)
    print("OK")


if __name__ == "__main__":
    main()
