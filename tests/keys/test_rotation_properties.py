"""Property suite for the online rotation invariant.

Hypothesis drives random interleavings of client DML (insert / update /
delete) with rotation batch steps, checking after **every** step:

* **exactly-one-key** — each stored envelope MAC-verifies under exactly
  one CEK, and that CEK is one of {old, new}: no cell is ever left
  unreadable, double-keyed, or keyed under an unrelated CEK;
* **model agreement** — a fresh client's view of the table equals the
  plain-Python model of the applied DML, regardless of how far the
  sweep has progressed;

and at the end, after the sweep runs dry:

* **terminal all-new** — every surviving row is under the new CEK, the
  version bumped exactly once, and the values still match the model.

``encrypt`` jobs get the same treatment with "plaintext" standing in for
the old key — the only phase plaintext cells are ever tolerated.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto.aead import CellCipher
from repro.sqlengine.cells import Ciphertext
from repro.tools.rotation import encrypt_column_online, rotate_cek_online

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

# Keyspace deliberately small so updates/deletes collide with inserts and
# with rows the sweep has already (or not yet) visited.
IDS = st.integers(min_value=0, max_value=24)
VALUES = st.integers(min_value=-1000, max_value=1000)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), IDS, VALUES),
        st.tuples(st.just("update"), IDS, VALUES),
        st.tuples(st.just("delete"), IDS, st.just(0)),
        st.tuples(st.just("step"), st.just(0), st.just(0)),
    ),
    min_size=1,
    max_size=24,
)

PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture,
        HealthCheck.too_slow,
    ],
)


def census(stack, table: str = "T", column: str = "value") -> dict[str, int]:
    """Envelope counts by owning CEK; asserts the exactly-one invariant."""
    engine = stack.server.engine
    slot = engine.table(table).schema.column_index(column)
    ciphers = {name: CellCipher(mat) for name, mat in stack.materials.items()}
    counts: dict[str, int] = {}
    for __, row in engine.scan(table):
        cell = row[slot]
        if not isinstance(cell, Ciphertext):
            counts["<plaintext>"] = counts.get("<plaintext>", 0) + 1
            continue
        owners = [n for n, c in ciphers.items() if c.verify(cell.envelope)]
        assert len(owners) == 1, f"cell verifies under {owners!r}"
        counts[owners[0]] = counts.get(owners[0], 0) + 1
    return counts


def apply_op(conn, model: dict[int, int], op) -> None:
    kind, row_id, value = op
    if kind == "insert":
        if row_id in model:
            return  # PK collision: the model skips it, so does the client
        conn.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": row_id, "v": value}
        )
        model[row_id] = value
    elif kind == "update":
        conn.execute(
            "UPDATE T SET value = @v WHERE id = @id", {"id": row_id, "v": value}
        )
        if row_id in model:
            model[row_id] = value
    elif kind == "delete":
        conn.execute("DELETE FROM T WHERE id = @id", {"id": row_id})
        model.pop(row_id, None)


def assert_view_matches_model(stack, model: dict[int, int]) -> None:
    conn = stack.fresh_conn()
    rows = conn.execute("SELECT id, value FROM T").rows
    assert dict(rows) == model
    assert len(rows) == len(model)


def drain(stack, rid) -> None:
    while True:
        more, __ = stack.server.rotate_step(rid)
        if not more:
            return


class TestRotationProperty:
    @PROPERTY_SETTINGS
    @given(initial=st.integers(min_value=0, max_value=12), ops=OPS, data=st.data())
    def test_every_cell_under_exactly_one_of_old_or_new(
        self, rotation_stack_factory, initial, ops, data
    ):
        stack = rotation_stack_factory()
        stack.conn.execute_ddl(
            "CREATE TABLE T(id int PRIMARY KEY, value int ENCRYPTED WITH "
            "(COLUMN_ENCRYPTION_KEY = RotOldCEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}'))"
        )
        model: dict[int, int] = {}
        for i in range(initial):
            stack.conn.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 7}
            )
            model[i] = i * 7

        batch = data.draw(st.integers(min_value=1, max_value=6), label="batch_size")
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=batch, run=False
        )
        done = False
        for op in ops:
            if op[0] == "step":
                if not done:
                    more, __ = stack.server.rotate_step(rid)
                    done = not more
            else:
                apply_op(stack.conn, model, op)
            counts = census(stack)
            assert set(counts) <= {"RotOldCEK", "RotNewCEK"}, counts
            assert sum(counts.values()) == len(model)
            assert_view_matches_model(stack, model)

        if not done:
            drain(stack, rid)
        counts = census(stack)
        assert counts.get("RotOldCEK", 0) == 0
        assert counts.get("RotNewCEK", 0) == len(model)
        assert stack.server.cek_versions() == {"RotNewCEK": 2}
        assert not any(s.active for s in stack.server.rotation_states())
        assert_view_matches_model(stack, model)

    @PROPERTY_SETTINGS
    @given(initial=st.integers(min_value=1, max_value=10), ops=OPS)
    def test_initial_encryption_tolerates_plaintext_only_while_live(
        self, rotation_stack_factory, initial, ops
    ):
        stack = rotation_stack_factory()
        stack.conn.execute_ddl("CREATE TABLE T(id int PRIMARY KEY, value int)")
        model: dict[int, int] = {}
        for i in range(initial):
            stack.conn.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 7}
            )
            model[i] = i * 7

        rid = encrypt_column_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=3, run=False
        )
        done = False
        for op in ops:
            if op[0] == "step":
                if not done:
                    more, __ = stack.server.rotate_step(rid)
                    done = not more
            else:
                apply_op(stack.conn, model, op)
            counts = census(stack)
            assert set(counts) <= {"<plaintext>", "RotNewCEK"}, counts
            assert sum(counts.values()) == len(model)

        if not done:
            drain(stack, rid)
        counts = census(stack)
        assert counts.get("<plaintext>", 0) == 0
        assert counts.get("RotNewCEK", 0) == len(model)
        assert_view_matches_model(stack, model)
