"""CEK metadata: wrapping, signatures, and dual-CMK rotation states."""

import dataclasses

import pytest

from repro.errors import KeyError_, SecurityViolation
from repro.keys.cek import CekEncryptedValue, ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey


@pytest.fixture()
def vault(registry):
    return registry.get("AZURE_KEY_VAULT_PROVIDER")


class TestCekLifecycle:
    def test_create_returns_material_and_metadata(self, enclave_cmk, vault):
        cek, material = ColumnEncryptionKey.create("K", enclave_cmk, vault)
        assert len(material) == 32
        assert cek.cmk_names() == [enclave_cmk.name]
        # The metadata never contains the raw material.
        assert material not in cek.encrypted_values[0].encrypted_value

    def test_decrypt_roundtrip(self, enclave_cmk, vault, registry):
        cek, material = ColumnEncryptionKey.create("K2", enclave_cmk, vault)
        value = cek.value_for_cmk(enclave_cmk.name)
        assert value.decrypt(enclave_cmk, registry) == material

    def test_unsupported_algorithm_rejected(self, enclave_cmk, vault):
        with pytest.raises(KeyError_):
            CekEncryptedValue.create(enclave_cmk, vault, bytes(32), algorithm="RSA_PKCS1")

    def test_signature_tamper_rejected(self, enclave_cmk, vault, registry):
        cek, __ = ColumnEncryptionKey.create("K3", enclave_cmk, vault)
        value = cek.encrypted_values[0]
        tampered = dataclasses.replace(value, encrypted_value=b"\x00" * len(value.encrypted_value))
        with pytest.raises(SecurityViolation):
            tampered.decrypt(enclave_cmk, registry)

    def test_missing_cmk_value_rejected(self, enclave_cmk, vault):
        cek, __ = ColumnEncryptionKey.create("K4", enclave_cmk, vault)
        with pytest.raises(KeyError_):
            cek.value_for_cmk("OtherCMK")


class TestRotationStates:
    @pytest.fixture()
    def second_cmk(self, vault) -> ColumnMasterKey:
        try:
            vault.create_key("https://vault.azure.net/keys/rotation-target", bits=1024)
        except Exception:
            pass  # session-scoped vault: key persists across tests
        return ColumnMasterKey.create(
            "RotCMK", vault, "https://vault.azure.net/keys/rotation-target",
            allow_enclave_computations=True,
        )

    def test_dual_encryption_during_rotation(self, enclave_cmk, second_cmk, vault, registry):
        cek, material = ColumnEncryptionKey.create("K5", enclave_cmk, vault)
        second_value = CekEncryptedValue.create(second_cmk, vault, material)
        cek.add_encrypted_value(second_value)
        # Both CMKs can unwrap — no downtime mid-rotation (Section 2.4.2).
        assert cek.value_for_cmk(enclave_cmk.name).decrypt(enclave_cmk, registry) == material
        assert cek.value_for_cmk(second_cmk.name).decrypt(second_cmk, registry) == material

    def test_complete_rotation_drops_old(self, enclave_cmk, second_cmk, vault):
        cek, material = ColumnEncryptionKey.create("K6", enclave_cmk, vault)
        cek.add_encrypted_value(CekEncryptedValue.create(second_cmk, vault, material))
        cek.drop_encrypted_value(enclave_cmk.name)
        assert cek.cmk_names() == [second_cmk.name]

    def test_cannot_drop_only_value(self, enclave_cmk, vault):
        cek, __ = ColumnEncryptionKey.create("K7", enclave_cmk, vault)
        with pytest.raises(KeyError_):
            cek.drop_encrypted_value(enclave_cmk.name)

    def test_duplicate_cmk_value_rejected(self, enclave_cmk, vault):
        cek, material = ColumnEncryptionKey.create("K8", enclave_cmk, vault)
        with pytest.raises(KeyError_):
            cek.add_encrypted_value(
                CekEncryptedValue.create(enclave_cmk, vault, material)
            )
