"""Online key-lifecycle jobs: begin/step/finish semantics end to end.

Covers the non-property, non-fault half of the rotation contract:
metadata flips at begin, mixed-version reads resolve through the driver's
MAC probe (in both the fresh- and stale-describe-cache directions),
racing writers with stale key metadata are converged by the
sweep-until-clean loop, the CEK version bumps exactly once at end, and
the admin verbs behave identically over the wire.
"""

from __future__ import annotations

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.errors import BindError, SqlError
from repro.sqlengine.cells import Ciphertext
from repro.tools.rotation import (
    encrypt_column_online,
    resume_rotation,
    rotate_cek_online,
    rotation_query_text,
)

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


def make_table(conn, cek: str = "RotOldCEK", rows: int = 40, name: str = "T") -> None:
    conn.execute_ddl(
        f"CREATE TABLE {name}(id int PRIMARY KEY, value int ENCRYPTED WITH "
        f"(COLUMN_ENCRYPTION_KEY = {cek}, ENCRYPTION_TYPE = Randomized, "
        f"ALGORITHM = '{ALGO}'), tag varchar(16))"
    )
    for i in range(rows):
        conn.execute(
            f"INSERT INTO {name} (id, value, tag) VALUES (@id, @v, @t)",
            {"id": i, "v": i * 10, "t": f"t{i}"},
        )


def cell_key_census(stack, table: str, column: str) -> dict[str, int]:
    """Count stored envelopes by the CEK whose MAC verifies them."""
    engine = stack.server.engine
    slot = engine.table(table).schema.column_index(column)
    ciphers = {name: CellCipher(mat) for name, mat in stack.materials.items()}
    census: dict[str, int] = {"<plaintext>": 0}
    for __, row in engine.scan(table):
        cell = row[slot]
        if cell is None:
            continue
        if not isinstance(cell, Ciphertext):
            census["<plaintext>"] += 1
            continue
        owners = [n for n, c in ciphers.items() if c.verify(cell.envelope)]
        assert len(owners) == 1, f"cell verifies under {owners!r}"
        census[owners[0]] = census.get(owners[0], 0) + 1
    return census


class TestRotationCompletes:
    def test_terminal_state_all_new_key_and_values_preserved(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=40)
        rotate_cek_online(stack.conn, "T", "value", "RotNewCEK", batch_size=7)

        census = cell_key_census(stack, "T", "value")
        assert census.get("RotNewCEK") == 40
        assert census.get("RotOldCEK", 0) == 0

        enc = stack.server.catalog.table("T").column("value").column_type.encryption
        assert enc.cek_name == "RotNewCEK"
        assert stack.server.cek_versions() == {"RotNewCEK": 2}

        rows = stack.conn.execute("SELECT id, value FROM T").rows
        assert sorted(rows) == [(i, i * 10) for i in range(40)]
        assert all(not s.active for s in stack.server.rotation_states())

    def test_second_rotation_bumps_version_again(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=10)
        rotate_cek_online(stack.conn, "T", "value", "RotNewCEK")
        rotate_cek_online(stack.conn, "T", "value", "RotThirdCEK")
        versions = stack.server.cek_versions()
        assert versions == {"RotNewCEK": 2, "RotThirdCEK": 2}
        assert cell_key_census(stack, "T", "value").get("RotThirdCEK") == 10


class TestMixedVersionWindow:
    def test_fresh_describe_reads_old_key_rows(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=40)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
        )
        stack.server.rotate_step(rid, max_batches=2)
        census = cell_key_census(stack, "T", "value")
        assert census.get("RotOldCEK", 0) > 0 and census.get("RotNewCEK", 0) > 0

        # This connection describes afresh: column metadata says the NEW
        # CEK, yet most rows are still under the old one.
        rows = stack.conn.execute("SELECT id, value FROM T").rows
        assert sorted(rows) == [(i, i * 10) for i in range(40)]
        stack.server.rotate_run(rid)

    def test_stale_describe_cache_reads_new_key_rows(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=30)
        stale = stack.fresh_conn()
        stale.execute("SELECT id, value FROM T WHERE id = @id", {"id": 1})  # warm

        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
        )
        stack.server.rotate_step(rid, max_batches=2)
        # The stale client's cached describe still says the OLD CEK, but
        # the sweep has already converted some rows to the new one.
        rows = stale.execute("SELECT id, value FROM T").rows
        assert sorted(rows) == [(i, i * 10) for i in range(30)]
        stack.server.rotate_run(rid)

    def test_write_through_stale_metadata_is_converged_by_the_sweep(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=24)
        stale = stack.fresh_conn()
        stale.execute(
            "UPDATE T SET value = @v WHERE id = @id", {"v": 0, "id": 0}
        )  # warm the describe cache under the OLD CEK

        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
        )
        stack.server.rotate_step(rid, max_batches=2)
        # The racing writer's cached metadata encrypts under the old key —
        # behind the sweep cursor if id 0's page was already converted.
        stale.execute("UPDATE T SET value = @v WHERE id = @id", {"v": 777, "id": 0})
        stack.server.rotate_run(rid)

        census = cell_key_census(stack, "T", "value")
        assert census.get("RotNewCEK") == 24, census
        rows = stack.conn.execute("SELECT value FROM T WHERE id = @id", {"id": 0}).rows
        assert rows == [(777,)]

    def test_concurrent_insert_and_update_land_under_new_key(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=20)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=6, run=False
        )
        stack.server.rotate_step(rid)
        # Fresh describes mid-rotation bind against the new CEK directly.
        stack.conn.execute(
            "INSERT INTO T (id, value, tag) VALUES (@id, @v, @t)",
            {"id": 100, "v": 1000, "t": "late"},
        )
        stack.conn.execute("UPDATE T SET value = @v WHERE id = @id", {"v": 55, "id": 5})
        stack.server.rotate_run(rid)
        census = cell_key_census(stack, "T", "value")
        assert census.get("RotNewCEK") == 21
        rows = dict(stack.conn.execute("SELECT id, value FROM T").rows)
        assert rows[100] == 1000 and rows[5] == 55


class TestInitialEncryptionOnline:
    def test_plaintext_column_encrypts_online(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=25)
        rid = encrypt_column_online(
            stack.conn,
            "T",
            "tag",
            "RotThirdCEK",
            scheme=EncryptionScheme.RANDOMIZED,
            batch_size=6,
            run=False,
        )
        stack.server.rotate_step(rid, max_batches=2)
        census = cell_key_census(stack, "T", "tag")
        assert census["<plaintext>"] > 0 and census.get("RotThirdCEK", 0) > 0
        # Mid-job reads surface the unswept plaintext transparently.
        rows = stack.conn.execute("SELECT id, tag FROM T").rows
        assert sorted(rows) == [(i, f"t{i}") for i in range(25)]

        stack.server.rotate_run(rid)
        census = cell_key_census(stack, "T", "tag")
        assert census["<plaintext>"] == 0 and census.get("RotThirdCEK") == 25
        rows = stack.conn.execute("SELECT id, tag FROM T").rows
        assert sorted(rows) == [(i, f"t{i}") for i in range(25)]

    def test_initial_encryption_requires_plaintext_column(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=3)
        with pytest.raises(SqlError, match="already encrypted"):
            encrypt_column_online(
                stack.conn, "T", "value", "RotNewCEK",
                scheme=EncryptionScheme.RANDOMIZED,
            )


class TestRotationPreconditions:
    def test_rotating_to_the_same_cek_is_refused(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=3)
        with pytest.raises(SqlError, match="already under CEK"):
            rotate_cek_online(stack.conn, "T", "value", "RotOldCEK")

    def test_rotating_a_plaintext_column_is_refused(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=3)
        with pytest.raises((SqlError, ValueError)):
            rotate_cek_online(stack.conn, "T", "tag", "RotNewCEK")

    def test_overlapping_rotations_on_one_column_are_refused(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=6)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=2, run=False
        )
        with pytest.raises(SqlError, match="already under rotation"):
            rotate_cek_online(stack.conn, "T", "value", "RotThirdCEK", run=False)
        stack.server.rotate_run(rid)

    def test_unknown_rotation_id_names_the_resume_protocol(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        with pytest.raises(BindError, match="rotate_resume"):
            stack.server.rotate_step("rot-99-none")

    def test_unauthorized_query_text_cannot_recrypt(self, rotation_stack_factory):
        """A compromised server starting a rotation with an unauthorized
        text gets nothing: the enclave refuses the batch."""
        from repro.errors import EnclaveError

        stack = rotation_stack_factory()
        make_table(stack.conn, rows=4)
        rid = stack.server.rotate_start(
            "T", "value", "RotNewCEK", "EVIL TEXT NO CLIENT SIGNED"
        )
        with pytest.raises(EnclaveError, match="no client authorized"):
            stack.server.rotate_run(rid)


class TestRotationOverTheWire:
    def test_wire_admin_verbs_drive_a_rotation(self, rotation_stack_factory):
        from repro.net.remote import RemoteServer
        from repro.net.wireserver import WireServer
        from repro.client.driver import connect

        stack = rotation_stack_factory()
        make_table(stack.conn, rows=18)
        with WireServer(stack.server) as wire:
            remote = RemoteServer(wire.host, wire.port)
            try:
                conn = connect(
                    remote, stack.registry, attestation_policy=stack.policy
                )
                rid = rotate_cek_online(
                    conn, "T", "value", "RotNewCEK", batch_size=5, run=False
                )
                states = remote.rotation_states()
                assert [s.rotation_id for s in states if s.active] == [rid]
                total = remote.rotate_run(rid)
                assert total == 18
                assert remote.cek_versions() == {"RotNewCEK": 2}
                rows = conn.execute("SELECT id, value FROM T").rows
                assert sorted(rows) == [(i, i * 10) for i in range(18)]
            finally:
                remote.close()
        assert cell_key_census(stack, "T", "value").get("RotNewCEK") == 18


class TestCrashResume:
    def test_recovery_reinstates_and_client_reauthorizes(
        self, rotation_stack_factory
    ):
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=30)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=6, run=False
        )
        stack.server.rotate_step(rid, max_batches=2)
        stack.server.crash()
        report = stack.server.recover()
        assert rid in report.resumed_rotations

        # The old enclave session died with the crash: stepping without a
        # fresh client authorization must be refused by the enclave.
        states = stack.server.rotation_states()
        assert [s.rotation_id for s in states if s.active] == [rid]

        conn = stack.fresh_conn()
        resume_rotation(conn, rid, "T", "value", "RotNewCEK", old_cek="RotOldCEK")
        assert cell_key_census(stack, "T", "value").get("RotNewCEK") == 30
        assert stack.server.cek_versions() == {"RotNewCEK": 2}
        rows = conn.execute("SELECT id, value FROM T").rows
        assert sorted(rows) == [(i, i * 10) for i in range(30)]

    def test_crash_after_end_record_still_bumps_version(
        self, rotation_stack_factory
    ):
        """The ROTATE_END record is the durable form of the version bump:
        recovery replays it even though the catalog mutation was lost."""
        stack = rotation_stack_factory()
        make_table(stack.conn, rows=8)
        rid = rotate_cek_online(stack.conn, "T", "value", "RotNewCEK", batch_size=4)
        stack.server.crash()
        report = stack.server.recover()
        assert stack.server.cek_versions() == {"RotNewCEK": 2}
        assert not any(s.active for s in stack.server.rotation_states())
        assert report.completed_rotations == [rid]  # END replayed, not resumed
        assert report.resumed_rotations == []

    def test_query_text_is_stable_across_resume(self):
        assert rotation_query_text("T", "value", "NewCEK") == rotation_query_text(
            "T", "value", "NewCEK"
        )
