"""Key providers and the extensible registry (Section 2.2)."""

import pytest

from repro.errors import KeyProviderError
from repro.keys.providers import (
    AzureKeyVaultSim,
    CertificateStoreSim,
    HsmKeyProviderSim,
    InMemoryKeyProvider,
    JavaKeyStoreSim,
    KeyProviderRegistry,
    default_registry,
)


@pytest.fixture()
def vault() -> AzureKeyVaultSim:
    provider = AzureKeyVaultSim()
    provider.create_key("https://vault.azure.net/keys/k1", bits=1024)
    return provider


class TestProviders:
    def test_wrap_unwrap(self, vault):
        material = bytes(range(32))
        wrapped = vault.wrap_key("https://vault.azure.net/keys/k1", material)
        assert wrapped != material
        assert vault.unwrap_key("https://vault.azure.net/keys/k1", wrapped) == material

    def test_sign_verify(self, vault):
        sig = vault.sign("https://vault.azure.net/keys/k1", b"metadata")
        assert vault.verify("https://vault.azure.net/keys/k1", b"metadata", sig)
        assert not vault.verify("https://vault.azure.net/keys/k1", b"other", sig)

    def test_unknown_path_rejected(self, vault):
        with pytest.raises(KeyProviderError):
            vault.wrap_key("https://vault.azure.net/keys/nope", b"x" * 32)

    def test_duplicate_create_rejected(self, vault):
        with pytest.raises(KeyProviderError):
            vault.create_key("https://vault.azure.net/keys/k1")

    def test_akv_requires_https_path(self):
        with pytest.raises(KeyProviderError):
            AzureKeyVaultSim().create_key("not-a-uri")

    def test_latency_accounting(self):
        provider = AzureKeyVaultSim(latency_s=0.0)
        provider.create_key("https://v/k", bits=1024)
        before = provider.call_count
        provider.get_public_key("https://v/k")
        provider.wrap_key("https://v/k", b"x" * 32)
        assert provider.call_count == before + 2

    def test_provider_names(self):
        assert AzureKeyVaultSim().provider_name == "AZURE_KEY_VAULT_PROVIDER"
        assert CertificateStoreSim().provider_name == "MSSQL_CERTIFICATE_STORE"
        assert JavaKeyStoreSim().provider_name == "MSSQL_JAVA_KEYSTORE"
        assert HsmKeyProviderSim().provider_name == "HSM_PROVIDER"


class TestRegistry:
    def test_default_registry_has_all_providers(self):
        registry = default_registry()
        assert set(registry.names()) == {
            "AZURE_KEY_VAULT_PROVIDER",
            "MSSQL_CERTIFICATE_STORE",
            "MSSQL_JAVA_KEYSTORE",
            "HSM_PROVIDER",
        }

    def test_unknown_provider_rejected(self):
        with pytest.raises(KeyProviderError):
            default_registry().get("NOPE")

    def test_custom_provider_pluggable(self):
        # The paper's extensible interface: customers plug in providers.
        class MyProvider(InMemoryKeyProvider):
            provider_name = "CUSTOM_HSM"

        registry = KeyProviderRegistry()
        registry.register(MyProvider())
        assert registry.get("CUSTOM_HSM").provider_name == "CUSTOM_HSM"
