"""CMK metadata and the anti-tampering signature (Section 2.2)."""

import dataclasses

import pytest

from repro.errors import SecurityViolation
from repro.keys.cmk import ColumnMasterKey


@pytest.fixture()
def vault(registry):
    return registry.get("AZURE_KEY_VAULT_PROVIDER")


class TestCmkSignature:
    def test_enclave_cmk_has_valid_signature(self, enclave_cmk, registry):
        assert enclave_cmk.verify_signature(registry)

    def test_plain_cmk_valid_without_signature(self, plain_cmk, registry):
        assert plain_cmk.signature == b""
        assert plain_cmk.verify_signature(registry)

    def test_flipping_enclave_flag_breaks_signature(self, plain_cmk, registry):
        # The attack the signature defends against: SQL Server claims an
        # enclave-disabled CMK allows enclave computations.
        tampered = dataclasses.replace(plain_cmk, allow_enclave_computations=True)
        assert not tampered.verify_signature(registry)
        with pytest.raises(SecurityViolation):
            tampered.require_valid(registry)

    def test_changing_key_path_breaks_signature(self, enclave_cmk, registry, vault):
        vault.create_key("https://vault.azure.net/keys/other", bits=512)
        tampered = dataclasses.replace(
            enclave_cmk, key_path="https://vault.azure.net/keys/other"
        )
        assert not tampered.verify_signature(registry)

    def test_garbage_signature_rejected(self, enclave_cmk, registry):
        tampered = dataclasses.replace(enclave_cmk, signature=b"\x00" * 128)
        assert not tampered.verify_signature(registry)

    def test_create_signs_when_enclave_enabled(self, vault, registry):
        vault.create_key("https://vault.azure.net/keys/fresh", bits=512)
        cmk = ColumnMasterKey.create(
            "Fresh", vault, "https://vault.azure.net/keys/fresh",
            allow_enclave_computations=True,
        )
        assert cmk.signature
        assert cmk.verify_signature(registry)
