"""Active-adversary scenarios: tampering the paper's design must survive.

The strong adversary of Section 2.6 can *modify* server state, not just
read it. AE promises confidentiality, not integrity — but several
mechanisms still catch specific tampering: per-cell HMACs (the usability
feature of Section 2.3), CMK metadata signatures, sealed-package MACs,
and the enclave's program validation.
"""

import dataclasses

import pytest

from repro.client.driver import connect
from repro.errors import DriverError, EnclaveError, IntegrityError, SecurityViolation
from repro.sqlengine.cells import Ciphertext
from tests.conftest import make_encrypted_table


class TestCellTampering:
    def test_corrupted_stored_cell_detected_at_decrypt(self, encrypted_table, server):
        # The adversary flips bits in a stored ciphertext. The driver's
        # decryption MAC check catches it — "absent HMACs, there is no way
        # for a client to tell apart legitimate ciphertext from garbage".
        table = server.engine.table("T")
        rid, row = next(table.heap.scan())
        envelope = bytearray(row[1].envelope)
        envelope[-1] ^= 0x01
        tampered = list(row)
        tampered[1] = Ciphertext(bytes(envelope))
        table.heap.update(rid, tuple(tampered))

        target_id = row[0]
        with pytest.raises(IntegrityError):
            encrypted_table.execute(
                "SELECT value FROM T WHERE id = @i", {"i": target_id}
            )

    def test_garbage_ciphertext_detected(self, encrypted_table, server):
        # An erroneous client (or adversary) stored random bytes.
        table = server.engine.table("T")
        rid, row = next(table.heap.scan())
        garbage = list(row)
        garbage[1] = Ciphertext(b"\x01" + b"\x99" * 80)
        table.heap.update(rid, tuple(garbage))
        with pytest.raises(Exception):
            encrypted_table.execute("SELECT value FROM T WHERE id = @i", {"i": row[0]})

    def test_enclave_detects_tampered_comparison_input(self, encrypted_table, server,
                                                       enclave):
        # Tampered cells also fail inside the enclave during predicate
        # evaluation (decryption MAC check at GetData).
        table = server.engine.table("T")
        rid, row = next(table.heap.scan())
        envelope = bytearray(row[1].envelope)
        envelope[10] ^= 0xFF
        tampered = list(row)
        tampered[1] = Ciphertext(bytes(envelope))
        table.heap.update(rid, tuple(tampered))
        with pytest.raises(IntegrityError):
            encrypted_table.execute("SELECT id FROM T WHERE value = @v", {"v": 50})


class TestMetadataTampering:
    def test_server_swapping_cek_metadata_detected(self, encrypted_table, server,
                                                   registry):
        # SQL substitutes a CEK wrapped under a key it controls; the value
        # signature (made with the real CMK) no longer verifies.
        cek = server.catalog.cek("TestCEK")
        original = cek.encrypted_values[0]
        cek.encrypted_values[0] = dataclasses.replace(
            original, encrypted_value=bytes(len(original.encrypted_value))
        )
        encrypted_table.cek_cache.invalidate()
        encrypted_table.invalidate_metadata_caches()
        with pytest.raises((SecurityViolation, DriverError)):
            encrypted_table.execute(
                "INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 100, "v": 1}
            )
        cek.encrypted_values[0] = original

    def test_rogue_program_registration_rejected(self, encrypted_table, server, enclave):
        # The adversary (controlling SQL) registers a hand-crafted program
        # comparing a decrypted column against its own plaintext — the
        # comparison-oracle attack the enclave's validator blocks.
        from repro.crypto.aead import EncryptionScheme
        from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
        from repro.sqlengine.types import EncryptionInfo

        # Ensure keys are installed (a legitimate query ran).
        encrypted_table.execute("SELECT id FROM T WHERE value = @v", {"v": 10})
        enc = EncryptionInfo(
            scheme=EncryptionScheme.RANDOMIZED, cek_name="TestCEK", enclave_enabled=True
        )
        oracle = StackProgram([
            Instruction(Opcode.GET_DATA, (0, enc)),
            Instruction(Opcode.PUSH_CONST, 42),
            Instruction(Opcode.COMP, "<"),
            Instruction(Opcode.SET_DATA, (0, None)),
        ])
        with pytest.raises(EnclaveError, match="oracle"):
            enclave.register_program(oracle.serialize())

    def test_replayed_cek_package_rejected(self, encrypted_table, server, enclave):
        # SQL records and replays the driver's sealed package.
        encrypted_table.execute("SELECT id FROM T WHERE value = @v", {"v": 10})
        from repro.enclave.channel import SealedPackage
        from repro.security.adversary import StrongAdversary

        # Reconstruct what SQL saw: the last install_package blob.
        # (Here we simply replay via the captured session id + blob.)
        session = encrypted_table._attestation
        assert session is not None
        package_blob = None

        def observer(name, inputs, output):
            pass

        # Force another install to capture a blob via a boundary observer.
        captured = []
        enclave.add_boundary_observer(
            lambda name, inputs, output: captured.append(inputs)
            if name == "install_package" else None
        )
        encrypted_table.execute_ddl(
            "ALTER TABLE T ALTER COLUMN value int ENCRYPTED WITH ("
            "COLUMN_ENCRYPTION_KEY = TestCEK, ENCRYPTION_TYPE = Randomized, "
            "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256')",
            authorize_enclave=True,
        )
        assert captured, "expected an install to observe"
        session_id, blob = captured[-1]
        from repro.errors import ReplayError

        with pytest.raises((ReplayError, EnclaveError)):
            enclave.install_package(session_id, SealedPackage(blob=blob))
