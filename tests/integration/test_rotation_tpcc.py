"""Acceptance: online key rotation under a live multi-client TPC-C run.

The tentpole scenario end to end — a background :class:`KeyRotationJob`
re-encrypts ``CUSTOMER.C_FIRST`` (selected and sorted client-side by the
payment-by-name path, never used in a server-side predicate) from
``TpccCEK`` to a freshly provisioned ``TpccCEK2`` while real client
threads drive the standard transaction mix. Afterwards:

* the TPC-C consistency conditions all hold (zero invariant violations);
* every stored ``C_FIRST`` envelope is under the new CEK, none under the
  old, none plaintext (zero differential violations at the cell level);
* customer names survived the rotation byte-for-byte;
* the CEK version bumped exactly once and no job is left active.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.crypto.aead import CellCipher
from repro.sqlengine.cells import Ciphertext
from repro.tools.provisioning import provision_cek
from repro.tools.rotation import rotate_cek_online
from repro.workloads.tpcc import EncryptionMode, TpccConfig, build_system, run_concurrent
from repro.workloads.tpcc.invariants import check_invariants

TINY = dict(warehouses=1, districts_per_warehouse=1, customers_per_district=10, items=20)

NEW_CEK = "TpccCEK2"
OLD_CEK = "TpccCEK"


def c_first_census(system) -> dict[str, int]:
    """Count stored C_FIRST envelopes by the CEK whose MAC verifies them."""
    engine = system.server.engine
    slot = engine.table("CUSTOMER").schema.column_index("C_FIRST")
    ciphers = {}
    for name in (OLD_CEK, NEW_CEK):
        metadata = system.server.fetch_cek_metadata(name)
        ciphers[name] = CellCipher(system.connection.unwrap_cek(metadata))
    counts = {"<plaintext>": 0, OLD_CEK: 0, NEW_CEK: 0}
    for __, row in engine.scan("CUSTOMER"):
        cell = row[slot]
        if not isinstance(cell, Ciphertext):
            counts["<plaintext>"] += 1
            continue
        owners = [n for n, c in ciphers.items() if c.verify(cell.envelope)]
        assert len(owners) == 1, f"cell verifies under {owners!r}"
        counts[owners[0]] += 1
    return counts


@pytest.fixture(scope="module")
def rnd_system():
    return build_system(
        TpccConfig(mode=EncryptionMode.RND, **TINY), lock_timeout_s=5.0
    )


class TestRotationUnderLiveTpcc:
    def test_online_rotation_with_concurrent_clients(self, rnd_system):
        system = rnd_system
        conn = system.connection
        provider = system.registry.get("AZURE_KEY_VAULT_PROVIDER")
        cmk = system.server.catalog.cmk("TpccCMK")
        provision_cek(conn, provider, cmk, NEW_CEK)

        names_before = sorted(
            conn.execute("SELECT C_ID, C_D_ID, C_W_ID, C_FIRST FROM CUSTOMER").rows
        )
        assert c_first_census(system)[OLD_CEK] == len(names_before)

        rid = rotate_cek_online(
            conn, "CUSTOMER", "C_FIRST", NEW_CEK, batch_size=4, run=False
        )

        result: dict[str, object] = {}

        def workload():
            __, clients = run_concurrent(
                system, n_clients=3, transactions_per_client=6
            )
            result["total"] = sum(c.counts.total for c in clients)

        runner = threading.Thread(target=workload, name="tpcc-under-rotation")
        runner.start()
        # The background job shares the server with the live clients: one
        # batch at a time, yielding between batches like a real online
        # index/encryption operation.
        more = True
        while more:
            more, __ = system.server.rotate_step(rid)
            time.sleep(0.002)
        runner.join()

        assert result["total"] > 0  # clients made progress during the sweep

        # Zero invariant violations under the standard TPC-C checks.
        assert check_invariants(system) == []

        # Terminal key state: everything under the new CEK, exactly once.
        census = c_first_census(system)
        assert census[OLD_CEK] == 0
        assert census["<plaintext>"] == 0
        assert census[NEW_CEK] == len(names_before) == 10
        assert system.server.cek_versions() == {NEW_CEK: 2}
        assert not any(s.active for s in system.server.rotation_states())

        # The rotated names read back identically (payments never touch
        # C_FIRST, so the pre-rotation snapshot is still the truth).
        names_after = sorted(
            conn.execute("SELECT C_ID, C_D_ID, C_W_ID, C_FIRST FROM CUSTOMER").rows
        )
        assert names_after == names_before

    def test_payment_by_name_still_sorts_by_rotated_column(self, rnd_system):
        """The by-name lookup (C_LAST predicate, client-side C_FIRST sort)
        works identically after C_FIRST moved to the new CEK."""
        system = rnd_system
        txns = system.new_client(seed=77)
        for __ in range(10):
            txns.run_one("payment")
            txns.run_one("order_status")
        assert txns.counts.total == 20
