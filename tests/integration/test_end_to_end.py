"""Full-stack integration: the paper's flows end to end."""

import pytest

from repro.client.driver import connect
from repro.enclave.runtime import Enclave
from repro.errors import LockTimeoutError, TransactionError
from repro.sqlengine.cells import Ciphertext
from tests.conftest import ALGO, make_encrypted_table


class TestFigure3Flow:
    """The architecture walkthrough: parameterized query over RND data."""

    def test_running_example(self, encrypted_table, server, enclave):
        result = encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": 70})
        assert result.rows == [(7, 70)]
        # The query went through the enclave...
        assert enclave.counters.evals > 0
        # ...exactly one attestation, one CEK install.
        assert enclave.counters.sessions_started == 1
        assert enclave.counters.packages_installed == 1

    def test_range_and_like_through_enclave(self, ae_connection):
        ae_connection.execute_ddl(
            "CREATE TABLE people (pid int PRIMARY KEY, "
            f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'), "
            f"age int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
        )
        people = [(1, "alice", 30), (2, "bob", 45), (3, "alina", 27), (4, "carol", 52)]
        for pid, name, age in people:
            ae_connection.execute(
                "INSERT INTO people (pid, name, age) VALUES (@p, @n, @a)",
                {"p": pid, "n": name, "a": age},
            )
        r = ae_connection.execute("SELECT pid FROM people WHERE age >= @a", {"a": 40})
        assert sorted(x[0] for x in r.rows) == [2, 4]
        r = ae_connection.execute("SELECT pid FROM people WHERE name LIKE @p", {"p": "ali%"})
        assert sorted(x[0] for x in r.rows) == [1, 3]
        r = ae_connection.execute(
            "SELECT pid FROM people WHERE age BETWEEN @lo AND @hi", {"lo": 27, "hi": 45}
        )
        assert sorted(x[0] for x in r.rows) == [1, 2, 3]

    def test_update_delete_on_encrypted_predicate(self, encrypted_table):
        r = encrypted_table.execute("UPDATE T SET id = @n WHERE value = @v", {"n": 100, "v": 90})
        assert r.rowcount == 1
        r = encrypted_table.execute("DELETE FROM T WHERE value > @v", {"v": 75})
        assert r.rowcount == 2  # 80 and 90
        r = encrypted_table.execute("SELECT COUNT(*) FROM T", {})
        assert r.rows == [(8,)]

    def test_range_index_used_for_encrypted_range(self, encrypted_table, server):
        encrypted_table.execute_ddl("CREATE NONCLUSTERED INDEX T_V ON T(value)")
        r = encrypted_table.execute("SELECT id FROM T WHERE value > @v", {"v": 55})
        assert "T_V" in r.plan_info
        assert sorted(x[0] for x in r.rows) == [6, 7, 8, 9]


class TestFigure2Schema:
    """The Account example of Figure 2: mixed plaintext/RND/DET."""

    def test_account_table(self, ae_connection, server):
        ae_connection.execute_ddl(
            "CREATE TABLE Account (AcctID int PRIMARY KEY, "
            f"AcctBal float ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'), "
            f"Branch varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Deterministic, ALGORITHM = '{ALGO}'))"
        )
        rows = [(1, 100.0, "Seattle"), (2, 200.0, "Seattle"), (3, 200.0, "Zurich")]
        for acct, bal, branch in rows:
            ae_connection.execute(
                "INSERT INTO Account (AcctID, AcctBal, Branch) VALUES (@a, @b, @c)",
                {"a": acct, "b": bal, "c": branch},
            )
        # DET equality (no enclave) + plaintext id both work.
        r = ae_connection.execute(
            "SELECT AcctID FROM Account WHERE Branch = @b", {"b": "Seattle"}
        )
        assert sorted(x[0] for x in r.rows) == [1, 2]
        # Equal branches share ciphertext (DET), equal balances do not (RND).
        stored = [row for __, row in server.engine.scan("Account")]
        branch_cts = {row[2].envelope for row in stored if row[2] is not None}
        assert len(branch_cts) == 2  # Seattle, Zurich
        bal_cts = {row[1].envelope for row in stored}
        assert len(bal_cts) == 3     # all distinct despite equal values


class TestServerSideRecoveryFlow:
    def test_crash_defer_reconnect_resolve(self, server, registry, attestation_policy,
                                            enclave_cmk, enclave_cek, enclave_binary,
                                            cek_material):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        server.engine.ctr_enabled = False
        conn = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(conn)
        conn.execute_ddl("CREATE NONCLUSTERED INDEX T_V ON T(value)")
        for i in range(5):
            conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": i, "v": i})
        # Crash mid-transaction.
        conn.begin()
        conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 50, "v": 50})
        server.engine.checkpoint()
        new_enclave = Enclave(enclave_binary)
        server.crash()
        server.engine.enclave = new_enclave
        server.enclave = new_enclave
        report = server.recover()
        assert report.deferred

        # A fresh client connects and queries → keys flow → deferral resolves.
        conn2 = connect(server, registry, attestation_policy=attestation_policy)
        r = conn2.execute("SELECT id FROM T WHERE value = @v", {"v": 3})
        assert r.rows == [(3,)]
        assert not server.engine.deferred
        r = conn2.execute("SELECT COUNT(*) FROM T", {})
        assert r.rows == [(5,)]  # uncommitted insert rolled back


class TestMultiConnection:
    def test_two_clients_share_server(self, server, registry, attestation_policy,
                                      enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        a = connect(server, registry, attestation_policy=attestation_policy)
        b = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(a)
        a.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 11})
        r = b.execute("SELECT value FROM T WHERE id = @i", {"i": 1})
        assert r.rows == [(11,)]

    def test_write_conflict_times_out(self, server, registry, attestation_policy,
                                      enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        a = connect(server, registry, attestation_policy=attestation_policy)
        b = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(a)
        a.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 11})
        a.begin()
        a.execute("UPDATE T SET value = @v WHERE id = @i", {"v": 12, "i": 1})
        with pytest.raises((LockTimeoutError, TransactionError)):
            b.execute("DELETE FROM T WHERE id = @i", {"i": 1})
        a.rollback()
