"""The future-work extension: ORDER BY over encrypted columns via enclave.

The paper removes ORDER BY C_FIRST from TPC-C because AEv2 cannot sort in
the enclave, and names richer functionality as the main future-work
avenue. This extension implements it behind an explicit opt-in: sorting an
enclave-enabled RND column routes comparisons through the enclave — with
the same ordering leakage as a range index.
"""

import pytest

from repro.client.driver import connect
from repro.errors import TypeDeductionError
from repro.sqlengine.server import SqlServer
from tests.conftest import ALGO

NAMES = ["delta", "alpha", "charlie", "bravo", "echo"]


def build(server, registry, attestation_policy, enclave_cmk, enclave_cek):
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn = connect(server, registry, attestation_policy=attestation_policy)
    conn.execute_ddl(
        "CREATE TABLE S (k int PRIMARY KEY, "
        f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k, name in enumerate(NAMES):
        conn.execute("INSERT INTO S (k, name) VALUES (@k, @n)", {"k": k, "n": name})
    return conn


class TestDisabledByDefault:
    def test_rejected_like_aev2(self, server, registry, attestation_policy,
                                enclave_cmk, enclave_cek):
        conn = build(server, registry, attestation_policy, enclave_cmk, enclave_cek)
        with pytest.raises(TypeDeductionError, match="order_by"):
            conn.execute("SELECT k, name FROM S ORDER BY name", {})


class TestEnabledExtension:
    @pytest.fixture()
    def ext_server(self, enclave, host_machine, hgs):
        return SqlServer(
            enclave=enclave, host_machine=host_machine, hgs=hgs,
            lock_timeout_s=0.3, allow_enclave_order_by=True,
        )

    def test_sorts_by_plaintext_order(self, ext_server, registry, attestation_policy,
                                      enclave_cmk, enclave_cek):
        conn = build(ext_server, registry, attestation_policy, enclave_cmk, enclave_cek)
        result = conn.execute("SELECT k, name FROM S ORDER BY name", {})
        assert [row[1] for row in result.rows] == sorted(NAMES)

    def test_descending(self, ext_server, registry, attestation_policy,
                        enclave_cmk, enclave_cek):
        conn = build(ext_server, registry, attestation_policy, enclave_cmk, enclave_cek)
        result = conn.execute("SELECT name FROM S ORDER BY name DESC", {})
        assert [row[0] for row in result.rows] == sorted(NAMES, reverse=True)

    def test_comparisons_cross_the_boundary(self, ext_server, registry,
                                            attestation_policy, enclave_cmk,
                                            enclave_cek, enclave):
        conn = build(ext_server, registry, attestation_policy, enclave_cmk, enclave_cek)
        before = enclave.counters.comparisons
        conn.execute("SELECT name FROM S ORDER BY name", {})
        # The ordering leaked exactly through these clear-text results —
        # the documented price of the extension.
        assert enclave.counters.comparisons > before

    def test_tpcc_order_by_c_first_works_with_extension(self, ext_server, registry,
                                                        attestation_policy,
                                                        enclave_cmk, enclave_cek):
        # The statement the paper had to remove from Payment/Order-Status.
        conn = build(ext_server, registry, attestation_policy, enclave_cmk, enclave_cek)
        result = conn.execute(
            "SELECT k FROM S WHERE name LIKE @p ORDER BY name", {"p": "%"}
        )
        assert len(result.rows) == len(NAMES)

    def test_plaintext_order_by_unaffected(self, ext_server, registry,
                                           attestation_policy, enclave_cmk, enclave_cek):
        conn = build(ext_server, registry, attestation_policy, enclave_cmk, enclave_cek)
        result = conn.execute("SELECT k FROM S ORDER BY k DESC", {})
        assert [row[0] for row in result.rows] == [4, 3, 2, 1, 0]
