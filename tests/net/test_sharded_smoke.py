"""Multi-process sharded smoke: real OS processes, real sockets.

Boots a router plus two shard *processes* (fork), loads a tiny TPC-C
scale through the wire, runs a short multi-client slice, audits every
shard's invariants remotely, and shuts the whole tree down cleanly.
The in-process equivalents in test_router.py / test_2pc_torture.py
cover the routing and 2PC logic cheaply; this test exists to prove the
process boundary itself (fork, port handoff, cross-process attestation
under the plaintext mode, AdminShutdown teardown).
"""

from __future__ import annotations

from repro.workloads.tpcc.config import TRANSACTION_MIX, TpccConfig
from repro.workloads.tpcc.sharded import start_sharded_system, wait_for_quiesce

TINY = TpccConfig(
    warehouses=4, districts_per_warehouse=2, customers_per_district=6, items=20
)


def test_multiprocess_sharded_tpcc_slice():
    system = start_sharded_system(TINY, n_shards=2, worker_threads=4, lock_timeout_s=1.0)
    try:
        assert len(system.processes) == 3  # 2 shards + router
        assert all(p.is_alive() for p in system.processes)
        clients = [system.new_client(seed=s) for s in (3, 8)]
        for client in clients:
            client.run_mix(12, TRANSACTION_MIX)
        committed = sum(c.counts.total for c in clients)
        assert committed >= 12, f"only {committed} transactions ran"
        wait_for_quiesce(system)
        assert system.audit() == []
    finally:
        system.shutdown()
    assert all(not p.is_alive() for p in system.processes)
