"""Message-layer round trips: typed payloads and error marshalling.

The invariants the rest of the system leans on:

* every message type survives encode→decode with nested catalog/crypto
  metadata intact;
* a frame whose opcode disagrees with its payload type is rejected (a
  confused peer cannot smuggle an Execute inside a CekFetch frame);
* ``QueryResult.stats`` — server-side telemetry holding plaintext-adjacent
  timing detail — never crosses the wire;
* typed errors reconstruct to their concrete :class:`ReproError`
  subclass (the quarantine contract: a remote ``StaleRestoreError`` must
  refuse work client-side exactly like a local one), and unknown types
  degrade to :class:`RemoteError` instead of crashing the channel.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConstraintError,
    CorruptFrameError,
    LockTimeoutError,
    RemoteError,
    StaleRestoreError,
    TransientFault,
)
from repro.net import messages as msg
from repro.net.encoding import decode_value, encode_value
from repro.net.frames import decode_frame
from repro.net.opcodes import OPCODES, opcode_byte
from repro.sqlengine.exec.executor import QueryResult


def roundtrip(message):
    """encode_message emits a whole frame; peel it like the transport does."""
    opcode, payload = decode_frame(msg.encode_message(message))
    return msg.decode_message(opcode, payload)


SAMPLES = [
    msg.Hello(affinity=7),
    msg.Hello(),
    msg.HelloReply(protocol_version=1, server_name="shard3", shard_count=8),
    msg.Ok(),
    msg.Ping(),
    msg.ErrorReply(error_type="ConstraintError", message="dup", in_transaction=True),
    msg.Describe(query_text="SELECT 1", client_dh_public=12345),
    msg.CekFetch(cek_name="TpccCEK"),
    msg.CekList(),
    msg.TableInfo(table_name="CUSTOMER"),
    msg.SessionOpen(affinity=3),
    msg.SessionOpenReply(session_id=42),
    msg.SessionClose(session_id=42),
    msg.Execute(session_id=1, query_text="SELECT @a", params={"a": 1, "b": b"\x00"}),
    msg.ExecuteReply(
        result=QueryResult(rows=[(1, "x")], rowcount=1), in_transaction=True
    ),
    msg.TxnPrepare(session_id=9, gtid="router:17"),
    msg.TxnCommitPrepared(gtid="router:17"),
    msg.TxnAbortPrepared(gtid="router:17"),
    msg.TxnIndoubt(),
    msg.TxnIndoubtReply(gtids=["a:1", "b:2"]),
    msg.AdminAudit(),
    msg.AdminAuditReply(violations=["w 1: lost money"]),
    msg.AdminCrash(),
    msg.AdminRecover(),
    msg.AdminShutdown(),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_message_roundtrip(message):
    decoded = roundtrip(message)
    assert decoded == message
    assert type(decoded) is type(message)


def test_every_message_opcode_is_registered():
    for name, cls in msg.MESSAGE_TYPES.items():
        assert name in OPCODES, f"{cls.__name__} opcode {name!r} missing from registry"


def test_opcode_payload_mismatch_rejected():
    payload = msg.encode_message(msg.Ping())
    with pytest.raises(CorruptFrameError):
        msg.decode_message(opcode_byte("execute"), payload)


def test_query_result_stats_never_cross_the_wire():
    result = QueryResult(rows=[(1,)], rowcount=1)
    result.stats = object()     # whatever the server attached
    reply = msg.ExecuteReply(result=result, in_transaction=False)
    decoded = roundtrip(reply)
    assert decoded.result.stats is None
    assert decoded.result.rows == [(1,)]


# ------------------------------------------------------------ error marshal


@pytest.mark.parametrize(
    "exc",
    [
        ConstraintError("duplicate key in PK_CUSTOMER"),
        LockTimeoutError("lock wait on WAREHOUSE exceeded 0.15s"),
        StaleRestoreError("anchor says epoch 9, WAL says epoch 7"),
        TransientFault("net.send_frame"),
    ],
    ids=lambda e: type(e).__name__,
)
def test_typed_errors_reconstruct_concrete_class(exc):
    reply = msg.error_reply_for(exc, in_transaction=False)
    encoded = roundtrip(reply)
    rebuilt = msg.reconstruct_error(encoded)
    assert type(rebuilt).__name__ == type(exc).__name__
    assert str(exc) in str(rebuilt) or str(rebuilt) in str(exc) or str(rebuilt)


def test_unknown_error_type_degrades_to_remote_error():
    reply = msg.ErrorReply(error_type="NoSuchErrorClass", message="boom")
    rebuilt = msg.reconstruct_error(reply)
    assert isinstance(rebuilt, RemoteError)
    assert rebuilt.error_type == "NoSuchErrorClass"
    assert "boom" in str(rebuilt)


def test_non_repro_error_type_not_instantiated():
    """Only ReproError subclasses reconstruct — never arbitrary classes."""
    reply = msg.ErrorReply(error_type="SystemExit", message="0")
    rebuilt = msg.reconstruct_error(reply)
    assert isinstance(rebuilt, RemoteError)


def test_unregistered_struct_rejected_at_decode():
    class NotRegistered:
        pass

    with pytest.raises(Exception):
        encode_value(NotRegistered())


def test_decode_depth_limit_blocks_nesting_bombs():
    deep = []
    for __ in range(64):
        deep = [deep]
    with pytest.raises(CorruptFrameError):
        decode_value(encode_value_unchecked(deep))


def encode_value_unchecked(value):
    """Encode nested lists by hand, deeper than the decoder allows."""
    import struct

    if isinstance(value, list):
        body = b"".join(encode_value_unchecked(v) for v in value)
        return b"\x07" + struct.pack(">I", len(value)) + body
    raise AssertionError("only lists here")
