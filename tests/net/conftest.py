"""Wire-layer fixtures: a disarmed fault registry around every test."""

from __future__ import annotations

import pytest

from repro.faults.registry import get_fault_registry


@pytest.fixture(autouse=True)
def clean_fault_registry():
    registry = get_fault_registry()
    registry.disarm_all()
    yield registry
    registry.disarm_all()
