"""Cross-shard 2PC crash torture: no lost or duplicated commits.

Two anchored shards (each engine carries its own ``FreshnessAnchor``
trust root) behind a router, running a transfer workload where every
transaction moves value between warehouses on *different* shards. One
fault is armed per round — coordinator faults at "router.commit_decision",
participant faults at "engine.prepare" and the WAL sites ("wal.append",
"wal.flush" with forced crashes and torn flush tails) — then every shard
is crashed and recovered and the coordinator replays its decision log.

After each round the global invariants must hold:

* **conservation** — the total value across all shards is unchanged: a
  transfer applied on one shard but not the other would break it (the
  lost/duplicated-commit signature);
* **atomicity per gtid** — each transfer's marker rows exist on both
  shards or on neither;
* **durability of acks** — a transfer whose COMMIT returned is visible
  on both shards after recovery;
* **no residue** — resolve_indoubt() leaves no in-doubt branch anywhere;
* **anchored recovery** — every shard's recovery report says its
  freshness anchor verified the durable state.
"""

from __future__ import annotations

import pytest

from repro.attestation.tpm import TpmNvAnchor
from repro.faults.actions import ForceCrash, PartialFlush, RaiseTransient
from repro.faults.schedules import OnNth
from repro.net.remote import RemoteServer
from repro.net.router import CommitDecisionLog, Router
from repro.net.wireserver import WireServer
from repro.sqlengine.server import SqlServer
from repro.sqlengine.storage.freshness import FreshnessAnchor

N_SHARDS = 2
WAREHOUSES = (1, 2, 3, 4)
INITIAL_VALUE = 100
# (src, dst) pairs; with 2 shards odd/even warehouses always cross shards.
TRANSFER_PLAN = [(1, 2), (2, 1), (3, 4), (4, 3), (1, 4), (3, 2)]

TORTURE_CASES = [
    ("router.commit_decision", lambda: RaiseTransient("coordinator blip"), 1),
    ("router.commit_decision", lambda: ForceCrash(), 2),
    ("engine.prepare", lambda: ForceCrash(), 1),
    ("engine.prepare", lambda: ForceCrash(), 3),
    ("engine.prepare", lambda: RaiseTransient("prepare refused"), 2),
    ("wal.append", lambda: ForceCrash(), 8),
    ("wal.flush", lambda: ForceCrash(), 4),
    ("wal.flush", lambda: PartialFlush(drop_last=1, then_crash=True), 3),
    ("wal.flush", lambda: PartialFlush(drop_last=2, then_crash=True), 5),
]


@pytest.fixture()
def cluster(tmp_path):
    shards = [
        SqlServer(lock_timeout_s=0.3, freshness=FreshnessAnchor(TpmNvAnchor()))
        for _ in range(N_SHARDS)
    ]
    wires = [
        WireServer(s, name=f"shard{i}", shard_count=N_SHARDS).start()
        for i, s in enumerate(shards)
    ]
    router = Router(
        [(w.host, w.port) for w in wires],
        name="T",
        decision_log=CommitDecisionLog(str(tmp_path / "decisions.log")),
    ).start()
    client = RemoteServer(router.host, router.port, affinity=1)
    yield shards, router, client
    client.close()
    router.stop()
    for wire in wires:
        wire.stop()


def seed(client) -> None:
    session = client.connect()
    session.execute("CREATE TABLE T (ID INT PRIMARY KEY, W INT, VAL INT)", {})
    session.execute("CREATE TABLE XFER (ID INT PRIMARY KEY, XID INT, W INT)", {})
    for w in WAREHOUSES:
        session.execute(
            "INSERT INTO T (ID, W, VAL) VALUES (@id, @w, @v)",
            {"id": w, "w": w, "v": INITIAL_VALUE},
        )
    session.close()


def attempt_transfer(client, xid: int, src: int, dst: int) -> bool:
    """One cross-shard transfer; True iff the COMMIT was acknowledged."""
    session = client.connect()
    try:
        session.execute("BEGIN TRANSACTION", {})
        src_val = session.execute(
            "SELECT VAL FROM T WHERE ID = @id AND W = @w", {"id": src, "w": src}
        ).rows[0][0]
        dst_val = session.execute(
            "SELECT VAL FROM T WHERE ID = @id AND W = @w", {"id": dst, "w": dst}
        ).rows[0][0]
        session.execute(
            "UPDATE T SET VAL = @v WHERE ID = @id AND W = @w",
            {"v": src_val - 1, "id": src, "w": src},
        )
        session.execute(
            "UPDATE T SET VAL = @v WHERE ID = @id AND W = @w",
            {"v": dst_val + 1, "id": dst, "w": dst},
        )
        for w in (src, dst):
            session.execute(
                "INSERT INTO XFER (ID, XID, W) VALUES (@id, @x, @w)",
                {"id": xid * 10 + w, "x": xid, "w": w},
            )
        session.execute("COMMIT", {})
        return True
    except Exception:
        return False
    finally:
        try:
            session.close()
        except Exception:
            pass


def crash_recover_resolve(shards, router):
    """Crash every shard, recover, replay the decision log."""
    reports = []
    for shard in shards:
        shard.crash()
        reports.append(shard.recover())
    outcomes = router.resolve_indoubt()
    return reports, outcomes


def global_state(shards):
    """(total value, {xid: marker count}) read directly off each shard."""
    total = 0
    markers: dict[int, int] = {}
    for shard in shards:
        session = shard.connect()
        for (val,) in session.execute("SELECT VAL FROM T", {}).rows:
            total += val
        for (xid,) in session.execute("SELECT XID FROM XFER", {}).rows:
            markers[xid] = markers.get(xid, 0) + 1
        session.close()
    return total, markers


@pytest.mark.parametrize(
    ("site", "make_action", "nth"),
    TORTURE_CASES,
    ids=[f"{site}-{make_action().__class__.__name__}-n{nth}"
         for site, make_action, nth in TORTURE_CASES],
)
def test_2pc_crash_torture(cluster, clean_fault_registry, site, make_action, nth):
    shards, router, client = cluster
    seed(client)
    acked: set[int] = set()
    xid = 0
    for round_no in range(2):
        clean_fault_registry.arm(site, OnNth(nth), make_action())
        for src, dst in TRANSFER_PLAN:
            xid += 1
            if attempt_transfer(client, xid, src, dst):
                acked.add(xid)
        clean_fault_registry.disarm_all()

        reports, _outcomes = crash_recover_resolve(shards, router)
        for report in reports:
            assert report.freshness_verified, "per-shard anchor must verify"
        for shard in shards:
            assert shard.indoubt_gtids() == [], "resolution left an in-doubt branch"

        total, markers = global_state(shards)
        assert total == INITIAL_VALUE * len(WAREHOUSES), (
            f"value not conserved after round {round_no}: {total} "
            f"(lost or duplicated commit)"
        )
        for marker_xid, count in markers.items():
            assert count == 2, f"transfer {marker_xid} half-applied ({count}/2 markers)"
        for acked_xid in acked:
            assert markers.get(acked_xid) == 2, (
                f"acknowledged transfer {acked_xid} lost after recovery"
            )
        assert total == INITIAL_VALUE * len(WAREHOUSES) - 0  # conservation holds


def test_clean_run_all_transfers_commit(cluster):
    """Baseline with no fault armed: every transfer commits exactly once."""
    shards, router, client = cluster
    seed(client)
    for i, (src, dst) in enumerate(TRANSFER_PLAN, start=1):
        assert attempt_transfer(client, i, src, dst)
    reports, outcomes = crash_recover_resolve(shards, router)
    assert outcomes == {}
    total, markers = global_state(shards)
    assert total == INITIAL_VALUE * len(WAREHOUSES)
    assert sorted(markers) == list(range(1, len(TRANSFER_PLAN) + 1))
    assert all(count == 2 for count in markers.values())
    assert len(router.decisions.gtids()) == len(TRANSFER_PLAN)
    for report in reports:
        assert report.freshness_verified
