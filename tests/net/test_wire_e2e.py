"""End-to-end wire tests: the unmodified AE driver over real sockets.

The contract under test: :class:`RemoteServer` is indistinguishable from
the in-process server object for the driver — attestation, CEK fetch,
enclave key forwarding, client-side encryption/decryption, transaction
state mirroring, typed errors (including the ``StaleRestoreError``
quarantine refusal), and session teardown on connection loss. Plus the
transport's registered fault sites: a frame dropped at ``net.send_frame``
or ``net.recv_frame`` surfaces as ``ConnectionResetError``, which the
driver's retry classifier treats as transient for idempotent control ops.
"""

from __future__ import annotations

import pytest

from repro.client.driver import connect
from repro.errors import ConstraintError, RemoteError, StaleRestoreError
from repro.faults.actions import DropMessage, RaiseTransient
from repro.faults.schedules import Always, OnNth
from repro.net.remote import RemoteServer
from repro.net.wireserver import WireServer
from repro.sqlengine.server import SqlServer
from tests.conftest import ALGO, make_encrypted_table


@pytest.fixture()
def wire(server, enclave_cmk, enclave_cek):
    """The RND test server behind a real TCP socket."""
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    with WireServer(server, name="wire-test") as ws:
        yield ws


@pytest.fixture()
def remote(wire):
    remote = RemoteServer(wire.host, wire.port, timeout_s=10.0)
    yield remote
    remote.close()


@pytest.fixture()
def plain_wire(plain_server):
    with WireServer(plain_server, name="plain-test") as ws:
        yield ws


def test_handshake_carries_hgs_key(remote, hgs):
    assert remote.hello.server_name == "wire-test"
    assert remote.hgs is not None
    assert remote.hgs.signing_public_key == hgs.signing_public_key


def test_ae_roundtrip_over_socket(remote, registry, attestation_policy):
    """Full AE flow: encrypted insert, DET-free RND predicate via enclave."""
    conn = connect(remote, registry, attestation_policy=attestation_policy)
    make_encrypted_table(conn)
    for i in range(5):
        conn.execute("INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10})
    rows = conn.execute("SELECT id, value FROM T WHERE value > @v", {"v": 15}).rows
    assert sorted(row[1] for row in rows) == [20, 30, 40]
    # Ciphertext at rest on the server; plaintext only client-side.
    raw = remote._request  # control channel still healthy after enclave ops
    conn.close()


def test_transactions_mirror_state_over_wire(plain_wire):
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    session = remote.connect()
    session.execute("CREATE TABLE A (K INT PRIMARY KEY, V INT)", {})
    session.execute("BEGIN TRANSACTION", {})
    assert session.in_transaction
    session.execute("INSERT INTO A (K, V) VALUES (@k, @v)", {"k": 1, "v": 1})
    session.execute("ROLLBACK", {})
    assert not session.in_transaction
    assert session.execute("SELECT K FROM A", {}).rows == []
    remote.close()


def test_typed_errors_cross_the_wire(plain_wire):
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    session = remote.connect()
    session.execute("CREATE TABLE B (K INT PRIMARY KEY)", {})
    session.execute("INSERT INTO B (K) VALUES (@k)", {"k": 1})
    with pytest.raises(ConstraintError):
        session.execute("INSERT INTO B (K) VALUES (@k)", {"k": 1})
    remote.close()


def test_quarantine_refusal_crosses_the_wire(plain_wire, plain_server, monkeypatch):
    """A quarantined server refuses execution with StaleRestoreError —
    remotely the client must see the *same* typed refusal."""
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    session = remote.connect()
    session.execute("CREATE TABLE Q (K INT PRIMARY KEY)", {})

    def refuse(*args, **kwargs):
        raise StaleRestoreError("restored database is stale: anchor mismatch")

    monkeypatch.setattr(plain_server, "connect", refuse)
    with pytest.raises(StaleRestoreError, match="stale"):
        remote.connect()
    # The pre-quarantine session object also refuses at the engine seam.
    remote.close()


def test_unknown_server_exception_degrades_to_remote_error(plain_wire, plain_server, monkeypatch):
    class ExoticFailure(Exception):
        pass

    def explode(*args, **kwargs):
        raise ExoticFailure("no wire mapping for this")

    monkeypatch.setattr(plain_server, "connect", explode)
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    with pytest.raises(RemoteError) as excinfo:
        remote.connect()
    assert excinfo.value.error_type == "ExoticFailure"
    remote.close()


def test_connection_loss_closes_server_sessions(plain_wire, plain_server):
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    session = remote.connect()
    session.execute("CREATE TABLE C (K INT PRIMARY KEY)", {})
    session.execute("BEGIN TRANSACTION", {})
    session.execute("INSERT INTO C (K) VALUES (@k)", {"k": 1}, )
    # Drop the socket without SessionClose: the server must abort the txn
    # and release the session slot (connection-loss contract).
    session._channel.close()
    remote2 = RemoteServer(plain_wire.host, plain_wire.port)
    session2 = remote2.connect()
    import time

    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        if session2.execute("SELECT K FROM C", {}).rows == []:
            break
        time.sleep(0.02)
    assert session2.execute("SELECT K FROM C", {}).rows == []
    remote.close()
    remote2.close()


# ----------------------------------------------------------- fault injection


def test_send_frame_fault_surfaces_as_connection_reset(plain_wire, clean_fault_registry):
    """An armed "net.send_frame" drop makes the client see a reset —
    the transient class the driver's backoff classifier retries."""
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    clean_fault_registry.arm("net.send_frame", OnNth(1), DropMessage())
    with pytest.raises(ConnectionResetError):
        remote.ping()
    remote.close()


def test_recv_frame_fault_injects_transient(plain_wire, clean_fault_registry):
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    clean_fault_registry.arm(
        "net.recv_frame", Always(), RaiseTransient("injected recv failure")
    )
    from repro.errors import TransientFault

    # The site is process-global, so the server's recv loop can absorb
    # hits too — but with Always armed, the client's own recv must fire.
    with pytest.raises((TransientFault, ConnectionResetError)):
        remote.ping()
    clean_fault_registry.disarm_all()
    retry = RemoteServer(plain_wire.host, plain_wire.port)
    assert retry.ping()
    retry.close()
    remote.close()


def test_driver_retries_dropped_control_frame(
    remote, registry, attestation_policy, clean_fault_registry
):
    """The full stack heals itself: a dropped control-plane frame during
    describe surfaces as ConnectionResetError, the stub reopens its
    channel, the driver's classifier calls it transient, and the retried
    describe succeeds — the query never sees the fault."""
    conn = connect(remote, registry, attestation_policy=attestation_policy)
    make_encrypted_table(conn)
    conn.execute("INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 10})
    clean_fault_registry.arm("net.send_frame", OnNth(1), DropMessage())
    rows = conn.execute("SELECT id FROM T WHERE value > @v", {"v": 5}).rows
    assert [row[0] for row in rows] == [1]
    assert conn.stats.retries >= 1
    conn.close()


def test_idempotent_control_plane_survives_retry(plain_wire, clean_fault_registry):
    """Manual retry of an idempotent control op after a dropped frame: the
    second attempt succeeds on a fresh connection, no state corrupted."""
    remote = RemoteServer(plain_wire.host, plain_wire.port)
    clean_fault_registry.arm("net.send_frame", OnNth(2), DropMessage())
    try:
        remote.ping()
        remote.ping()
    except ConnectionResetError:
        pass
    retry = RemoteServer(plain_wire.host, plain_wire.port)
    assert retry.ping()
    retry.close()
    remote.close()
