"""Property tests for the frame codec and tagged value encoding.

The frame layer is the trust boundary's narrowest point: every byte a
peer sends passes through :func:`try_decode` before anything else looks
at it. The properties here pin the codec's contract:

* encode→decode identity for every encodable value and every frame;
* a truncated stream never yields a frame (and never crashes);
* any single corrupted byte is *detected* — magic, version, opcode and
  length are validated from the header, everything else by CRC;
* unknown opcodes and foreign protocol versions are typed rejections,
  so a future v2 peer gets :class:`VersionMismatchError`, not garbage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CorruptFrameError,
    TruncatedFrameError,
    UnknownOpcodeError,
    VersionMismatchError,
)
from repro.net.encoding import decode_value, encode_value
from repro.net.frames import (
    FRAME_HEADER_LEN,
    MAGIC,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    try_decode,
)
from repro.net.opcodes import OPCODES, opcode_byte

# ---------------------------------------------------------------- strategies

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
        st.frozensets(
            st.one_of(st.integers(), st.text(max_size=10)), max_size=5
        ),
    ),
    max_leaves=25,
)

opcodes = st.sampled_from(sorted(OPCODES.values()))


# ------------------------------------------------------------ value round-trip


@settings(max_examples=200)
@given(values)
def test_value_roundtrip_identity(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=100)
@given(values)
def test_value_roundtrip_preserves_type_shape(value):
    decoded = decode_value(encode_value(value))
    assert type(decoded) is type(value)


@settings(max_examples=100)
@given(values, st.integers(min_value=0, max_value=30))
def test_truncated_value_never_decodes_silently(value, cut):
    encoded = encode_value(value)
    if cut >= len(encoded):
        return
    with pytest.raises(CorruptFrameError):
        decode_value(encoded[: len(encoded) - 1 - cut])


# ------------------------------------------------------------ frame round-trip


@settings(max_examples=200)
@given(opcodes, st.binary(max_size=200))
def test_frame_roundtrip_identity(opcode, payload):
    frame = encode_frame(opcode, payload)
    assert decode_frame(frame) == (opcode, payload)
    assert try_decode(frame) == (opcode, payload, len(frame))


@settings(max_examples=100)
@given(opcodes, st.binary(max_size=100), st.data())
def test_partial_frame_returns_none(opcode, payload, data):
    """A streaming reader holding any strict prefix must keep waiting."""
    frame = encode_frame(opcode, payload)
    cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
    assert try_decode(frame[:cut]) is None


@settings(max_examples=100)
@given(opcodes, st.binary(min_size=1, max_size=100))
def test_truncated_strict_decode_raises(opcode, payload):
    frame = encode_frame(opcode, payload)
    with pytest.raises(TruncatedFrameError):
        decode_frame(frame[:-1])


@settings(max_examples=100)
@given(opcodes, st.binary(max_size=100), st.binary(min_size=1, max_size=8))
def test_trailing_bytes_rejected(opcode, payload, trailing):
    frame = encode_frame(opcode, payload)
    with pytest.raises(CorruptFrameError):
        decode_frame(frame + trailing)


@settings(max_examples=200)
@given(opcodes, st.binary(min_size=1, max_size=100), st.data())
def test_any_corrupted_payload_byte_is_detected(opcode, payload, data):
    """Flip one payload byte: the CRC must catch it."""
    frame = bytearray(encode_frame(opcode, payload))
    index = data.draw(
        st.integers(min_value=FRAME_HEADER_LEN, max_value=len(frame) - 1)
    )
    flip = data.draw(st.integers(min_value=1, max_value=255))
    frame[index] ^= flip
    with pytest.raises(CorruptFrameError):
        decode_frame(bytes(frame))


def test_bad_magic_rejected_before_payload_arrives():
    """Garbage at the stream head fails fast, even below header length."""
    with pytest.raises(CorruptFrameError):
        try_decode(b"XX")
    with pytest.raises(CorruptFrameError):
        try_decode(b"QE" + b"\x00" * 20)


def test_version_mismatch_is_typed():
    frame = encode_frame(opcode_byte("ping"), b"", version=PROTOCOL_VERSION + 1)
    with pytest.raises(VersionMismatchError):
        try_decode(frame)


def test_unknown_opcode_rejected():
    unused = next(b for b in range(256) if b not in OPCODES.values())
    frame = bytearray(encode_frame(opcode_byte("ping"), b""))
    frame[3] = unused
    with pytest.raises(UnknownOpcodeError):
        try_decode(bytes(frame))


def test_magic_prefix_of_one_byte_waits_for_more():
    assert try_decode(MAGIC[:1]) is None
    assert try_decode(b"") is None


def test_oversized_length_prefix_is_corruption():
    header = bytearray(encode_frame(opcode_byte("ping"), b""))
    header[4:8] = (0xFFFFFFFF).to_bytes(4, "big")
    with pytest.raises(CorruptFrameError):
        try_decode(bytes(header))
