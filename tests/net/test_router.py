"""Router behavior: partitioning, broadcast, and distributed commit.

Two in-process wire shards behind one :class:`Router`. Covers the
routing matrix (warehouse-keyed DML, DDL broadcast, replicated keyless
writes, affinity reads), lazy transaction enlistment, single-shard
commit fast path, cross-shard 2PC, and the coordinator's failure
behaviors: presumed abort when the decision never lands (an armed
"router.commit_decision" fault) and decision-log replay when it did.
"""

from __future__ import annotations

import pytest

from repro.errors import TransactionError, TransientFault
from repro.faults.actions import RaiseTransient
from repro.faults.schedules import OnNth
from repro.net.remote import RemoteServer
from repro.net.router import CommitDecisionLog, Router, shard_of
from repro.net.wireserver import WireServer
from repro.sqlengine.server import SqlServer

DDL = "CREATE TABLE T (ID INT PRIMARY KEY, W INT, VAL VARCHAR(32))"
INSERT = "INSERT INTO T (ID, W, VAL) VALUES (@id, @w, @v)"
UPDATE = "UPDATE T SET VAL = @v WHERE ID = @id AND W = @w"
SELECT_VAL = "SELECT VAL FROM T WHERE ID = @id AND W = @w"


@pytest.fixture()
def cluster(tmp_path):
    shards = [SqlServer(lock_timeout_s=0.5) for _ in range(2)]
    wires = [WireServer(s, name=f"shard{i}", shard_count=2).start() for i, s in enumerate(shards)]
    router = Router(
        [(w.host, w.port) for w in wires],
        name="R",
        decision_log=CommitDecisionLog(str(tmp_path / "decisions.log")),
    ).start()
    client = RemoteServer(router.host, router.port, affinity=1)
    yield shards, wires, router, client
    client.close()
    router.stop()
    for wire in wires:
        wire.stop()


def test_shard_of_partitioning():
    assert [shard_of(w, 2) for w in (1, 2, 3, 4)] == [0, 1, 0, 1]
    assert [shard_of(w, 4) for w in (1, 2, 3, 4, 5)] == [0, 1, 2, 3, 0]


def test_ddl_broadcast_and_keyed_routing(cluster):
    shards, _wires, _router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute(INSERT, {"id": 2, "w": 2, "v": "b"})
    rows0 = shards[0].connect().execute("SELECT ID FROM T", {}).rows
    rows1 = shards[1].connect().execute("SELECT ID FROM T", {}).rows
    assert [r[0] for r in rows0] == [1]
    assert [r[0] for r in rows1] == [2]


def test_keyless_write_broadcasts_keyless_read_uses_affinity(cluster):
    shards, _wires, _router, client = cluster
    session = client.connect()
    session.execute("CREATE TABLE ITEM (I_ID INT PRIMARY KEY, N VARCHAR(10))", {})
    session.execute("INSERT INTO ITEM (I_ID, N) VALUES (@id, @n)", {"id": 1, "n": "x"})
    for shard in shards:
        rows = shard.connect().execute("SELECT I_ID FROM ITEM", {}).rows
        assert [r[0] for r in rows] == [1]
    # Keyless read answered by exactly one shard (the affinity shard).
    assert len(session.execute("SELECT I_ID FROM ITEM", {}).rows) == 1


def test_single_shard_commit_skips_2pc(cluster):
    shards, _wires, router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute("BEGIN TRANSACTION", {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute("COMMIT", {})
    assert router.decisions.gtids() == frozenset()      # no 2PC needed
    assert shards[0].indoubt_gtids() == []


def test_cross_shard_commit_runs_2pc(cluster):
    shards, _wires, router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute("BEGIN TRANSACTION", {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute(INSERT, {"id": 2, "w": 2, "v": "b"})
    assert session.in_transaction
    session.execute("COMMIT", {})
    assert not session.in_transaction
    assert len(router.decisions.gtids()) == 1
    for shard, key, w in ((shards[0], 1, 1), (shards[1], 2, 2)):
        rows = shard.connect().execute(SELECT_VAL, {"id": key, "w": w}).rows
        assert len(rows) == 1
        assert shard.indoubt_gtids() == []


def test_cross_shard_rollback_reverts_both_branches(cluster):
    shards, _wires, _router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute("BEGIN TRANSACTION", {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute(INSERT, {"id": 2, "w": 2, "v": "b"})
    session.execute("ROLLBACK", {})
    for shard in shards:
        assert shard.connect().execute("SELECT ID FROM T", {}).rows == []


def test_transaction_verbs_require_open_transaction(cluster):
    _shards, _wires, _router, client = cluster
    session = client.connect()
    with pytest.raises(TransactionError):
        session.execute("COMMIT", {})
    with pytest.raises(TransactionError):
        session.execute("ROLLBACK", {})


def test_coordinator_fault_before_decision_presumed_abort(cluster, clean_fault_registry):
    """Fault at "router.commit_decision": both branches prepared, no
    decision recorded — the commit must fail and abort everywhere."""
    shards, _wires, router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute(INSERT, {"id": 2, "w": 2, "v": "b"})
    clean_fault_registry.arm(
        "router.commit_decision", OnNth(1), RaiseTransient("coordinator died")
    )
    session.execute("BEGIN TRANSACTION", {})
    session.execute(UPDATE, {"id": 1, "w": 1, "v": "x"})
    session.execute(UPDATE, {"id": 2, "w": 2, "v": "y"})
    with pytest.raises(TransientFault):
        session.execute("COMMIT", {})
    assert not session.in_transaction
    assert router.decisions.gtids() == frozenset()
    for shard, key, w, original in ((shards[0], 1, 1, "a"), (shards[1], 2, 2, "b")):
        assert shard.indoubt_gtids() == []
        rows = shard.connect().execute(SELECT_VAL, {"id": key, "w": w}).rows
        assert rows[0][0] == original


def test_decision_log_survives_coordinator_restart(cluster, tmp_path):
    """In-doubt branches resolve by decision-log membership after the
    coordinator process is rebuilt from its durable log."""
    shards, wires, router, client = cluster
    session = client.connect()
    session.execute(DDL, {})
    session.execute(INSERT, {"id": 1, "w": 1, "v": "a"})
    session.execute(INSERT, {"id": 2, "w": 2, "v": "b"})

    # Drive the branches by hand so the "crash" lands between the
    # decision record and the commit fan-out.
    d0 = RemoteServer(wires[0].host, wires[0].port)
    d1 = RemoteServer(wires[1].host, wires[1].port)
    b0, b1 = d0.connect(), d1.connect()
    b0.execute("BEGIN TRANSACTION", {})
    b1.execute("BEGIN TRANSACTION", {})
    b0.execute(UPDATE, {"id": 1, "w": 1, "v": "C1"})
    b1.execute(UPDATE, {"id": 2, "w": 2, "v": "C2"})
    committed_gtid, lost_gtid = "R:100", "R:101"
    b0.prepare_transaction(committed_gtid)
    b1.prepare_transaction(committed_gtid)
    router.decisions.record(committed_gtid)

    # A second transaction prepares on shard0 but never gets a decision.
    b0b = d0.connect()
    b0b.execute("BEGIN TRANSACTION", {})
    b0b.execute(INSERT, {"id": 3, "w": 1, "v": "z"})
    b0b.prepare_transaction(lost_gtid)

    # Both shards crash; recovery reinstates the in-doubt branches.
    for shard in shards:
        shard.crash()
    reports = [shard.recover() for shard in shards]
    assert reports[0].indoubt == [committed_gtid, lost_gtid]
    assert reports[1].indoubt == [committed_gtid]

    # A fresh coordinator (same log file) resolves by membership.
    restarted = Router(
        [(w.host, w.port) for w in wires],
        name="R2",
        decision_log=CommitDecisionLog(router.decisions.path),
    )
    try:
        outcomes = restarted.resolve_indoubt()
    finally:
        restarted.stop()
    assert outcomes == {committed_gtid: "commit", lost_gtid: "abort"}
    assert shards[0].connect().execute(SELECT_VAL, {"id": 1, "w": 1}).rows[0][0] == "C1"
    assert shards[1].connect().execute(SELECT_VAL, {"id": 2, "w": 2}).rows[0][0] == "C2"
    assert shards[0].connect().execute("SELECT ID FROM T WHERE W = @w", {"w": 1}).rows == [(1,)]
    d0.close()
    d1.close()


def test_audit_aggregates_all_shards(cluster):
    _shards, _wires, router, _client = cluster
    assert router.audit() == []     # empty DB: trivially consistent
