"""The snapshot-restoring adversary vs. the freshness anchor.

Three claims, each pinned across every rollback action and seeded
schedule:

1. **Detection** (anchor on): a restored old-but-internally-consistent
   database — whole backup, replayed pages, reverted index heap pages,
   pre-rotation CEK state — raises :class:`StaleRestoreError` at
   recovery. Every ciphertext in the restored state still verifies;
   only the anchor knows it is yesterday's.
2. **Silent acceptance** (anchor off, the paper's actual system):
   the identical attack recovers without a murmur — the baseline that
   motivates the anchor.
3. **Zero false positives** (anchor on): the *entire* pre-existing
   crash-torture matrix — torn writes, partial flushes, forced crashes
   at every engine site, plus the new "freshness.advance" and
   "freshness.verify" sites — recovers cleanly with the anchor armed,
   and the four classic recovery invariants still hold, joined by the
   fifth: **freshness** — recovery either verifies the anchor or raises
   a typed StaleRestoreError; a verified recovery re-anchors, so an
   immediate second crash + recovery verifies again.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.attestation.tpm import TpmNvAnchor
from repro.errors import ForcedCrash, StaleRestoreError
from repro.faults import (
    ForceCrash,
    OnNth,
    RaiseTransient,
    ReplayPages,
    RestoreSnapshot,
    RevertBtreeNodes,
    SeededProbability,
    StaleCekVersion,
    get_fault_registry,
)
from repro.keys.cek import CekEncryptedValue, ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.sqlengine.catalog import TableSchema, plain_column
from repro.sqlengine.engine import StorageEngine
from repro.sqlengine.storage.freshness import FreshnessAnchor
from tests.faults.test_torture import (
    ENGINE_SITE_ACTIONS,
    SCHEDULES,
    assert_recovery_invariants,
    make_steps,
    run_workload,
)

# --------------------------------------------------------------- harness


def build_engine(anchored: bool) -> StorageEngine:
    freshness = FreshnessAnchor(TpmNvAnchor()) if anchored else None
    engine = StorageEngine(
        lock_timeout_s=0.05,
        ctr_enabled=False,
        buffer_pool_pages=4,
        freshness=freshness,
    )
    engine.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("k", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("k",),
        )
    )
    return engine


def _rid_for(engine: StorageEngine, key: int):
    rids = engine.table("t").indexes["pk_t"].tree.search_eq((key,))
    return rids[0] if rids else None


def visible_state(engine: StorageEngine) -> dict[int, int]:
    return {row[0]: row[1] for __, row in engine.scan("t")}


def apply_committed_steps(
    engine: StorageEngine, rng: random.Random, expected: dict[int, int], n: int
) -> None:
    """Run n committed insert-or-update transactions, tracking state.

    Raises ForcedCrash through to the caller — that is the armed
    rollback firing.
    """
    for __ in range(n):
        key = rng.randrange(40)
        value = rng.randint(0, 10_000)
        txn = engine.begin()
        if key in expected:
            rid = _rid_for(engine, key)
            engine.update(txn, "t", rid, (key, value))
        else:
            engine.insert(txn, "t", (key, value))
        engine.commit(txn)
        expected[key] = value


def _make_cek(name: str) -> ColumnEncryptionKey:
    return ColumnEncryptionKey(
        name=name,
        encrypted_values=[
            CekEncryptedValue(
                column_master_key_name="CMK_ROT",
                algorithm="RSA_OAEP",
                encrypted_value=name.encode() + b"-sealed",
                signature=b"sig",
            )
        ],
    )


ROLLBACK_ACTIONS = [
    ("restore-snapshot", lambda: RestoreSnapshot()),
    ("replay-pages", lambda: ReplayPages()),
    ("revert-btree-nodes", lambda: RevertBtreeNodes("t")),
    ("stale-cek-version", lambda: StaleCekVersion()),
]

ROLLBACK_SCHEDULES = [
    ("second-commit", lambda seed: OnNth(2)),
    ("fifth-commit", lambda seed: OnNth(5)),
    ("seeded-p25", lambda seed: SeededProbability(0.25, seed=seed)),
]


def run_rollback_scenario(action, schedule, anchored: bool):
    """The attack script shared by the detection and baseline tests.

    Phase A establishes history; the adversary captures its backup; two
    checkpointed mutation rounds then guarantee the captured state is
    genuinely stale (WAL chain advanced, every hot page rewritten at
    least twice, so no crash-window tolerance can excuse the restore);
    phase C runs with the rollback armed at ``engine.commit`` until it
    fires, swapping the stale state in and force-crashing the host.

    Returns ``(engine, expected_at_capture, expected_at_crash)``.
    """
    engine = build_engine(anchored)
    # A pre-"rotation" CEK generation the stale-CEK attack will resurrect.
    engine.catalog.create_cmk(
        ColumnMasterKey(
            name="CMK_ROT",
            key_store_provider_name="TEST",
            key_path="test/rot",
            allow_enclave_computations=False,
            signature=b"",
        )
    )
    engine.catalog.create_cek(_make_cek("CEK_V1"))

    seed = zlib.crc32(f"{type(action).__name__}".encode()) % (2**31)
    rng = random.Random(seed)
    expected: dict[int, int] = {}

    apply_committed_steps(engine, rng, expected, 10)
    engine.checkpoint()
    expected_at_capture = dict(expected)
    action.capture(engine)

    # The "rotation" happens after the backup: a second CEK generation
    # plus two checkpointed rounds of data churn.
    engine.catalog.create_cek(_make_cek("CEK_V2"))
    apply_committed_steps(engine, rng, expected, 8)
    engine.checkpoint()
    apply_committed_steps(engine, rng, expected, 5)
    engine.checkpoint()

    faults = get_fault_registry()
    armed = faults.arm("engine.commit", schedule, action)
    try:
        apply_committed_steps(engine, rng, expected, 10)
    except ForcedCrash:
        pass
    finally:
        faults.disarm(armed)
    if not action.restored:
        # A probabilistic schedule that never fired: the host does not
        # need an armed fault to pull the plug and restore its backup.
        action.restore()
    engine.crash()
    return engine, expected_at_capture, dict(expected)


# ----------------------------------------------------- rollback detection


class TestRollbackDetection:
    @pytest.mark.parametrize("schedule_name,make_schedule", ROLLBACK_SCHEDULES)
    @pytest.mark.parametrize(
        "action_name,make_action", ROLLBACK_ACTIONS, ids=[n for n, __ in ROLLBACK_ACTIONS]
    )
    def test_every_rollback_detected_with_anchor_on(
        self, action_name, make_action, schedule_name, make_schedule
    ):
        seed = zlib.crc32(f"{action_name}|{schedule_name}".encode()) % (2**31)
        engine, expected_at_capture, __ = run_rollback_scenario(
            make_action(), make_schedule(seed), anchored=True
        )
        with pytest.raises(StaleRestoreError):
            engine.recover()

        # The operator's way out: accept the restored state, re-anchoring
        # it as the new present; recovery then proceeds.
        engine.freshness.rebaseline()
        engine.crash()
        report = engine.recover()
        assert report.freshness_verified
        assert engine.verify_index_consistency() == []

    def test_whole_backup_restore_recovers_to_capture_state_after_accept(self):
        engine, expected_at_capture, __ = run_rollback_scenario(
            RestoreSnapshot(), OnNth(2), anchored=True
        )
        with pytest.raises(StaleRestoreError):
            engine.recover()
        engine.freshness.rebaseline()
        engine.crash()
        engine.recover()
        # The accepted restore IS the backup: recovery lands exactly on
        # the captured state. (The CEK system table is outside this
        # action's blast radius — StaleCekVersion covers that.)
        assert visible_state(engine) == expected_at_capture

    def test_detection_names_the_violation_kind(self):
        engine, *__ = run_rollback_scenario(RestoreSnapshot(), OnNth(2), anchored=True)
        with pytest.raises(StaleRestoreError, match="wal.prefix"):
            engine.recover()
        engine2, *__ = run_rollback_scenario(ReplayPages(), OnNth(2), anchored=True)
        with pytest.raises(StaleRestoreError, match="page.stale"):
            engine2.recover()


# ------------------------------------------- anchor-off silent acceptance


class TestSilentAcceptanceBaseline:
    @pytest.mark.parametrize(
        "action_name,make_action", ROLLBACK_ACTIONS, ids=[n for n, __ in ROLLBACK_ACTIONS]
    )
    def test_anchor_off_accepts_every_rollback_silently(self, action_name, make_action):
        """The paper-mode system: integrity without freshness. The same
        attack that trips the anchor recovers without any error."""
        engine, expected_at_capture, expected_at_crash = run_rollback_scenario(
            make_action(), OnNth(2), anchored=False
        )
        report = engine.recover()  # no exception: the rollback is invisible
        assert not report.freshness_verified
        assert engine.verify_index_consistency() == []
        if isinstance(engine, StorageEngine) and action_name == "restore-snapshot":
            # Committed transactions silently vanished — the durability
            # violation the anchor exists to surface.
            assert visible_state(engine) == expected_at_capture
            assert expected_at_capture != expected_at_crash

    def test_stale_cek_restore_resurrects_pre_rotation_keys(self):
        engine, *__ = run_rollback_scenario(StaleCekVersion(), OnNth(2), anchored=False)
        engine.recover()
        assert [c.name for c in engine.catalog.ceks()] == ["CEK_V1"]


# --------------------------------------- zero false positives under fire


def anchored_torture_engine() -> StorageEngine:
    engine = StorageEngine(
        lock_timeout_s=0.05,
        ctr_enabled=False,
        buffer_pool_pages=4,
        freshness=FreshnessAnchor(TpmNvAnchor()),
    )
    engine.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("k", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("k",),
        )
    )
    return engine


ANCHORED_EXTRA_SITE_ACTIONS = [
    # A crash in the flush→advance / advance→write windows is exactly
    # what the tolerance rules exist for.
    ("freshness.advance", lambda: ForceCrash()),
    ("freshness.advance", lambda: RaiseTransient()),
]


class TestAnchoredTortureNoFalsePositives:
    """The fifth recovery invariant: freshness, with zero false alarms.

    The full pre-existing torture matrix runs again with the anchor ON.
    Every run must recover WITHOUT StaleRestoreError (no fault in this
    matrix is a rollback — nothing old is ever restored), the four
    classic invariants must hold, and the recovery report must show the
    anchor actually verified.
    """

    @pytest.mark.parametrize("schedule_name,make_schedule", SCHEDULES)
    @pytest.mark.parametrize(
        "site,make_action",
        ENGINE_SITE_ACTIONS + ANCHORED_EXTRA_SITE_ACTIONS,
        ids=[
            f"{site}-{i}"
            for i, (site, __) in enumerate(ENGINE_SITE_ACTIONS + ANCHORED_EXTRA_SITE_ACTIONS)
        ],
    )
    def test_no_stale_restore_raised_for_genuine_crashes(
        self, site, make_action, schedule_name, make_schedule
    ):
        seed = zlib.crc32(f"anchored|{site}|{schedule_name}".encode()) % (2**31)
        faults = get_fault_registry()
        engine = anchored_torture_engine()
        armed = faults.arm(site, make_schedule(seed), make_action())
        try:
            expected, ambiguous = run_workload(engine, make_steps(seed), seed)
        finally:
            faults.disarm(armed)
        engine.crash()
        try:
            report = engine.recover()
        except StaleRestoreError as exc:  # pragma: no cover - the failure mode
            pytest.fail(f"false positive at {site}/{schedule_name}: {exc}")
        # Fifth invariant, part 1: the anchor verified this recovery.
        assert report.freshness_verified
        assert report.anchor_epoch is not None
        # Classic four invariants — including the embedded second
        # crash+recover, which with the anchor on also exercises
        # re-verification against the re-anchored head (part 2).
        assert_recovery_invariants(engine, expected, ambiguous)

    def test_crash_during_recovery_verification_is_retryable(self):
        """A crash at the freshness.verify fault site aborts recovery
        before the anchor is consulted; the retry verifies cleanly."""
        faults = get_fault_registry()
        engine = anchored_torture_engine()
        rng = random.Random(7)
        expected: dict[int, int] = {}
        apply_committed_steps(engine, rng, expected, 12)
        engine.checkpoint()
        engine.crash()
        armed = faults.arm("freshness.verify", OnNth(1), ForceCrash())
        try:
            with pytest.raises(ForcedCrash):
                engine.recover()
        finally:
            faults.disarm(armed)
        engine.crash()
        report = engine.recover()
        assert report.freshness_verified
        assert visible_state(engine) == expected

    def test_unharmed_anchored_baseline_is_clean(self):
        engine = anchored_torture_engine()
        expected, ambiguous = run_workload(engine, make_steps(4321), 4321)
        assert ambiguous == {}
        engine.crash()
        report = engine.recover()
        assert report.freshness_verified
        assert_recovery_invariants(engine, expected, ambiguous)

    def test_log_truncation_seals_the_anchor_base(self):
        """Truncation moves the anchor's chain base; recovery after it
        verifies from the sealed base, and a restore from *before* the
        truncation fails the base check."""
        engine = anchored_torture_engine()
        rng = random.Random(11)
        expected: dict[int, int] = {}
        apply_committed_steps(engine, rng, expected, 6)
        engine.checkpoint()
        pre_truncation = RestoreSnapshot()
        pre_truncation.capture(engine)
        apply_committed_steps(engine, rng, expected, 4)
        engine.checkpoint()
        assert engine.truncate_log() > 0
        engine.crash()
        report = engine.recover()
        assert report.freshness_verified
        assert visible_state(engine) == expected
        # Now the attack: restore the pre-truncation backup.
        pre_truncation.restore()
        engine.crash()
        with pytest.raises(StaleRestoreError, match="wal.base"):
            engine.recover()
