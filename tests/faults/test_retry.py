"""Driver retry/backoff acceptance: transients absorbed, fatals surfaced.

The classifier decides; the driver retries only classified-transient
failures of idempotent control-plane round-trips (describe, attest, CEK
package delivery), with bounded exponential backoff. Fatal faults and
exhausted budgets surface the classified error immediately — never a
hang, never a silent wrong answer.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import FatalFault, TransientFault
from repro.faults import (
    Always,
    DropMessage,
    OnNth,
    RaiseFatal,
    RaiseTransient,
    get_fault_registry,
)
from repro.obs.metrics import get_registry
from tests.conftest import make_encrypted_table


def arm(site, schedule, action):
    return get_fault_registry().arm(site, schedule, action)


class TestTransparentRetry:
    def test_describe_transient_is_retried_transparently(self, ae_connection):
        armed = arm("driver.describe_parameter_encryption", OnNth(1), RaiseTransient())
        try:
            make_encrypted_table(ae_connection)
            ae_connection.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 42}
            )
            result = ae_connection.execute(
                "SELECT id, value FROM T WHERE value < @m", {"m": 100}
            )
        finally:
            get_fault_registry().disarm(armed)
        assert result.rows == [(1, 42)]
        assert ae_connection.stats.retries > 0

    def test_channel_send_drop_is_retried_transparently(self, ae_connection):
        baseline_injected = get_registry().value("faults.injected")
        armed = arm("enclave.channel.send", OnNth(1), DropMessage())
        try:
            make_encrypted_table(ae_connection)
            ae_connection.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 7, "v": 3}
            )
            result = ae_connection.execute(
                "SELECT id FROM T WHERE value < @m", {"m": 10}
            )
        finally:
            get_fault_registry().disarm(armed)
        assert result.rows == [(7,)]
        assert ae_connection.stats.retries > 0
        assert get_registry().value("faults.injected") > baseline_injected

    def test_retried_send_never_replays_a_consumed_nonce(self, ae_connection):
        # The drop fires *before* delivery, so the retry reuses the nonce
        # the enclave never saw — it must not be rejected as a replay.
        baseline_rejected = get_registry().value("enclave.replays_rejected")
        armed = arm("enclave.channel.send", OnNth(1), DropMessage())
        try:
            make_encrypted_table(ae_connection)
            ae_connection.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 1}
            )
            ae_connection.execute("SELECT id FROM T WHERE value < @m", {"m": 10})
        finally:
            get_fault_registry().disarm(armed)
        assert get_registry().value("enclave.replays_rejected") == baseline_rejected

    def test_retry_stats_visible_in_explain(self, ae_connection):
        armed = arm("driver.describe_parameter_encryption", OnNth(1), RaiseTransient())
        try:
            make_encrypted_table(ae_connection)
            text = ae_connection.explain_stats(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
            )
        finally:
            get_fault_registry().disarm(armed)
        assert "retries" in text
        assert "faults_injected" in text


class TestBoundedBackoff:
    def test_exhausted_budget_raises_the_transient(self, ae_connection):
        armed = arm("driver.describe_parameter_encryption", Always(), RaiseTransient())
        baseline_retries = ae_connection.stats.retries
        try:
            make_encrypted_table(ae_connection)  # DDL path has no describe
            with pytest.raises(TransientFault):
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
        finally:
            get_fault_registry().disarm(armed)
        # max_attempts tries, so max_attempts - 1 recorded retries.
        expected = ae_connection.options.retry_max_attempts - 1
        assert ae_connection.stats.retries - baseline_retries == expected

    def test_backoff_is_bounded_not_a_hang(self, ae_connection):
        armed = arm("driver.describe_parameter_encryption", Always(), RaiseTransient())
        try:
            make_encrypted_table(ae_connection)
            started = time.monotonic()
            with pytest.raises(TransientFault):
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
            elapsed = time.monotonic() - started
        finally:
            get_fault_registry().disarm(armed)
        # 3 backoffs capped at 0.05s each — far under a second even with
        # scheduler noise.
        assert elapsed < 2.0

    def test_retry_budget_is_configurable(
        self, server, registry, attestation_policy, enclave_cmk, enclave_cek
    ):
        from repro.client.driver import connect

        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        connection = connect(
            server,
            registry,
            attestation_policy=attestation_policy,
            retry_max_attempts=2,
            retry_backoff_base_s=0.0,
            retry_backoff_cap_s=0.0,
        )
        armed = arm("driver.describe_parameter_encryption", Always(), RaiseTransient())
        baseline = connection.stats.retries
        try:
            make_encrypted_table(connection)
            with pytest.raises(TransientFault):
                connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
        finally:
            get_fault_registry().disarm(armed)
        assert connection.stats.retries - baseline == 1


class TestFatalClassification:
    def test_fatal_fault_surfaces_immediately(self, ae_connection):
        armed = arm("driver.describe_parameter_encryption", Always(), RaiseFatal())
        baseline_retries = ae_connection.stats.retries
        try:
            make_encrypted_table(ae_connection)
            with pytest.raises(FatalFault):
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
        finally:
            get_fault_registry().disarm(armed)
        assert ae_connection.stats.retries == baseline_retries  # no retry

    def test_fatal_fault_in_engine_commit_is_classified_not_hung(self, ae_connection):
        make_encrypted_table(ae_connection)
        armed = arm("engine.commit", Always(), RaiseFatal())
        try:
            with pytest.raises(FatalFault) as excinfo:
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
        finally:
            get_fault_registry().disarm(armed)
        assert excinfo.value.site == "engine.commit"

    def test_dml_is_never_silently_retried(self, ae_connection):
        # A transient fault during commit of a DML statement must surface:
        # re-executing DML behind the application's back is not idempotent.
        make_encrypted_table(ae_connection)
        armed = arm("engine.commit", OnNth(1), RaiseTransient())
        baseline_retries = ae_connection.stats.retries
        try:
            with pytest.raises(TransientFault):
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 2}
                )
        finally:
            get_fault_registry().disarm(armed)
        assert ae_connection.stats.retries == baseline_retries
