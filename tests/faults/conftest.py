"""Fault-injection test fixtures.

Every test in this package runs against the process-global fault
registry, so a leaked arming would poison every later test in the
session. The autouse fixture guarantees a disarmed registry on both
sides of each test.
"""

from __future__ import annotations

import pytest

from repro.faults import get_fault_registry


@pytest.fixture(autouse=True)
def disarm_faults():
    registry = get_fault_registry()
    registry.disarm_all()
    yield registry
    registry.disarm_all()
