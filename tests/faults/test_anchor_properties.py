"""Property tests: the freshness anchor's WAL chain discipline.

Authenticated encryption leaves exactly one gap a storage adversary can
use without breaking a tag: presenting *old* bytes. These properties pin
the anchor's verdict over arbitrary recorded histories:

* an unmodified durable log **always** verifies — including histories
  with an unflushed volatile tail and histories whose final flush never
  reached the anchor (the crash window between fsync and the advance
  ecall). Zero false positives, by construction, over every generated
  history;
* a **strict prefix** of the recorded history (a restored old log) is
  rejected with ``wal.prefix``;
* a **fork** — same length, one record's payload rewritten, chain cache
  recomputed so the log is internally consistent — is rejected with
  ``wal.fork``;
* a **segment swap** — two records' contents exchanged, lsn order kept,
  chain cache recomputed — is rejected with ``wal.fork``;
* a restore from **before a sealed truncation** is rejected with
  ``wal.base``.

The suites below total well over 200 generated histories per run. They
drive a bare :class:`WriteAheadLog` against a
:class:`~repro.attestation.tpm.TpmNvAnchor` (the same
:class:`~repro.enclave.anchor.AnchorState` the enclave holds) — no
engine, so each example is pure hashing and stays fast.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.attestation.tpm import TpmNvAnchor
from repro.sqlengine.storage.wal import (
    CHAIN_GENESIS,
    LogOp,
    LogRecord,
    WalSnapshot,
    WriteAheadLog,
    chain_fold,
    encode_record,
)

# One history step: (txn id, op, after-image payload, flush afterwards?)
STEP = st.tuples(
    st.integers(0, 5),
    st.sampled_from(
        [LogOp.BEGIN, LogOp.INSERT, LogOp.UPDATE, LogOp.DELETE, LogOp.COMMIT]
    ),
    st.binary(min_size=0, max_size=8),
    st.booleans(),
)
HISTORY = st.lists(STEP, min_size=0, max_size=30)
NONEMPTY_HISTORY = st.lists(STEP, min_size=1, max_size=30)


def record_history(steps, final_flush: bool = True):
    """Record ``steps`` into a fresh WAL wired to a fresh anchor."""
    wal = WriteAheadLog()
    anchor = TpmNvAnchor()
    chain_lsn, chain_digest = wal.chain_state()
    base_lsn, base_digest = wal.chain_base()
    anchor.anchor_attach({}, chain_lsn, chain_digest, base_lsn, base_digest)
    wal.flush_hook = lambda lsn, digest: anchor.anchor_advance(
        chain_lsn=lsn, chain_digest=digest
    )
    for txn_id, op, payload, do_flush in steps:
        wal.append(txn_id, op, table="t", after=payload)
        if do_flush:
            wal.flush()
    if final_flush:
        wal.flush()
    return wal, anchor


def verify(wal: WriteAheadLog, anchor: TpmNvAnchor):
    base_lsn, base_digest = wal.chain_base()
    return anchor.anchor_verify(
        base_lsn, base_digest, wal.durable_chain_blobs(), {}, set()
    )


def consistent_snapshot(wal: WriteAheadLog, records: list[LogRecord]) -> WalSnapshot:
    """An internally consistent WAL snapshot over tampered ``records``.

    The adversary controls the log file, so after rewriting records they
    also rewrite the host-side chain cache to match — everything the
    host can check adds up; only the anchor's held head does not.
    """
    snap = wal.snapshot_state()
    digest = snap.base_digest
    for record in records:
        if record.lsn > snap.flushed_lsn:
            break
        digest = chain_fold(digest, encode_record(record))
    return WalSnapshot(
        records=tuple(records),
        next_lsn=snap.next_lsn,
        flushed_lsn=snap.flushed_lsn,
        chain_lsn=min(snap.chain_lsn, snap.flushed_lsn),
        chain_digest=digest,
        base_lsn=snap.base_lsn,
        base_digest=snap.base_digest,
    )


def replace(record: LogRecord, other: LogRecord) -> LogRecord:
    """``record``'s slot (lsn) holding ``other``'s content."""
    return LogRecord(
        lsn=record.lsn,
        txn_id=other.txn_id,
        op=other.op,
        table=other.table,
        rid=other.rid,
        before=other.before,
        after=other.after,
    )


class TestUnmodifiedHistoriesAlwaysVerify:
    """Zero false positives over arbitrary genuine histories."""

    @settings(max_examples=100, deadline=None)
    @given(steps=HISTORY, final_flush=st.booleans())
    def test_recorded_history_verifies(self, steps, final_flush):
        wal, anchor = record_history(steps, final_flush=final_flush)
        wal.drop_unflushed()  # crash: the volatile tail is gone
        verdict = verify(wal, anchor)
        assert verdict.ok, verdict.describe()
        # The successful verify re-anchored the head; verifying the same
        # durable state again must also pass, with no suffix left.
        again = verify(wal, anchor)
        assert again.ok and again.unanchored_suffix == 0

    @settings(max_examples=50, deadline=None)
    @given(steps=HISTORY)
    def test_unanchored_final_flush_is_tolerated(self, steps):
        # Crash window: the last flush became durable but the advance
        # ecall never ran — the anchor's head is behind the durable tail.
        wal, anchor = record_history(steps, final_flush=True)
        wal.flush_hook = None
        wal.append(99, LogOp.COMMIT, table="t")
        wal.flush()
        verdict = verify(wal, anchor)
        assert verdict.ok, verdict.describe()
        assert verdict.unanchored_suffix >= 1


class TestRollbackHistoriesAlwaysRejected:
    """Every tampered presentation of the log fails the fold."""

    @settings(max_examples=50, deadline=None)
    @given(prefix=HISTORY, suffix=NONEMPTY_HISTORY)
    def test_strict_prefix_rejected(self, prefix, suffix):
        wal, anchor = record_history(prefix, final_flush=True)
        backup = wal.snapshot_state()  # the adversary's old copy
        for txn_id, op, payload, __ in suffix:
            wal.append(txn_id, op, table="t", after=payload)
        wal.flush()  # anchored: the head moves past the backup
        wal.restore_state(backup)
        verdict = verify(wal, anchor)
        assert not verdict.ok
        assert "wal.prefix" in verdict.violations

    @settings(max_examples=50, deadline=None)
    @given(steps=NONEMPTY_HISTORY, pick=st.integers(0, 2**31))
    def test_fork_rejected(self, steps, pick):
        wal, anchor = record_history(steps, final_flush=True)
        records = list(wal.snapshot_state().records)
        i = pick % len(records)
        victim = records[i]
        forked = LogRecord(
            lsn=victim.lsn,
            txn_id=victim.txn_id,
            op=victim.op,
            table=victim.table,
            rid=victim.rid,
            before=victim.before,
            after=(victim.after or b"") + b"\x01",
        )
        records[i] = forked
        wal.restore_state(consistent_snapshot(wal, records))
        verdict = verify(wal, anchor)
        assert not verdict.ok
        assert "wal.fork" in verdict.violations

    @settings(max_examples=50, deadline=None)
    @given(steps=st.lists(STEP, min_size=2, max_size=30), pick=st.integers(0, 2**31))
    def test_segment_swap_rejected(self, steps, pick):
        wal, anchor = record_history(steps, final_flush=True)
        records = list(wal.snapshot_state().records)
        i = pick % (len(records) - 1)
        j = i + 1
        # A swap of identical records is not a tamper at all.
        assume(
            encode_record(replace(records[i], records[j]))
            != encode_record(records[i])
        )
        records[i], records[j] = (
            replace(records[i], records[j]),
            replace(records[j], records[i]),
        )
        wal.restore_state(consistent_snapshot(wal, records))
        verdict = verify(wal, anchor)
        assert not verdict.ok
        assert "wal.fork" in verdict.violations

    @settings(max_examples=25, deadline=None)
    @given(steps=NONEMPTY_HISTORY, tail=NONEMPTY_HISTORY)
    def test_restore_from_before_truncation_rejected(self, steps, tail):
        wal, anchor = record_history(steps, final_flush=True)
        backup = wal.snapshot_state()
        # Seal the flushed horizon as the new base, then truncate — the
        # same two-step the engine's truncate_log performs.
        chain_lsn, chain_digest = wal.chain_state()
        anchor.anchor_truncate(chain_lsn + 1, chain_digest)
        wal.truncate_before(chain_lsn + 1)
        for txn_id, op, payload, __ in tail:
            wal.append(txn_id, op, table="t", after=payload)
        wal.flush()
        wal.restore_state(backup)
        verdict = verify(wal, anchor)
        assert not verdict.ok
        assert "wal.base" in verdict.violations
