"""Crash-torture over the online key-rotation fault sites.

One fault armed at one rotation-path site per run — ``rotation.begin``,
``rotation.batch``, ``rotation.checkpoint``, ``rotation.end``,
``enclave.recrypt_batch``, plus the underlying ``wal.append`` /
``wal.flush`` the checkpoints ride on — while a rotation sweeps a
populated column. After ``crash(); recover()``:

* **exactly-one-key** — every stored envelope MAC-verifies under exactly
  one of {old, new} CEK (the enclave's pass-through makes batch replay
  idempotent, so a half-applied batch can never leave a third state);
* **no lost rows** — every pre-fault row is present and decrypts to its
  original value through a fresh client;
* **resumability** — if recovery reinstated the rotation, a client that
  re-attests and re-authorizes the same statement text drives it to the
  terminal all-new state with the version bump applied exactly once.

The pre-rotation *restore* adversary gets its own class: restoring a
backup taken before the rotation must be refused by BOTH the WAL-chain
anchor (``wal.prefix``) and the per-CEK version floor
(``cek.version:<name>``).
"""

from __future__ import annotations

import pytest

from repro.crypto.aead import CellCipher
from repro.errors import FaultInjected, ForcedCrash, StaleRestoreError
from repro.faults import ForceCrash, OnNth, PartialFlush, RaiseTransient, get_fault_registry
from repro.faults.rollback import StaleCekVersion
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.server import QUARANTINE_MESSAGE
from repro.tools.rotation import resume_rotation, rotate_cek_online

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
ROWS = 40

# Every fault site the rotation path registers, each crashed at an early
# and a later hit so the begin/first-batch/mid-sweep/end phases are all
# exercised. ``enclave.recrypt_batch`` fires per cell inside the ecall;
# a crash there models the enclave worker dying mid-batch.
ROTATION_SITES = [
    ("rotation.begin", 1),
    ("rotation.batch", 1),
    ("rotation.batch", 3),
    ("rotation.checkpoint", 1),
    ("rotation.checkpoint", 3),
    ("rotation.end", 1),
    ("enclave.recrypt_batch", 1),
    ("enclave.recrypt_batch", 17),
]

WAL_SITES = [
    ("wal.append", ForceCrash, 2),
    ("wal.flush", ForceCrash, 2),
    ("wal.flush", lambda: PartialFlush(drop_last=1), 2),
]


def build(stack_factory):
    stack = stack_factory()
    stack.conn.execute_ddl(
        "CREATE TABLE T(id int PRIMARY KEY, value int ENCRYPTED WITH "
        "(COLUMN_ENCRYPTION_KEY = RotOldCEK, ENCRYPTION_TYPE = Randomized, "
        f"ALGORITHM = '{ALGO}'))"
    )
    for i in range(ROWS):
        stack.conn.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 3}
        )
    return stack


def census(stack) -> dict[str, int]:
    engine = stack.server.engine
    slot = engine.table("T").schema.column_index("value")
    old = CellCipher(stack.materials["RotOldCEK"])
    new = CellCipher(stack.materials["RotNewCEK"])
    counts = {"old": 0, "new": 0, "neither": 0, "both": 0}
    for __, row in engine.scan("T"):
        cell = row[slot]
        assert isinstance(cell, Ciphertext), f"non-ciphertext cell {cell!r}"
        under_old = old.verify(cell.envelope)
        under_new = new.verify(cell.envelope)
        if under_old and under_new:
            counts["both"] += 1
        elif under_old:
            counts["old"] += 1
        elif under_new:
            counts["new"] += 1
        else:
            counts["neither"] += 1
    return counts


def drive_until_fault(stack, rid) -> BaseException | None:
    """Step the rotation until it finishes or the armed fault fires."""
    try:
        while True:
            more, __ = stack.server.rotate_step(rid)
            if not more:
                return None
    except (ForcedCrash, FaultInjected) as exc:
        return exc


def assert_recovered_consistent(stack, expect_resumable: bool) -> None:
    counts = census(stack)
    assert counts["neither"] == 0 and counts["both"] == 0, counts
    assert counts["old"] + counts["new"] == ROWS, counts

    report = stack.server.rotation_states()
    active = [s for s in report if s.active]
    if active:
        assert expect_resumable
        rid = active[0].rotation_id
        conn = stack.fresh_conn()
        resume_rotation(conn, rid, "T", "value", "RotNewCEK", old_cek="RotOldCEK")
    assert not any(s.active for s in stack.server.rotation_states())

    # Terminal (or never-started) state must be single-keyed...
    counts = census(stack)
    assert counts["old"] == 0 or counts["new"] == 0, counts
    if counts["new"] == ROWS:
        assert stack.server.cek_versions() == {"RotNewCEK": 2}
    else:
        # The fault killed the rotation before its begin became durable:
        # the untouched column must not have ratcheted any version.
        assert counts["old"] == ROWS
        assert stack.server.cek_versions() == {}

    # ...and every row readable with its original value by a fresh client.
    conn = stack.fresh_conn()
    rows = conn.execute("SELECT id, value FROM T").rows
    assert sorted(rows) == [(i, i * 3) for i in range(ROWS)]

    # Idempotence: another crash + recovery changes nothing.
    before = census(stack)
    stack.server.crash()
    stack.server.recover()
    assert census(stack) == before


class TestRotationCrashMatrix:
    @pytest.mark.parametrize(
        "site,nth", ROTATION_SITES, ids=[f"{s}-hit{n}" for s, n in ROTATION_SITES]
    )
    def test_crash_at_rotation_site(self, site, nth, rotation_stack_factory):
        faults = get_fault_registry()
        stack = build(rotation_stack_factory)
        armed = faults.arm(site, OnNth(nth), ForceCrash())
        try:
            try:
                rid = rotate_cek_online(
                    stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
                )
            except (ForcedCrash, FaultInjected):
                rid = None  # begin itself crashed
            if rid is not None:
                drive_until_fault(stack, rid)
        finally:
            faults.disarm(armed)
        stack.server.crash()
        stack.server.recover()
        assert_recovered_consistent(stack, expect_resumable=True)

    @pytest.mark.parametrize(
        "site,action,nth",
        WAL_SITES,
        ids=[f"{s}-{i}" for i, (s, __, ___) in enumerate(WAL_SITES)],
    )
    def test_crash_at_wal_site_under_rotation(
        self, site, action, nth, rotation_stack_factory
    ):
        faults = get_fault_registry()
        stack = build(rotation_stack_factory)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
        )
        armed = faults.arm(site, OnNth(nth), action())
        try:
            drive_until_fault(stack, rid)
        except Exception:
            pass  # non-crash fault surfaced through the step: fine
        finally:
            faults.disarm(armed)
        stack.server.crash()
        stack.server.recover()
        assert_recovered_consistent(stack, expect_resumable=True)

    def test_transient_batch_fault_does_not_kill_the_job(
        self, rotation_stack_factory
    ):
        """A transient fault inside one batch aborts only that batch; the
        driving loop simply calls step again."""
        faults = get_fault_registry()
        stack = build(rotation_stack_factory)
        rid = rotate_cek_online(
            stack.conn, "T", "value", "RotNewCEK", batch_size=8, run=False
        )
        armed = faults.arm("rotation.batch", OnNth(2), RaiseTransient())
        try:
            with pytest.raises(Exception):
                stack.server.rotate_run(rid)
            total = stack.server.rotate_run(rid)  # retry completes the sweep
            assert total >= 0
        finally:
            faults.disarm(armed)
        counts = census(stack)
        assert counts["new"] == ROWS and counts["old"] == 0
        assert stack.server.cek_versions() == {"RotNewCEK": 2}

    def test_matrix_covers_every_rotation_fault_site(self):
        covered = {site for site, __ in ROTATION_SITES}
        assert covered == {
            "rotation.begin",
            "rotation.batch",
            "rotation.checkpoint",
            "rotation.end",
            "enclave.recrypt_batch",
        }


class TestPreRotationRestoreRefused:
    """The acceptance scenario: a backup taken before the rotation is
    restored afterwards. Recovery must refuse it, and the violation list
    must show BOTH independent detections — the WAL chain no longer
    extends the anchored head, and the catalog's CEK version sits below
    the enclave-held floor."""

    def _anchored_stack(self, factory):
        stack = factory(freshness=True)
        stack.conn.execute_ddl(
            "CREATE TABLE T(id int PRIMARY KEY, value int ENCRYPTED WITH "
            "(COLUMN_ENCRYPTION_KEY = RotOldCEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}'))"
        )
        for i in range(ROWS):
            stack.conn.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 3}
            )
        return stack

    def test_pre_rotation_backup_restore_is_quarantined(
        self, rotation_stack_factory
    ):
        stack = self._anchored_stack(rotation_stack_factory)
        backup = StaleCekVersion()
        backup.capture(stack.server.engine)

        rotate_cek_online(stack.conn, "T", "value", "RotNewCEK", batch_size=8)
        assert stack.server.cek_versions() == {"RotNewCEK": 2}
        stack.server.engine.checkpoint()

        backup.restore()
        stack.server.crash()
        with pytest.raises(StaleRestoreError):
            stack.server.recover()
        assert stack.server.quarantined
        session = stack.server.connect()
        with pytest.raises(StaleRestoreError) as refusal:
            session.execute("SELECT id FROM T", {})
        assert str(refusal.value) == QUARANTINE_MESSAGE

    def test_both_detections_fire_independently(self, rotation_stack_factory):
        """Inspect the anchor's verdict itself: the stale state violates
        the WAL-prefix check AND the cek.version floor — either alone
        would refuse the restore."""
        stack = self._anchored_stack(rotation_stack_factory)
        backup = StaleCekVersion()
        backup.capture(stack.server.engine)

        rotate_cek_online(stack.conn, "T", "value", "RotNewCEK", batch_size=8)
        stack.server.engine.checkpoint()
        backup.restore()
        stack.server.crash()

        with pytest.raises(StaleRestoreError) as refusal:
            stack.server.recover()
        message = str(refusal.value)
        assert "wal.prefix" in message, message
        assert "cek.version:RotNewCEK" in message, message

    def test_operator_acceptance_rebaselines_the_version_floor(
        self, rotation_stack_factory
    ):
        stack = self._anchored_stack(rotation_stack_factory)
        backup = StaleCekVersion()
        backup.capture(stack.server.engine)
        rotate_cek_online(stack.conn, "T", "value", "RotNewCEK", batch_size=8)
        stack.server.engine.checkpoint()
        backup.restore()
        stack.server.crash()
        with pytest.raises(StaleRestoreError):
            stack.server.recover()

        report = stack.server.accept_restored_state()
        assert report.freshness_verified
        assert not stack.server.quarantined
        # The restored world has no rotation: all rows back under the old
        # key, no version entries, and queries work.
        counts = census(stack)
        assert counts["old"] == ROWS
        conn = stack.fresh_conn()
        rows = conn.execute("SELECT id, value FROM T").rows
        assert sorted(rows) == [(i, i * 3) for i in range(ROWS)]
