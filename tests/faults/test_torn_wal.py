"""Property test: recovery from a torn WAL tail (Section 4.5).

A crash can tear the tail off the durable log: records the engine
believed flushed never fully reached disk. ``WriteAheadLog.tear_tail``
models the discovery at recovery time. Whatever the tear point, recovery
must deliver exactly the transactions whose COMMIT record *survived* the
tear — older commits stay durable (the durability horizon is a prefix),
newer ones vanish atomically, indexes agree with the heap, and a second
crash + recovery is a no-op.

The workload keeps every page in memory (no checkpoints, big pool), so
the log is the only durable state and *every* tear point is a legal
power-loss outcome.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine.catalog import TableSchema, plain_column
from repro.sqlengine.engine import StorageEngine
from repro.sqlengine.storage.wal import LogOp


def build_engine() -> StorageEngine:
    engine = StorageEngine(lock_timeout_s=0.2, ctr_enabled=False)
    engine.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("k", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("k",),
        )
    )
    return engine


OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(0, 20),
        st.booleans(),  # commit?
    ),
    min_size=1,
    max_size=25,
)


def _rid_for(engine: StorageEngine, key: int):
    rids = engine.table("t").indexes["pk_t"].tree.search_eq((key,))
    return rids[0] if rids else None


def visible_state(engine: StorageEngine) -> dict[int, int]:
    return {row[0]: row[1] for __, row in engine.scan("t")}


def apply_workload(engine: StorageEngine, steps):
    """Run the steps; returns [(txn_id, kind, key, value)] for each
    transaction that committed, in commit order."""
    outcomes = []
    rng = random.Random(0)
    state: dict[int, int] = {}
    for op, key, commit in steps:
        txn = engine.begin()
        value = rng.randint(0, 1000)
        try:
            if op == "insert":
                if key in state:
                    engine.abort(txn)
                    continue
                engine.insert(txn, "t", (key, value))
            elif op == "update":
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.update(txn, "t", rid, (key, value))
            else:
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.delete(txn, "t", rid)
        except Exception:
            if txn.is_active:
                engine.abort(txn)
            continue
        if commit:
            engine.commit(txn)
            outcomes.append((txn.txn_id, op, key, value))
            if op == "delete":
                state.pop(key, None)
            else:
                state[key] = value
        # else: left in flight — torn or not, it must never surface.
    return outcomes


def expected_after_tear(engine: StorageEngine, outcomes) -> dict[int, int]:
    """The k→v mapping recovery must produce, given the surviving log."""
    surviving_commits = {
        r.txn_id for r in engine.wal.records(durable_only=True) if r.op is LogOp.COMMIT
    }
    expected: dict[int, int] = {}
    for txn_id, op, key, value in outcomes:
        if txn_id not in surviving_commits:
            continue
        if op == "delete":
            expected.pop(key, None)
        else:
            expected[key] = value
    return expected


class TestTornWalTail:
    @given(steps=OPS, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_all_invariants_hold_below_any_tear_point(self, steps, data):
        engine = build_engine()
        outcomes = apply_workload(engine, steps)
        engine.crash()

        flushed = engine.wal.flushed_lsn
        depth = data.draw(st.integers(0, flushed + 1), label="tear_depth")
        lost = engine.wal.tear_tail(flushed - depth)
        assert lost == depth
        assert engine.wal.flushed_lsn == flushed - depth

        expected = expected_after_tear(engine, outcomes)
        engine.recover()

        # Durability + atomicity against the surviving commit set.
        assert visible_state(engine) == expected

        # Index/heap agreement.
        heap_keys = sorted(row[0] for __, row in engine.scan("t"))
        pk = engine.table("t").indexes["pk_t"]
        index_keys = sorted(key[0] for key, __ in pk.tree.scan_all())
        assert index_keys == heap_keys
        for key, rid in pk.tree.scan_all():
            row = engine.read("t", rid)
            assert row is not None and row[0] == key[0]

        # Idempotence: a second crash + recovery changes nothing.
        state_once = visible_state(engine)
        engine.crash()
        engine.recover()
        assert visible_state(engine) == state_once

    def test_tear_everything_recovers_to_empty(self):
        engine = build_engine()
        txn = engine.begin()
        engine.insert(txn, "t", (1, 10))
        engine.commit(txn)
        engine.crash()
        engine.wal.tear_tail(-1)
        engine.recover()
        assert visible_state(engine) == {}

    def test_tear_is_a_prefix_cut(self):
        engine = build_engine()
        for k in range(3):
            txn = engine.begin()
            engine.insert(txn, "t", (k, k))
            engine.commit(txn)
        engine.crash()
        records = engine.wal.records(durable_only=True)
        tear_lsn = records[len(records) // 2].lsn
        engine.wal.tear_tail(tear_lsn)
        survivors = engine.wal.records(durable_only=True)
        assert [r.lsn for r in survivors] == [r.lsn for r in records if r.lsn <= tear_lsn]
