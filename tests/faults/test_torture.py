"""Seeded crash-torture: a fault armed at every registered site in turn.

Each run replays a deterministic TPC-C-shaped workload (short single-op
transactions over a keyed table, interleaved checkpoints, some left
in-flight) against an engine with a deliberately tiny buffer pool — so
evictions, page write-backs, and disk reads all happen under load — with
one fault armed at one site on one deterministic schedule. Whatever the
fault does (raise, tear a page, cut a flush short, force a crash), after
``crash(); recover()`` the four recovery invariants of
``tests/sqlengine/test_recovery_properties.py`` must hold:

* **durability** — every transaction whose ``commit()`` returned is fully
  visible;
* **atomicity** — no transaction that never (acknowledged a) commit leaves
  partial effects;
* **consistency** — indexes agree exactly with the heap;
* **idempotence** — a second crash + recovery changes nothing.

A commit whose failure could not be rolled back deterministically (the
rollback itself faulted) is *ambiguous* — the classic lost-commit-ack —
and either its pre- or post-state is acceptable, but nothing else.

The driver-level half arms faults at the control-plane sites (describe,
attestation, channel send/recv) and asserts the retry layer absorbs
transients without the application noticing.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.client.driver import connect
from repro.errors import ForcedCrash, TransientFault
from repro.faults import (
    DropMessage,
    ForceCrash,
    OnNth,
    PartialFlush,
    RaiseFatal,
    RaiseTransient,
    SeededProbability,
    TornWrite,
    get_fault_registry,
)
from repro.sqlengine.catalog import TableSchema, plain_column
from repro.sqlengine.engine import StorageEngine
from tests.conftest import make_encrypted_table

# ----------------------------------------------------------- engine-level part

ENGINE_SITE_ACTIONS = [
    ("disk.write_page", lambda: TornWrite(keep_fraction=0.5)),
    ("disk.write_page", lambda: ForceCrash()),
    ("disk.read_page", lambda: RaiseTransient()),
    ("disk.read_page", lambda: ForceCrash()),
    ("wal.append", lambda: RaiseTransient()),
    ("wal.append", lambda: ForceCrash()),
    ("wal.flush", lambda: PartialFlush(drop_last=1)),
    ("wal.flush", lambda: PartialFlush(drop_last=2)),
    ("wal.flush", lambda: ForceCrash()),
    ("bufferpool.evict", lambda: RaiseTransient()),
    ("bufferpool.evict", lambda: ForceCrash()),
    ("engine.commit", lambda: RaiseTransient()),
    ("engine.commit", lambda: RaiseFatal()),
    ("engine.commit", lambda: ForceCrash()),
    ("engine.index_insert", lambda: RaiseTransient()),
    ("engine.index_insert", lambda: ForceCrash()),
]

SCHEDULES = [
    ("first-hit", lambda seed: OnNth(1)),
    ("fifth-hit", lambda seed: OnNth(5)),
    ("seeded-p25", lambda seed: SeededProbability(0.25, seed=seed)),
]


def build_engine() -> StorageEngine:
    # A 4-page pool keeps eviction, write-back, and re-read on the hot
    # path; the short lock timeout keeps runs with stuck transactions fast.
    engine = StorageEngine(lock_timeout_s=0.05, ctr_enabled=False, buffer_pool_pages=4)
    engine.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("k", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("k",),
        )
    )
    return engine


def make_steps(seed: int, n_steps: int = 30):
    """A deterministic workload: (op, key, commit?, checkpoint-after?)."""
    rng = random.Random(seed)
    steps = []
    for __ in range(n_steps):
        steps.append(
            (
                rng.choice(["insert", "insert", "update", "update", "delete"]),
                rng.randrange(40),
                rng.random() < 0.8,
                rng.random() < 0.15,
            )
        )
    return steps


def _rid_for(engine: StorageEngine, key: int):
    rids = engine.table("t").indexes["pk_t"].tree.search_eq((key,))
    return rids[0] if rids else None


def visible_state(engine: StorageEngine) -> dict[int, int]:
    return {row[0]: row[1] for __, row in engine.scan("t")}


def run_workload(engine: StorageEngine, steps, seed: int):
    """Apply the workload under fire.

    Returns ``(expected, ambiguous)``: the k→v mapping that must be
    visible after recovery, and per-key sets of acceptable values (None
    means absent) for commits whose outcome is genuinely unknowable.
    """
    expected: dict[int, int] = {}
    ambiguous: dict[int, set] = {}
    rng = random.Random(seed + 1)
    for op, key, commit, checkpoint in steps:
        pre = expected.get(key)
        value = rng.randint(0, 10_000)
        txn = engine.begin()
        try:
            if op == "insert":
                if key in expected:
                    engine.abort(txn)
                    continue
                engine.insert(txn, "t", (key, value))
                post = value
            elif op == "update":
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.update(txn, "t", rid, (key, value))
                post = value
            else:
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.delete(txn, "t", rid)
                post = None
        except ForcedCrash:
            return expected, ambiguous
        except Exception:
            # DML faulted: roll back if the rollback itself survives. A
            # failed op that logged nothing leaves no durable trace either
            # way, so the expected state is unchanged.
            try:
                if txn.is_active:
                    engine.abort(txn)
            except ForcedCrash:
                return expected, ambiguous
            except Exception:
                pass  # stuck in-flight: it dies (is undone) at the crash
            continue
        if commit:
            try:
                engine.commit(txn)
            except ForcedCrash:
                # The crash may have fired after the COMMIT record became
                # durable (a fault between the log flush and the ack, e.g.
                # in the post-flush freshness hook): a lost ack. Either
                # outcome is acceptable after recovery.
                ambiguous[key] = {pre, post}
                return expected, ambiguous
            except Exception:
                # Commit faulted after the COMMIT record may have been
                # appended. A clean rollback resolves it to "not
                # committed"; a faulted rollback is a lost ack — either
                # outcome is acceptable, nothing in between.
                try:
                    engine.abort(txn)
                except ForcedCrash:
                    ambiguous[key] = {pre, post}
                    return expected, ambiguous
                except Exception:
                    ambiguous[key] = {pre, post}
                continue
            ambiguous.pop(key, None)
            if post is None:
                expected.pop(key, None)
            else:
                expected[key] = post
        # else: left in-flight — it must vanish in the crash.
        if checkpoint:
            try:
                engine.checkpoint()
            except ForcedCrash:
                return expected, ambiguous
            except Exception:
                continue
    return expected, ambiguous


def assert_recovery_invariants(engine: StorageEngine, expected, ambiguous) -> None:
    visible = visible_state(engine)

    # Durability + atomicity: acknowledged commits present, everything
    # else absent, ambiguous keys at one of their two acceptable states.
    for key in set(visible) | set(expected) | set(ambiguous):
        if key in ambiguous:
            assert visible.get(key) in ambiguous[key], (
                f"key {key}: visible {visible.get(key)!r} not in "
                f"acceptable {ambiguous[key]!r}"
            )
        else:
            assert visible.get(key) == expected.get(key), (
                f"key {key}: visible {visible.get(key)!r} != "
                f"expected {expected.get(key)!r}"
            )

    # Index/heap agreement, and every index rid dereferences to a live row.
    heap_keys = sorted(row[0] for __, row in engine.scan("t"))
    pk = engine.table("t").indexes["pk_t"]
    index_keys = sorted(key[0] for key, __ in pk.tree.scan_all())
    assert index_keys == heap_keys
    for key, rid in pk.tree.scan_all():
        row = engine.read("t", rid)
        assert row is not None and row[0] == key[0]

    # Idempotence: a second crash + recovery changes nothing.
    state_once = visible_state(engine)
    engine.crash()
    engine.recover()
    assert visible_state(engine) == state_once


class TestEngineTorture:
    @pytest.mark.parametrize("schedule_name,make_schedule", SCHEDULES)
    @pytest.mark.parametrize(
        "site,make_action",
        ENGINE_SITE_ACTIONS,
        ids=[f"{site}-{i}" for i, (site, __) in enumerate(ENGINE_SITE_ACTIONS)],
    )
    def test_invariants_hold_with_fault_armed(
        self, site, make_action, schedule_name, make_schedule
    ):
        # str.hash is salted per process; crc32 keeps the seed stable.
        seed = zlib.crc32(f"{site}|{schedule_name}".encode()) % (2**31)
        faults = get_fault_registry()
        engine = build_engine()
        armed = faults.arm(site, make_schedule(seed), make_action())
        try:
            expected, ambiguous = run_workload(engine, make_steps(seed), seed)
        finally:
            faults.disarm(armed)
        engine.crash()
        engine.recover()
        assert_recovery_invariants(engine, expected, ambiguous)

    def test_matrix_is_at_least_twenty_runs_over_all_engine_sites(self):
        assert len(ENGINE_SITE_ACTIONS) * len(SCHEDULES) >= 20
        assert {site for site, __ in ENGINE_SITE_ACTIONS} == {
            "disk.write_page",
            "disk.read_page",
            "wal.append",
            "wal.flush",
            "bufferpool.evict",
            "engine.commit",
            "engine.index_insert",
        }

    def test_unharmed_baseline_matches_reference_semantics(self):
        # The harness itself must be sound: with no fault armed there is
        # no ambiguity and recovery reproduces exactly the expected state.
        engine = build_engine()
        expected, ambiguous = run_workload(engine, make_steps(1234), 1234)
        assert ambiguous == {}
        engine.crash()
        engine.recover()
        assert_recovery_invariants(engine, expected, ambiguous)
        assert visible_state(engine) == expected


# ----------------------------------------------------------- driver-level part

DRIVER_TRANSIENT_SITES = [
    ("driver.describe_parameter_encryption", lambda: RaiseTransient()),
    ("attestation.verify", lambda: RaiseTransient()),
    ("enclave.channel.send", lambda: DropMessage()),
    ("enclave.channel.recv", lambda: RaiseTransient()),
]


class TestDriverTorture:
    @pytest.mark.parametrize(
        "site,make_action",
        DRIVER_TRANSIENT_SITES,
        ids=[site for site, __ in DRIVER_TRANSIENT_SITES],
    )
    def test_transient_control_plane_fault_is_absorbed(
        self, site, make_action, ae_connection
    ):
        """A single transient fault at each control-plane site is retried
        transparently: the encrypted workload completes with correct
        results and the retry counter shows the absorbed failure."""
        faults = get_fault_registry()
        armed = faults.arm(site, OnNth(1), make_action())
        baseline_retries = ae_connection.stats.retries
        try:
            make_encrypted_table(ae_connection)
            for i in range(3):
                ae_connection.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)",
                    {"id": i, "v": i * 7},
                )
            result = ae_connection.execute("SELECT id, value FROM T WHERE value < @m", {"m": 100})
        finally:
            faults.disarm(armed)
        assert sorted(result.rows) == [(0, 0), (1, 7), (2, 14)]
        assert ae_connection.stats.retries > baseline_retries

    def test_repeated_transient_sends_absorbed_up_to_budget(self, ae_connection):
        """Two consecutive drops of the sealed CEK package still succeed
        within the default four-attempt budget."""
        faults = get_fault_registry()
        # Two armings, each firing on its own first observed hit: the
        # first match wins per hit, so attempts 1 and 2 both drop and
        # attempt 3 succeeds.
        armed = faults.arm("enclave.channel.send", OnNth(1), DropMessage())
        armed2 = faults.arm("enclave.channel.send", OnNth(1), DropMessage())
        try:
            make_encrypted_table(ae_connection)
            ae_connection.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 10}
            )
            # The range predicate on the RND column forces enclave
            # computation, so the CEK package actually has to get through.
            result = ae_connection.execute("SELECT value FROM T WHERE value < @m", {"m": 99})
        finally:
            faults.disarm(armed)
            faults.disarm(armed2)
        assert result.rows == [(10,)]
        assert ae_connection.stats.retries >= 2
