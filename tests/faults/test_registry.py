"""Units for the fault registry, schedules, actions, and error classifier."""

import threading

import pytest

from repro.errors import (
    FatalFault,
    ForcedCrash,
    LockTimeoutError,
    TransientFault,
)
from repro.faults import (
    Always,
    DropMessage,
    DropMessageDirective,
    DuplicateMessage,
    DuplicateMessageDirective,
    ErrorClass,
    EveryKth,
    FaultRegistry,
    ForceCrash,
    Never,
    OnNth,
    PartialFlush,
    PartialFlushDirective,
    RaiseFatal,
    RaiseTransient,
    SeededProbability,
    TornWrite,
    TornWriteDirective,
    classify_error,
    fault_point,
    get_fault_registry,
    is_transient,
)
from repro.obs.metrics import get_registry


def make_registry(*sites: str) -> FaultRegistry:
    registry = FaultRegistry()
    for site in sites:
        registry.register_site(site)
    return registry


class TestSchedules:
    def test_never_and_always(self):
        assert not any(Never().should_fire(hit) for hit in range(1, 10))
        assert all(Always().should_fire(hit) for hit in range(1, 10))

    def test_on_nth_fires_exactly_once(self):
        schedule = OnNth(3)
        fired = [hit for hit in range(1, 10) if schedule.should_fire(hit)]
        assert fired == [3]

    def test_on_nth_rejects_zero(self):
        with pytest.raises(ValueError):
            OnNth(0)

    def test_every_kth(self):
        schedule = EveryKth(3)
        fired = [hit for hit in range(1, 13) if schedule.should_fire(hit)]
        assert fired == [3, 6, 9, 12]

    def test_every_kth_limit(self):
        schedule = EveryKth(2, limit=2)
        fired = [hit for hit in range(1, 13) if schedule.should_fire(hit)]
        assert fired == [2, 4]

    def test_seeded_probability_deterministic(self):
        a = SeededProbability(0.5, seed=42)
        b = SeededProbability(0.5, seed=42)
        decisions_a = [a.should_fire(hit) for hit in range(1, 200)]
        decisions_b = [b.should_fire(hit) for hit in range(1, 200)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_seeded_probability_limit_keeps_stream_aligned(self):
        # With a limit, suppressed fires must not shift later decisions:
        # the unlimited and limited instances agree wherever the limited
        # one is still allowed to fire.
        unlimited = SeededProbability(0.5, seed=7)
        limited = SeededProbability(0.5, seed=7, limit=3)
        fired = 0
        for hit in range(1, 100):
            u = unlimited.should_fire(hit)
            lim = limited.should_fire(hit)
            if fired < 3:
                assert u == lim
                fired += 1 if lim else 0
            else:
                assert not lim

    def test_seeded_probability_validates_p(self):
        with pytest.raises(ValueError):
            SeededProbability(1.5, seed=0)


class TestActions:
    def test_raising_actions(self):
        with pytest.raises(TransientFault):
            RaiseTransient().trigger("s", {})
        with pytest.raises(FatalFault):
            RaiseFatal().trigger("s", {})
        with pytest.raises(ForcedCrash):
            ForceCrash().trigger("s", {})

    def test_transient_is_fault_and_names_site(self):
        err = TransientFault("wal.flush")
        assert err.site == "wal.flush"
        assert "wal.flush" in str(err)

    def test_torn_write_tears_against_old_image(self):
        directive = TornWrite(keep_fraction=0.5).trigger("disk.write_page", {})
        assert isinstance(directive, TornWriteDirective)
        new = b"N" * 100
        old = b"O" * 100
        torn = directive.tear(new, old)
        assert len(torn) == 100
        assert torn[:50] == b"N" * 50 and torn[50:] == b"O" * 50

    def test_torn_write_tears_against_zeros_when_no_old_image(self):
        directive = TornWriteDirective(keep_fraction=0.25)
        torn = directive.tear(b"N" * 8, None)
        assert torn == b"NN" + b"\x00" * 6

    def test_torn_write_validates_fraction(self):
        with pytest.raises(ValueError):
            TornWrite(keep_fraction=0.0)
        with pytest.raises(ValueError):
            TornWrite(keep_fraction=1.0)

    def test_partial_flush_validates(self):
        with pytest.raises(ValueError):
            PartialFlush(drop_last=0)
        directive = PartialFlush(drop_last=2).trigger("wal.flush", {})
        assert isinstance(directive, PartialFlushDirective)
        assert directive.drop_last == 2 and directive.then_crash

    def test_message_directives(self):
        assert isinstance(DropMessage().trigger("s", {}), DropMessageDirective)
        assert isinstance(DuplicateMessage().trigger("s", {}), DuplicateMessageDirective)


class TestClassifier:
    def test_transient_types(self):
        assert classify_error(TransientFault("s")) is ErrorClass.TRANSIENT
        assert classify_error(LockTimeoutError("lock wait timed out")) is ErrorClass.TRANSIENT
        assert classify_error(ConnectionError()) is ErrorClass.TRANSIENT
        assert classify_error(TimeoutError()) is ErrorClass.TRANSIENT

    def test_fatal_types(self):
        assert classify_error(FatalFault("s")) is ErrorClass.FATAL
        # ForcedCrash subclasses FaultInjected but is never retryable.
        assert classify_error(ForcedCrash("s")) is ErrorClass.FATAL

    def test_unknown_errors_are_fatal(self):
        assert classify_error(ValueError("?")) is ErrorClass.FATAL
        assert not is_transient(ValueError("?"))
        assert is_transient(TransientFault("s"))


class TestRegistry:
    def test_arm_unknown_site_raises(self):
        registry = make_registry("a.b")
        with pytest.raises(KeyError, match="a.b"):
            registry.arm("a.typo", Always(), RaiseTransient())

    def test_register_is_idempotent_and_keeps_description(self):
        registry = make_registry()
        registry.register_site("x.y", "first")
        registry.register_site("x.y")
        assert registry.site("x.y").description == "first"
        assert registry.sites() == ["x.y"]

    def test_disarmed_site_returns_none(self):
        registry = make_registry("a.b")
        assert registry.fire("a.b") is None
        assert registry.fire("never.registered") is None

    def test_fire_raises_and_counts(self):
        registry = make_registry("a.b")
        registry.arm("a.b", OnNth(2), RaiseTransient())
        baseline = get_registry().value("faults.injected")
        assert registry.fire("a.b") is None          # hit 1: no fire
        with pytest.raises(TransientFault):
            registry.fire("a.b")                     # hit 2: fires
        assert registry.fire("a.b") is None          # hit 3: OnNth is done
        assert get_registry().value("faults.injected") - baseline == 1

    def test_directive_returned_to_site(self):
        registry = make_registry("a.b")
        registry.arm("a.b", Always(), DropMessage())
        assert isinstance(registry.fire("a.b"), DropMessageDirective)

    def test_disarm_stops_firing(self):
        registry = make_registry("a.b")
        armed = registry.arm("a.b", Always(), RaiseTransient())
        registry.disarm(armed)
        assert registry.fire("a.b") is None
        assert registry.armed_at("a.b") == []

    def test_disarm_all(self):
        registry = make_registry("a.b", "c.d")
        registry.arm("a.b", Always(), RaiseTransient())
        registry.arm("c.d", Always(), RaiseFatal())
        registry.disarm_all()
        assert registry.fire("a.b") is None and registry.fire("c.d") is None

    def test_rearming_restarts_hit_count(self):
        registry = make_registry("a.b")
        first = registry.arm("a.b", OnNth(1), RaiseTransient())
        with pytest.raises(TransientFault):
            registry.fire("a.b")
        registry.disarm(first)
        registry.arm("a.b", OnNth(1), RaiseTransient())
        with pytest.raises(TransientFault):
            registry.fire("a.b")  # a fresh arming fires on its own first hit

    def test_armed_fault_records_hits_and_fires(self):
        registry = make_registry("a.b")
        armed = registry.arm("a.b", EveryKth(2), DropMessage())
        for __ in range(6):
            registry.fire("a.b")
        assert armed.hits == 6
        assert armed.fired == 3

    def test_hits_are_counted_atomically_across_threads(self):
        registry = make_registry("a.b")
        armed = registry.arm("a.b", Never(), RaiseTransient())
        n_threads, per_thread = 8, 500

        def hammer():
            for __ in range(per_thread):
                registry.fire("a.b")

        threads = [threading.Thread(target=hammer) for __ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert armed.hits == n_threads * per_thread

    def test_global_registry_has_all_advertised_sites(self):
        # Importing the instrumented modules registers every site the
        # issue promises. Driver/engine/storage/enclave/attestation.
        import repro.attestation.protocol  # noqa: F401
        import repro.client.driver  # noqa: F401
        import repro.enclave.runtime  # noqa: F401
        import repro.sqlengine.engine  # noqa: F401

        expected = {
            "attestation.verify",
            "bufferpool.evict",
            "disk.read_page",
            "disk.write_page",
            "driver.describe_parameter_encryption",
            "enclave.channel.recv",
            "enclave.channel.send",
            "engine.commit",
            "engine.index_insert",
            "wal.append",
            "wal.flush",
        }
        assert expected <= set(get_fault_registry().sites())
        assert len(expected) >= 10

    def test_module_level_fault_point_uses_global_registry(self):
        site = "test.module_level_site"
        from repro.faults import register_fault_site

        register_fault_site(site)
        armed = get_fault_registry().arm(site, Always(), RaiseFatal())
        try:
            with pytest.raises(FatalFault):
                fault_point(site)
        finally:
            get_fault_registry().disarm(armed)
