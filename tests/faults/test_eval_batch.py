"""Mid-batch failures at the ``enclave.eval_batch`` fault site.

A batched eval is one ecall covering many rows; these tests pin the
failure-atomicity contract: a fault in the middle of a chunk fails the
whole statement, and no partial filter verdicts or partial DML effects
survive into later statements.
"""

import pytest

from repro.errors import TransientFault
from repro.faults import OnNth, RaiseTransient, get_fault_registry


class TestMidBatchFaults:
    def test_select_fails_whole_statement(self, encrypted_table):
        conn = encrypted_table
        get_fault_registry().arm(
            "enclave.eval_batch", OnNth(5), RaiseTransient("mid-batch")
        )
        with pytest.raises(TransientFault):
            conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})

    def test_no_partial_filter_results_after_failed_batch(self, encrypted_table):
        conn = encrypted_table
        get_fault_registry().arm(
            "enclave.eval_batch", OnNth(5), RaiseTransient("mid-batch")
        )
        with pytest.raises(TransientFault):
            conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        # The one-shot fault is spent; the rerun must see the full, correct
        # result — nothing cached or leaked from the aborted chunk.
        result = conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert sorted(row[0] for row in result.rows) == [4, 5, 6, 7, 8, 9]
        assert result.stats.enclave_batched_rows == 10

    def test_update_mid_batch_leaves_no_partial_updates(self, encrypted_table):
        conn = encrypted_table
        get_fault_registry().arm(
            "enclave.eval_batch", OnNth(5), RaiseTransient("mid-batch")
        )
        with pytest.raises(TransientFault):
            conn.execute(
                "UPDATE T SET value = @new WHERE value > @v", {"new": 777, "v": -1}
            )
        # Qualification died mid-chunk: the autocommit transaction aborted
        # and no row may show the new value.
        check = conn.execute("SELECT id FROM T WHERE value = @n", {"n": 777})
        assert check.rows == []
        # And every original value survived.
        for i in (0, 5, 9):
            r = conn.execute("SELECT id FROM T WHERE value = @v", {"v": i * 10})
            assert [row[0] for row in r.rows] == [i]

    def test_fault_context_carries_batch_position(self, encrypted_table):
        conn = encrypted_table
        seen = {}

        class Probe:
            def trigger(self, site, ctx):
                seen.update(ctx)
                return None

        registry = get_fault_registry()
        from repro.faults import Always

        registry.arm("enclave.eval_batch", Always(), Probe())
        conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert seen["total"] == 10
        assert 0 <= seen["index"] < 10
