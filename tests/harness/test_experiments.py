"""Experiment calibration plumbing (tiny-scale smoke of the Figure 8/9 path)."""

import pytest

from repro.harness.experiments import (
    Calibration,
    TpccScale,
    calibrate_system,
    run_figure9,
)
from repro.workloads.tpcc import EncryptionMode, TpccConfig, build_system

TINY = TpccScale(warehouses=1, districts_per_warehouse=1, customers_per_district=8, items=12)


class TestCalibration:
    def test_calibration_measures_demands(self):
        system = build_system(
            TpccConfig(
                warehouses=1, districts_per_warehouse=1,
                customers_per_district=8, items=12,
                mode=EncryptionMode.PLAINTEXT,
            )
        )
        calibration = calibrate_system(system, n_transactions=10)
        assert calibration.wall_s_per_txn > 0
        assert calibration.enclave_s_per_txn == 0.0
        assert calibration.roundtrips_per_txn > 1  # several statements/txn

    def test_rnd_calibration_includes_enclave_time(self):
        system = build_system(
            TpccConfig(
                warehouses=1, districts_per_warehouse=1,
                customers_per_district=8, items=12,
                mode=EncryptionMode.RND,
            )
        )
        calibration = calibrate_system(system, n_transactions=10)
        assert calibration.enclave_s_per_txn > 0
        assert calibration.enclave_s_per_txn < calibration.wall_s_per_txn

    def test_demands_split_host_and_enclave(self):
        c = Calibration(
            label="X", wall_s_per_txn=0.010, enclave_s_per_txn=0.002,
            roundtrips_per_txn=30, transactions_run=10,
        )
        d = c.demands()
        assert d.host_cpu_s == pytest.approx(0.008)
        assert d.enclave_cpu_s == pytest.approx(0.002)


class TestFigure9Smoke:
    def test_orderings_hold_at_tiny_scale(self):
        result = run_figure9(scale=TINY, n_transactions=10)
        n = result.normalized
        assert n["SQL-PT"] == 1.0
        assert n["SQL-AE-RND-1"] < n["SQL-AE-RND-4"]
        assert n["SQL-PT-AEConn"] < 1.0
