"""The MVA queueing model: limits, monotonicity, and paper-shape checks."""

import pytest

from repro.harness.perfmodel import (
    ModelConfig,
    NormalizedFigure,
    ServiceDemands,
    solve_throughput,
    sweep,
)


def demands(host=0.005, enclave=0.0, rtts=30.0, label="X"):
    return ServiceDemands(label=label, host_cpu_s=host, enclave_cpu_s=enclave, roundtrips=rtts)


MODEL = ModelConfig(server_cores=20, enclave_threads=4, rtt_s=0.0005)


class TestMvaBasics:
    def test_single_client_throughput(self):
        # One client: X = 1 / (demand + delay), no queueing.
        d = demands(host=0.010, rtts=0.0)
        x = solve_throughput(d, ModelConfig(server_cores=1, rtt_s=0.0), 1)
        assert x == pytest.approx(100.0, rel=1e-6)

    def test_throughput_monotone_in_clients(self):
        d = demands()
        xs = [solve_throughput(d, MODEL, n) for n in (1, 5, 20, 50, 100, 200)]
        assert all(b >= a - 1e-9 for a, b in zip(xs, xs[1:]))

    def test_saturation_bound(self):
        # Throughput can never exceed cores / host demand.
        d = demands(host=0.010, rtts=0.0)
        cap = MODEL.server_cores / d.host_cpu_s
        assert solve_throughput(d, MODEL, 10_000) <= cap * (1 + 1e-9)

    def test_saturation_approached(self):
        d = demands(host=0.010, rtts=0.0)
        cap = MODEL.server_cores / d.host_cpu_s
        assert solve_throughput(d, MODEL, 5_000) >= 0.95 * cap

    def test_enclave_center_throttles(self):
        without = demands(host=0.005, enclave=0.0, rtts=0.0)
        with_enclave = demands(host=0.005, enclave=0.004, rtts=0.0)
        x1 = solve_throughput(without, MODEL, 200)
        x2 = solve_throughput(with_enclave, MODEL, 200)
        assert x2 < x1

    def test_more_enclave_threads_help(self):
        d = demands(host=0.004, enclave=0.004, rtts=0.0)
        x1 = solve_throughput(d, ModelConfig(server_cores=20, enclave_threads=1), 100)
        x4 = solve_throughput(d, ModelConfig(server_cores=20, enclave_threads=4), 100)
        assert x4 > x1
        # And the enclave bound is threads / enclave demand.
        assert x1 <= 1 / 0.004 + 1e-6

    def test_roundtrips_delay_low_concurrency_only(self):
        fast = demands(rtts=0.0)
        slow = demands(rtts=60.0)
        # At N=1 the extra round-trips dominate...
        assert solve_throughput(slow, MODEL, 1) < 0.5 * solve_throughput(fast, MODEL, 1)
        # ...but with enough clients both saturate the same CPU.
        x_fast = solve_throughput(fast, MODEL, 5_000)
        x_slow = solve_throughput(slow, MODEL, 5_000)
        assert x_slow == pytest.approx(x_fast, rel=0.05)

    def test_think_time_reduces_low_n_throughput(self):
        d = demands(rtts=0.0)
        base = ModelConfig(rtt_s=0.0, client_think_s=0.0)
        thinking = ModelConfig(rtt_s=0.0, client_think_s=0.05)
        assert solve_throughput(d, thinking, 1) < solve_throughput(d, base, 1)


class TestSweepAndNormalization:
    def test_sweep_returns_curve(self):
        curve = sweep(demands(label="A"), MODEL, [10, 50, 100])
        assert curve.clients == [10, 50, 100]
        assert len(curve.throughput) == 3

    def test_normalization_baseline_peak_is_one(self):
        a = sweep(demands(host=0.004, label="A"), MODEL, [10, 100])
        b = sweep(demands(host=0.008, label="B"), MODEL, [10, 100])
        figure = NormalizedFigure(curves=[a, b], baseline_label="A")
        assert max(figure.normalized["A"]) == pytest.approx(1.0)
        assert all(v <= 1.0 + 1e-9 for v in figure.normalized["B"])

    def test_rows_layout(self):
        a = sweep(demands(label="A"), MODEL, [10, 20])
        figure = NormalizedFigure(curves=[a], baseline_label="A")
        rows = figure.rows()
        assert rows[0][0] == 10 and len(rows[0]) == 2


class TestPaperShape:
    """The qualitative Figure 8/9 claims, using paper-plausible demands."""

    def test_figure8_ordering_at_100_clients(self):
        # Demands shaped like our calibration: AE ~1.3x host CPU of PT plus
        # enclave work; AEConn doubles round-trips and adds describe CPU.
        pt = demands(host=0.0043, rtts=31, label="SQL-PT")
        aeconn = demands(host=0.0049, rtts=60, label="SQL-PT-AEConn")
        ae = ServiceDemands("SQL-AE-RND-4", host_cpu_s=0.0052, enclave_cpu_s=0.0005, roundtrips=60)
        curves = [sweep(d, MODEL, [10, 50, 100]) for d in (pt, aeconn, ae)]
        figure = NormalizedFigure(curves=curves, baseline_label="SQL-PT")
        at100 = {c.label: figure.normalized[c.label][-1] for c in curves}
        assert at100["SQL-PT"] > at100["SQL-PT-AEConn"] > at100["SQL-AE-RND-4"]
        # AEConn lands in the paper's ballpark (64%) and AE roughly half.
        assert 0.45 < at100["SQL-PT-AEConn"] < 0.85
        assert 0.35 < at100["SQL-AE-RND-4"] < 0.8

    def test_figure9_rnd1_below_rnd4(self):
        ae = ServiceDemands("AE", host_cpu_s=0.005, enclave_cpu_s=0.002, roundtrips=60)
        x1 = solve_throughput(ae, ModelConfig(20, 1, 0.0005), 100)
        x4 = solve_throughput(ae, ModelConfig(20, 4, 0.0005), 100)
        assert x1 < x4
