"""CBC mode and PKCS#7 padding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, pkcs7_pad, pkcs7_unpad
from repro.errors import CryptoError

KEY = bytes(range(32))
IV = bytes(range(16))


class TestPkcs7:
    def test_pad_empty(self):
        assert pkcs7_pad(b"") == bytes([16]) * 16

    def test_pad_full_block_adds_block(self):
        padded = pkcs7_pad(b"x" * 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    @pytest.mark.parametrize("n", range(0, 33))
    def test_roundtrip_all_lengths(self, n):
        data = b"a" * n
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_zero_padding(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15 + b"\x00")

    def test_unpad_rejects_oversized_padding(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15 + b"\x11")

    def test_unpad_rejects_inconsistent_bytes(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 13 + b"\x01\x02\x03")

    def test_unpad_rejects_unaligned(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"x" * 15)


class TestCbc:
    def test_sp800_38a_cbc_aes256(self):
        # NIST SP 800-38A F.2.5 CBC-AES256.Encrypt, first two blocks.
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
        )
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        expected = (
            "f58c4c04d6e5f1ba779eabfb5f7bfbd6"
            "9cfc4e967edb808d679f777bc6702c7d"
        )
        assert cbc_encrypt(AES(key), iv, pt).hex() == expected

    def test_roundtrip(self):
        cipher = AES(KEY)
        pt = pkcs7_pad(b"the quick brown fox")
        assert cbc_decrypt(cipher, IV, cbc_encrypt(cipher, IV, pt)) == pt

    def test_iv_changes_ciphertext(self):
        cipher = AES(KEY)
        pt = b"a" * 32
        iv2 = bytes(reversed(IV))
        assert cbc_encrypt(cipher, IV, pt) != cbc_encrypt(cipher, iv2, pt)

    def test_chaining_propagates(self):
        # Identical plaintext blocks produce different ciphertext blocks.
        cipher = AES(KEY)
        ct = cbc_encrypt(cipher, IV, b"b" * 32)
        assert ct[:16] != ct[16:]

    def test_rejects_bad_iv(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(AES(KEY), b"short", b"a" * 16)

    def test_rejects_unaligned_plaintext(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(AES(KEY), IV, b"a" * 15)

    def test_rejects_empty_ciphertext(self):
        with pytest.raises(CryptoError):
            cbc_decrypt(AES(KEY), IV, b"")

    @given(data=st.binary(min_size=0, max_size=200), iv=st.binary(min_size=16, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, data, iv):
        cipher = AES(KEY)
        ct = cbc_encrypt(cipher, iv, pkcs7_pad(data))
        assert pkcs7_unpad(cbc_decrypt(cipher, iv, ct)) == data
