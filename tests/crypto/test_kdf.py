"""Key derivation helpers."""

from repro.crypto.kdf import constant_time_equal, derive_key, hmac_sha256, sha256


class TestHmac:
    def test_rfc4231_case_2(self):
        # RFC 4231 test case 2 for HMAC-SHA-256.
        digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert digest.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_different_keys_differ(self):
        assert hmac_sha256(b"a", b"m") != hmac_sha256(b"b", b"m")


class TestDeriveKey:
    def test_distinct_labels_distinct_keys(self):
        root = bytes(32)
        enc = derive_key(root, "encryption")
        mac = derive_key(root, "mac")
        iv = derive_key(root, "iv")
        assert len({enc, mac, iv}) == 3

    def test_deterministic(self):
        assert derive_key(bytes(32), "x") == derive_key(bytes(32), "x")

    def test_output_is_32_bytes(self):
        assert len(derive_key(bytes(32), "label")) == 32


class TestHelpers:
    def test_sha256(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")
        assert not constant_time_equal(b"same", b"samelonger")
