"""RSA keygen, OAEP, and signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rsa import (
    RsaKeyPair,
    RsaPublicKey,
    encrypt_oaep,
    verify_signature,
    _is_probable_prime,
)
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair() -> RsaKeyPair:
    return RsaKeyPair.generate(1024)


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 101, 7919, 104729])
    def test_known_primes(self, p):
        assert _is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 561, 1105, 6601])
    def test_composites_and_carmichael(self, n):
        assert not _is_probable_prime(n)


class TestKeygen:
    def test_modulus_size(self, keypair):
        assert keypair.public.n.bit_length() == 1024

    def test_keys_differ(self):
        a = RsaKeyPair.generate(512)
        b = RsaKeyPair.generate(512)
        assert a.public.n != b.public.n

    def test_private_consistency(self, keypair):
        # d inverts e mod phi: a single modexp roundtrip must hold.
        m = 123456789
        c = pow(m, keypair.public.e, keypair.public.n)
        assert keypair._private_op(c) == m

    def test_too_small_rejected(self):
        with pytest.raises(CryptoError):
            RsaKeyPair.generate(128)


class TestOaep:
    def test_roundtrip(self, keypair):
        pt = b"column encryption key material.."
        assert keypair.decrypt_oaep(encrypt_oaep(keypair.public, pt)) == pt

    def test_randomized(self, keypair):
        pt = b"x" * 32
        assert encrypt_oaep(keypair.public, pt) != encrypt_oaep(keypair.public, pt)

    def test_label_mismatch_rejected(self, keypair):
        ct = encrypt_oaep(keypair.public, b"data", label=b"A")
        with pytest.raises(CryptoError):
            keypair.decrypt_oaep(ct, label=b"B")

    def test_tamper_rejected(self, keypair):
        ct = bytearray(encrypt_oaep(keypair.public, b"data"))
        ct[-1] ^= 1
        with pytest.raises(CryptoError):
            keypair.decrypt_oaep(bytes(ct))

    def test_too_long_plaintext_rejected(self, keypair):
        with pytest.raises(CryptoError):
            encrypt_oaep(keypair.public, b"x" * 200)

    def test_wrong_length_ciphertext_rejected(self, keypair):
        with pytest.raises(CryptoError):
            keypair.decrypt_oaep(b"\x00" * 64)

    @given(data=st.binary(min_size=0, max_size=32))
    @settings(max_examples=15, deadline=None)
    def test_property_roundtrip(self, keypair, data):
        assert keypair.decrypt_oaep(encrypt_oaep(keypair.public, data)) == data


class TestSignatures:
    def test_sign_verify(self, keypair):
        sig = keypair.sign(b"message")
        assert verify_signature(keypair.public, b"message", sig)

    def test_wrong_message_rejected(self, keypair):
        sig = keypair.sign(b"message")
        assert not verify_signature(keypair.public, b"other", sig)

    def test_wrong_key_rejected(self, keypair):
        other = RsaKeyPair.generate(512)
        sig = keypair.sign(b"message")
        assert not verify_signature(other.public, b"message", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"message"))
        sig[0] ^= 1
        assert not verify_signature(keypair.public, b"message", bytes(sig))

    def test_wrong_length_signature_rejected(self, keypair):
        assert not verify_signature(keypair.public, b"message", b"short")

    def test_deterministic(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")


class TestPublicKeySerialization:
    def test_roundtrip(self, keypair):
        data = keypair.public.to_bytes()
        restored = RsaPublicKey.from_bytes(data)
        assert restored == keypair.public

    def test_fingerprint_stable_and_distinct(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        other = RsaKeyPair.generate(512)
        assert keypair.public.fingerprint() != other.public.fingerprint()

    def test_malformed_rejected(self):
        with pytest.raises(CryptoError):
            RsaPublicKey.from_bytes(b"junk")
