"""AEAD_AES_256_CBC_HMAC_SHA_256 cell encryption (paper Section 2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import (
    ALGORITHM_VERSION,
    MAC_SIZE,
    CellCipher,
    EncryptionScheme,
    generate_cek_material,
)
from repro.errors import CryptoError, IntegrityError

CEK = bytes(range(32))


@pytest.fixture()
def cipher() -> CellCipher:
    return CellCipher(CEK)


class TestDeterministic:
    def test_same_plaintext_same_ciphertext(self, cipher):
        a = cipher.encrypt(b"alice", EncryptionScheme.DETERMINISTIC)
        b = cipher.encrypt(b"alice", EncryptionScheme.DETERMINISTIC)
        assert a == b

    def test_different_plaintext_different_ciphertext(self, cipher):
        a = cipher.encrypt(b"alice", EncryptionScheme.DETERMINISTIC)
        b = cipher.encrypt(b"alicf", EncryptionScheme.DETERMINISTIC)
        assert a != b

    def test_whole_value_equality_not_blockwise(self, cipher):
        # Unlike ECB, repeating 16-byte blocks inside a value must NOT
        # produce repeating ciphertext blocks (the paper's ECB contrast).
        pt = b"B" * 16 + b"B" * 16
        envelope = cipher.encrypt(pt, EncryptionScheme.DETERMINISTIC)
        body = envelope[1 + MAC_SIZE + 16 :]
        assert body[:16] != body[16:32]

    def test_det_differs_across_keys(self):
        a = CellCipher(bytes(32)).encrypt(b"x", EncryptionScheme.DETERMINISTIC)
        b = CellCipher(bytes([9]) * 32).encrypt(b"x", EncryptionScheme.DETERMINISTIC)
        assert a != b


class TestRandomized:
    def test_same_plaintext_different_ciphertext(self, cipher):
        a = cipher.encrypt(b"alice", EncryptionScheme.RANDOMIZED)
        b = cipher.encrypt(b"alice", EncryptionScheme.RANDOMIZED)
        assert a != b

    def test_decrypts_correctly(self, cipher):
        envelope = cipher.encrypt(b"some value", EncryptionScheme.RANDOMIZED)
        assert cipher.decrypt(envelope) == b"some value"


class TestEnvelope:
    def test_version_byte(self, cipher):
        envelope = cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED)
        assert envelope[0] == ALGORITHM_VERSION

    def test_mac_tamper_detected(self, cipher):
        envelope = bytearray(cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED))
        envelope[1] ^= 0xFF  # flip a MAC byte
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(envelope))

    def test_body_tamper_detected(self, cipher):
        envelope = bytearray(cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED))
        envelope[-1] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(envelope))

    def test_iv_tamper_detected(self, cipher):
        envelope = bytearray(cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED))
        envelope[1 + MAC_SIZE] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(envelope))

    def test_wrong_key_rejected(self, cipher):
        envelope = cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED)
        other = CellCipher(bytes([7]) * 32)
        with pytest.raises(IntegrityError):
            other.decrypt(envelope)

    def test_verify_distinguishes_garbage(self, cipher):
        # The paper's HMAC usability rationale: detect garbage ciphertext.
        envelope = cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED)
        assert cipher.verify(envelope)
        assert not cipher.verify(b"\x01" + b"\x00" * 80)
        assert not cipher.verify(b"")

    def test_wrong_version_rejected(self, cipher):
        envelope = bytearray(cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED))
        envelope[0] = 0x02
        with pytest.raises(CryptoError):
            cipher.decrypt(bytes(envelope))

    def test_truncated_envelope_rejected(self, cipher):
        envelope = cipher.encrypt(b"x", EncryptionScheme.RANDOMIZED)
        with pytest.raises(CryptoError):
            cipher.decrypt(envelope[:40])


class TestKeys:
    def test_bad_key_size_rejected(self):
        with pytest.raises(CryptoError):
            CellCipher(b"short")

    def test_generate_material(self):
        a = generate_cek_material()
        b = generate_cek_material()
        assert len(a) == 32 and len(b) == 32 and a != b


class TestProperties:
    @given(data=st.binary(min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_rnd(self, data):
        cipher = CellCipher(CEK)
        assert cipher.decrypt(cipher.encrypt(data, EncryptionScheme.RANDOMIZED)) == data

    @given(data=st.binary(min_size=0, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_det(self, data):
        cipher = CellCipher(CEK)
        assert cipher.decrypt(cipher.encrypt(data, EncryptionScheme.DETERMINISTIC)) == data

    @given(a=st.binary(max_size=64), b=st.binary(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_det_equality_iff_plaintext_equality(self, a, b):
        cipher = CellCipher(CEK)
        ct_a = cipher.encrypt(a, EncryptionScheme.DETERMINISTIC)
        ct_b = cipher.encrypt(b, EncryptionScheme.DETERMINISTIC)
        assert (ct_a == ct_b) == (a == b)
