"""AES correctness: FIPS 197 vectors, NIST CBC vectors, and properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX
from repro.errors import CryptoError

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestFips197Vectors:
    def test_aes128_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        assert AES(key).encrypt_block(FIPS_PLAINTEXT).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_aes192_appendix_c2(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        assert AES(key).encrypt_block(FIPS_PLAINTEXT).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"

    def test_aes256_appendix_c3(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
        )
        assert AES(key).encrypt_block(FIPS_PLAINTEXT).hex() == "8ea2b7ca516745bfeafc49904b496089"

    def test_decrypt_inverts_all_key_sizes(self):
        for size in (16, 24, 32):
            key = bytes(range(size))
            cipher = AES(key)
            ct = cipher.encrypt_block(FIPS_PLAINTEXT)
            assert cipher.decrypt_block(ct) == FIPS_PLAINTEXT

    def test_sp800_38a_ecb_block(self):
        # SP 800-38A F.1.5 ECB-AES256, first block.
        key = bytes.fromhex(
            "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4"
        )
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert AES(key).encrypt_block(pt).hex() == "f3eed1bdb5d2a03c064b5a7e3db181f8"


class TestSbox:
    def test_sbox_known_values(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_inverse_sbox_inverts(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestValidation:
    def test_bad_key_length_rejected(self):
        with pytest.raises(CryptoError):
            AES(b"short")

    @pytest.mark.parametrize("size", [0, 15, 17, 32])
    def test_bad_block_length_rejected(self, size):
        cipher = AES(bytes(32))
        with pytest.raises(CryptoError):
            cipher.encrypt_block(bytes(size))
        with pytest.raises(CryptoError):
            cipher.decrypt_block(bytes(size))


class TestProperties:
    @given(key=st.binary(min_size=32, max_size=32), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=32, max_size=32), block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_encryption_changes_data(self, key, block):
        # A block cipher is a permutation; a fixed point is astronomically
        # unlikely for random inputs.
        assert AES(key).encrypt_block(block) != block

    @given(block=st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_different_keys_differ(self, block):
        a = AES(bytes(32)).encrypt_block(block)
        b = AES(bytes([1]) + bytes(31)).encrypt_block(block)
        assert a != b

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 16
