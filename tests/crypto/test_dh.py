"""Diffie–Hellman key exchange (the attestation-folded handshake)."""

import pytest

from repro.crypto.dh import MODP_2048_PRIME, DiffieHellman, public_key_bytes
from repro.errors import CryptoError


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        a, b = DiffieHellman(), DiffieHellman()
        assert a.shared_secret(b.public_key) == b.shared_secret(a.public_key)

    def test_secret_is_32_bytes(self):
        a, b = DiffieHellman(), DiffieHellman()
        assert len(a.shared_secret(b.public_key)) == 32

    def test_different_parties_different_secrets(self):
        a, b, c = DiffieHellman(), DiffieHellman(), DiffieHellman()
        assert a.shared_secret(b.public_key) != a.shared_secret(c.public_key)

    def test_public_key_in_range(self):
        a = DiffieHellman()
        assert 2 <= a.public_key <= MODP_2048_PRIME - 2

    @pytest.mark.parametrize("bad", [0, 1, MODP_2048_PRIME - 1, MODP_2048_PRIME])
    def test_degenerate_peer_keys_rejected(self, bad):
        with pytest.raises(CryptoError):
            DiffieHellman().shared_secret(bad)

    def test_public_key_bytes_length(self):
        assert len(public_key_bytes(DiffieHellman().public_key)) == 256

    def test_fixed_private_reproducible(self):
        a1 = DiffieHellman(_private=12345)
        a2 = DiffieHellman(_private=12345)
        assert a1.public_key == a2.public_key
