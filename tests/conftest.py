"""Shared fixtures: key material, enclave stack, and server factories.

RSA key generation dominates setup cost, so key pairs and the provider
registry are session-scoped; anything mutable (server, enclave, catalog)
is rebuilt per test from the cached keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import Connection, connect
from repro.crypto.aead import generate_cek_material
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.keys.cek import ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.keys.providers import KeyProviderRegistry, default_registry
from repro.sqlengine.server import SqlServer

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

VAULT_PATH_ENCLAVE = "https://vault.azure.net/keys/test-enclave-cmk"
VAULT_PATH_PLAIN = "https://vault.azure.net/keys/test-plain-cmk"


@pytest.fixture(scope="session")
def author_key() -> RsaKeyPair:
    return RsaKeyPair.generate(1024)


@pytest.fixture(scope="session")
def enclave_binary(author_key) -> EnclaveBinary:
    return EnclaveBinary.build(author_key)


@pytest.fixture(scope="session")
def host_machine() -> HostMachine:
    return HostMachine()


@pytest.fixture(scope="session")
def registry() -> KeyProviderRegistry:
    reg = default_registry()
    vault = reg.get("AZURE_KEY_VAULT_PROVIDER")
    vault.create_key(VAULT_PATH_ENCLAVE, bits=1024)
    vault.create_key(VAULT_PATH_PLAIN, bits=1024)
    return reg


@pytest.fixture(scope="session")
def enclave_cmk(registry) -> ColumnMasterKey:
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    return ColumnMasterKey.create(
        "TestCMK", vault, VAULT_PATH_ENCLAVE, allow_enclave_computations=True
    )


@pytest.fixture(scope="session")
def plain_cmk(registry) -> ColumnMasterKey:
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    return ColumnMasterKey.create(
        "PlainCMK", vault, VAULT_PATH_PLAIN, allow_enclave_computations=False
    )


@pytest.fixture(scope="session")
def cek_material() -> bytes:
    return generate_cek_material()


@pytest.fixture(scope="session")
def enclave_cek(registry, enclave_cmk, cek_material) -> ColumnEncryptionKey:
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    cek, __ = ColumnEncryptionKey.create(
        "TestCEK", enclave_cmk, vault, key_material=cek_material
    )
    return cek


@pytest.fixture(scope="session")
def plain_cek(registry, plain_cmk, cek_material) -> ColumnEncryptionKey:
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    cek, __ = ColumnEncryptionKey.create(
        "PlainCEK", plain_cmk, vault, key_material=cek_material
    )
    return cek


@pytest.fixture()
def enclave(enclave_binary) -> Enclave:
    return Enclave(enclave_binary)


@pytest.fixture()
def hgs(host_machine) -> HostGuardianService:
    service = HostGuardianService()
    service.register_host(host_machine.boot_and_measure())
    return service


@pytest.fixture()
def attestation_policy(enclave_binary) -> AttestationPolicy:
    return AttestationPolicy(trusted_author_ids=frozenset({enclave_binary.author_id}))


@pytest.fixture()
def server(enclave, host_machine, hgs) -> SqlServer:
    return SqlServer(
        enclave=enclave, host_machine=host_machine, hgs=hgs, lock_timeout_s=0.3
    )


@pytest.fixture()
def plain_server() -> SqlServer:
    return SqlServer(lock_timeout_s=0.3)


@pytest.fixture()
def ae_connection(server, registry, attestation_policy, enclave_cmk, enclave_cek) -> Connection:
    """An AE connection to a server pre-populated with the test keys."""
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    return connect(server, registry, attestation_policy=attestation_policy)


@pytest.fixture()
def det_connection(server, registry, plain_cmk, plain_cek) -> Connection:
    """An AE connection with an enclave-disabled (DET-capable) CEK."""
    server.catalog.create_cmk(plain_cmk)
    server.catalog.create_cek(plain_cek)
    return connect(server, registry)


def make_encrypted_table(connection: Connection, name: str = "T", cek: str = "TestCEK",
                         scheme: str = "Randomized") -> None:
    connection.execute_ddl(
        f"CREATE TABLE {name}(id int PRIMARY KEY, "
        f"value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {cek}, "
        f"ENCRYPTION_TYPE = {scheme}, ALGORITHM = '{ALGO}'))"
    )


@pytest.fixture()
def encrypted_table(ae_connection) -> Connection:
    """Connection with table T(id, value RND-encrypted) and 10 rows."""
    make_encrypted_table(ae_connection)
    for i in range(10):
        ae_connection.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10}
        )
    return ae_connection


@dataclass
class RotationStack:
    """A full AE stack with several independently-keyed CEKs — the raw
    material of the online key-lifecycle suites. ``materials`` holds the
    plaintext key bytes so tests can probe which CEK a stored envelope is
    under without going through a driver."""

    server: SqlServer
    conn: Connection
    registry: KeyProviderRegistry
    policy: AttestationPolicy
    materials: dict[str, bytes] = field(default_factory=dict)

    def fresh_conn(self, **options) -> Connection:
        """A new client connection (own caches, own attestation session)."""
        return connect(
            self.server, self.registry, attestation_policy=self.policy, **options
        )


@pytest.fixture()
def rotation_stack_factory(registry, enclave_binary, host_machine, enclave_cmk):
    """Build an enclave-backed server with N distinct-material CEKs.

    Unlike the shared ``enclave_cek``/``plain_cek`` pair (which reuse one
    key material), every CEK here gets fresh material — a cell can only
    ever MAC-verify under exactly one of them, which is the core
    invariant the rotation suites check.
    """
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(
        trusted_author_ids=frozenset({enclave_binary.author_id})
    )

    def make(
        cek_names=("RotOldCEK", "RotNewCEK", "RotThirdCEK"),
        freshness: bool = False,
        lock_timeout_s: float = 0.3,
    ) -> RotationStack:
        hgs = HostGuardianService()
        hgs.register_host(host_machine.boot_and_measure())
        enclave = Enclave(enclave_binary)
        anchor = None
        if freshness:
            from repro.sqlengine.storage.freshness import (
                EnclaveAnchorBackend,
                FreshnessAnchor,
            )

            anchor = FreshnessAnchor(EnclaveAnchorBackend(enclave))
        server = SqlServer(
            enclave=enclave,
            host_machine=host_machine,
            hgs=hgs,
            lock_timeout_s=lock_timeout_s,
            freshness=anchor,
        )
        server.catalog.create_cmk(enclave_cmk)
        materials: dict[str, bytes] = {}
        for name in cek_names:
            material = generate_cek_material()
            cek, __ = ColumnEncryptionKey.create(
                name, enclave_cmk, vault, key_material=material
            )
            server.catalog.create_cek(cek)
            materials[name] = material
        stack = RotationStack(
            server=server,
            conn=connect(server, registry, attestation_policy=policy),
            registry=registry,
            policy=policy,
            materials=materials,
        )
        return stack

    return make
