"""The lock manager."""

import threading

import pytest

from repro.errors import LockTimeoutError
from repro.sqlengine.txn.locks import LockManager, LockMode


class TestLocks:
    def test_shared_locks_compatible(self):
        lm = LockManager(default_timeout_s=0.1)
        lm.acquire(1, ("row", "t", 1), LockMode.SHARED)
        lm.acquire(2, ("row", "t", 1), LockMode.SHARED)

    def test_exclusive_conflicts_with_shared(self):
        lm = LockManager(default_timeout_s=0.05)
        lm.acquire(1, ("row", "t", 1), LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, ("row", "t", 1), LockMode.EXCLUSIVE)

    def test_exclusive_conflicts_with_exclusive(self):
        lm = LockManager(default_timeout_s=0.05)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, ("row", "t", 1), LockMode.EXCLUSIVE)

    def test_reentrant(self):
        lm = LockManager(default_timeout_s=0.05)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        lm.acquire(1, ("row", "t", 1), LockMode.SHARED)

    def test_release_unblocks_waiter(self):
        lm = LockManager(default_timeout_s=2.0)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            lm.acquire(2, ("row", "t", 1), LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        lm.release_all(1)
        assert acquired.wait(timeout=2.0)
        thread.join()

    def test_release_all_releases_everything(self):
        lm = LockManager(default_timeout_s=0.05)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        lm.acquire(1, ("row", "t", 2), LockMode.EXCLUSIVE)
        lm.release_all(1)
        lm.acquire(2, ("row", "t", 1), LockMode.EXCLUSIVE)
        lm.acquire(2, ("row", "t", 2), LockMode.EXCLUSIVE)

    def test_held_by(self):
        lm = LockManager()
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        assert lm.held_by(1) == {("row", "t", 1)}
        assert lm.held_by(2) == set()

    def test_rehold_for_deferred_recovery(self):
        # Recovery re-grants a deferred transaction's locks (Section 4.5).
        lm = LockManager(default_timeout_s=0.05)
        lm.rehold(99, {("row", "t", 1), ("row", "t", 2)})
        assert lm.is_locked(("row", "t", 1))
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, ("row", "t", 2), LockMode.EXCLUSIVE)
        lm.release_all(99)
        lm.acquire(1, ("row", "t", 2), LockMode.EXCLUSIVE)

    def test_different_resources_independent(self):
        lm = LockManager(default_timeout_s=0.05)
        lm.acquire(1, ("row", "t", 1), LockMode.EXCLUSIVE)
        lm.acquire(2, ("row", "t", 2), LockMode.EXCLUSIVE)
