"""Executor-level batched enclave evaluation.

The chunking operator routes enclave-requiring predicates through
``StackMachine.eval_predicate_batch`` — eval_batch_size rows per boundary
crossing — while host-only programs keep their streaming row-at-a-time
path. These tests pin result equivalence, the plan annotations, the
per-statement telemetry, and the knob that turns it all off.
"""

import pytest

from repro.client.driver import connect
from repro.sqlengine.server import SqlServer
from tests.conftest import ALGO, make_encrypted_table

EXPECT_GT_30 = [4, 5, 6, 7, 8, 9]  # ids of T rows with value > 30 (value = id*10)


def make_server(enclave, host_machine, hgs, **kwargs):
    return SqlServer(
        enclave=enclave, host_machine=host_machine, hgs=hgs, lock_timeout_s=0.3,
        **kwargs,
    )


def populate(server, registry, attestation_policy, enclave_cmk, enclave_cek, n=10):
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn = connect(server, registry, attestation_policy=attestation_policy)
    make_encrypted_table(conn)
    for i in range(n):
        conn.execute("INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10})
    return conn


class TestBatchedFilter:
    def test_results_match_row_at_a_time(
        self, enclave_binary, host_machine, hgs, registry, attestation_policy,
        enclave_cmk, enclave_cek,
    ):
        from repro.enclave.runtime import Enclave

        results = {}
        for batch_size in (1, 3, 64):
            server = make_server(
                Enclave(enclave_binary), host_machine, hgs, eval_batch_size=batch_size
            )
            conn = populate(server, registry, attestation_policy, enclave_cmk, enclave_cek)
            r = conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
            results[batch_size] = sorted(row[0] for row in r.rows)
            if server.gateway is not None:
                server.gateway.shutdown()
        assert results[1] == results[3] == results[64] == EXPECT_GT_30

    def test_plan_annotates_batched_filter(self, encrypted_table):
        r = encrypted_table.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert "BatchedFilter(batch=64)" in r.plan_info

    def test_host_only_predicate_not_annotated(self, encrypted_table):
        r = encrypted_table.execute("SELECT id FROM T WHERE id > @v", {"v": 5})
        assert "BatchedFilter" not in r.plan_info

    def test_stats_report_batched_rows(self, encrypted_table):
        r = encrypted_table.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert r.stats is not None
        assert r.stats.enclave_eval_batches >= 1
        assert r.stats.enclave_batched_rows == 10  # whole table in one chunk
        # All 10 predicate rows crossed the boundary in far fewer
        # transitions than rows.
        assert r.stats.boundary_transitions < 10

    def test_explain_stats_shows_batch_rows(self, encrypted_table):
        text = encrypted_table.explain_stats(
            "SELECT id FROM T WHERE value > @v", {"v": 30}
        )
        assert "enclave_eval_batches" in text
        assert "enclave_batched_rows" in text

    def test_batch_size_one_disables_batching(
        self, enclave_binary, host_machine, hgs, registry, attestation_policy,
        enclave_cmk, enclave_cek,
    ):
        from repro.enclave.runtime import Enclave

        server = make_server(
            Enclave(enclave_binary), host_machine, hgs, eval_batch_size=1
        )
        conn = populate(server, registry, attestation_policy, enclave_cmk, enclave_cek)
        r = conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert "BatchedFilter" not in r.plan_info
        assert r.stats.enclave_eval_batches == 0
        assert sorted(row[0] for row in r.rows) == EXPECT_GT_30
        server.gateway.shutdown()


class TestBatchProbeKnob:
    @pytest.mark.parametrize("batch_size, expect_batched", [(1, False), (64, True)])
    def test_eval_batch_size_gates_index_node_probes(
        self, batch_size, expect_batched, enclave_binary, host_machine, hgs,
        registry, attestation_policy, enclave_cmk, enclave_cek,
    ):
        from repro.enclave.runtime import Enclave

        enclave = Enclave(enclave_binary)
        server = make_server(
            enclave, host_machine, hgs, eval_batch_size=batch_size
        )
        conn = populate(server, registry, attestation_policy, enclave_cmk, enclave_cek)
        conn.execute_ddl("CREATE NONCLUSTERED INDEX T_VALUE ON T(value)")
        # With batching disabled the tree must descend by binary search —
        # one compare ecall per step, never a node-level compare_batch.
        batched = enclave.counters.compare_batches > 0
        assert batched is expect_batched
        r = conn.execute("SELECT id FROM T WHERE value > @v", {"v": 30})
        assert sorted(row[0] for row in r.rows) == EXPECT_GT_30
        server.gateway.shutdown()


class TestBatchedNestedLoopJoin:
    @pytest.fixture()
    def joined(self, ae_connection):
        conn = ae_connection
        make_encrypted_table(conn, name="A")
        conn.execute_ddl(
            "CREATE TABLE B (bid int PRIMARY KEY, "
            f"bval int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
        )
        for i in range(5):
            conn.execute("INSERT INTO A (id, value) VALUES (@i, @v)", {"i": i, "v": i})
            conn.execute("INSERT INTO B (bid, bval) VALUES (@i, @v)", {"i": i, "v": i})
        return conn

    def test_rnd_join_is_batched_and_correct(self, joined):
        r = joined.execute(
            "SELECT A.id, B.bid FROM A JOIN B ON A.value = B.bval", {}
        )
        assert "NestedLoopJoin(batch=64)" in r.plan_info
        assert sorted((row[0], row[1]) for row in r.rows) == [(i, i) for i in range(5)]


class TestBatchedDml:
    def test_update_through_batched_qualification(self, encrypted_table):
        conn = encrypted_table
        r = conn.execute(
            "UPDATE T SET value = @new WHERE value > @v", {"new": 999, "v": 70}
        )
        assert r.rowcount == 2  # values 80, 90
        check = conn.execute("SELECT id FROM T WHERE value = @n", {"n": 999})
        assert sorted(row[0] for row in check.rows) == [8, 9]

    def test_delete_through_batched_qualification(self, encrypted_table):
        conn = encrypted_table
        r = conn.execute("DELETE FROM T WHERE value > @v", {"v": 30})
        assert r.rowcount == len(EXPECT_GT_30)
        left = conn.execute("SELECT id FROM T WHERE id >= @z", {"z": 0})
        assert sorted(row[0] for row in left.rows) == [0, 1, 2, 3]


class TestBatchedOrderBy:
    NAMES = ["delta", "alpha", "charlie", "bravo", "echo", "bravo"]

    def build(self, server, registry, attestation_policy, enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn = connect(server, registry, attestation_policy=attestation_policy)
        conn.execute_ddl(
            "CREATE TABLE S (k int PRIMARY KEY, "
            f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
            f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
        )
        for k, name in enumerate(self.NAMES):
            conn.execute("INSERT INTO S (k, name) VALUES (@k, @n)", {"k": k, "n": name})
        return conn

    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_sorted_identically_batched_and_not(
        self, batch_size, enclave_binary, host_machine, hgs, registry,
        attestation_policy, enclave_cmk, enclave_cek,
    ):
        from repro.enclave.runtime import Enclave

        server = make_server(
            Enclave(enclave_binary), host_machine, hgs,
            allow_enclave_order_by=True, eval_batch_size=batch_size,
        )
        conn = self.build(server, registry, attestation_policy, enclave_cmk, enclave_cek)
        result = conn.execute("SELECT k, name FROM S ORDER BY name", {})
        assert [row[1] for row in result.rows] == sorted(self.NAMES)
        server.gateway.shutdown()

    def test_batched_sort_uses_compare_batch_ecalls(
        self, enclave_binary, host_machine, hgs, registry, attestation_policy,
        enclave_cmk, enclave_cek,
    ):
        from repro.enclave.runtime import Enclave

        enclave = Enclave(enclave_binary)
        server = make_server(
            enclave, host_machine, hgs, allow_enclave_order_by=True
        )
        conn = self.build(server, registry, attestation_policy, enclave_cmk, enclave_cek)
        before = enclave.counters.compare_batches
        conn.execute("SELECT name FROM S ORDER BY name DESC", {})
        assert enclave.counters.compare_batches > before
        server.gateway.shutdown()
