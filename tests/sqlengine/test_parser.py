"""Lexer and parser coverage: the paper's DDL plus the DML surface."""

import pytest

from repro.errors import ParseError
from repro.sqlengine.sqlparser import ast, parse, tokenize
from repro.sqlengine.sqlparser.lexer import TokenType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE x = @p")
        kinds = [t.type for t in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert TokenType.PARAM in kinds

    def test_string_escapes(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_national_string_prefix(self):
        tokens = tokenize("SELECT N'azure'")
        assert tokens[1].type is TokenType.STRING
        assert tokens[1].value == "azure"

    def test_hex_blob(self):
        tokens = tokenize("SELECT 0x6FCF")
        assert tokens[1].type is TokenType.HEXBLOB
        assert tokens[1].value == "6FCF"

    def test_numbers(self):
        tokens = tokenize("SELECT 42, 3.14")
        assert tokens[1].value == "42"
        assert tokens[3].value == "3.14"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\n, 2")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2"]

    def test_bracketed_identifier(self):
        tokens = tokenize("SELECT [weird name]")
        assert tokens[1].type is TokenType.IDENT
        assert tokens[1].value == "weird name"

    def test_unterminated_string_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_bare_at_rejected(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @ FROM t")

    def test_not_equal_variants(self):
        assert tokenize("a <> b")[1].value == "<>"
        assert tokenize("a != b")[1].value == "<>"


class TestFigure1Ddl:
    def test_create_cmk(self):
        stmt = parse(
            "CREATE COLUMN MASTER KEY MyCMK WITH ("
            "KEY_STORE_PROVIDER_NAME = N'AZURE_KEY_VAULT_PROVIDER', "
            "KEY_PATH = N'https://vault.azure.net/keys/k', "
            "ENCLAVE_COMPUTATIONS (SIGNATURE = 0x6FCF))"
        )
        assert isinstance(stmt, ast.CreateCmkStmt)
        assert stmt.key_store_provider_name == "AZURE_KEY_VAULT_PROVIDER"
        assert stmt.enclave_computations_signature == bytes.fromhex("6FCF")

    def test_create_cmk_without_enclave(self):
        stmt = parse(
            "CREATE COLUMN MASTER KEY M WITH ("
            "KEY_STORE_PROVIDER_NAME = 'P', KEY_PATH = 'path')"
        )
        assert stmt.enclave_computations_signature is None

    def test_create_cek(self):
        stmt = parse(
            "CREATE COLUMN ENCRYPTION KEY MyCEK WITH VALUES ("
            "COLUMN_MASTER_KEY = MyCMK, ALGORITHM = 'RSA_OAEP', "
            "ENCRYPTED_VALUE = 0x0170, SIGNATURE = 0xBEEF)"
        )
        assert isinstance(stmt, ast.CreateCekStmt)
        assert stmt.cmk_name == "MyCMK"
        assert stmt.algorithm == "RSA_OAEP"

    def test_create_cek_requires_all_properties(self):
        with pytest.raises(ParseError):
            parse(
                "CREATE COLUMN ENCRYPTION KEY K WITH VALUES ("
                "COLUMN_MASTER_KEY = M, ALGORITHM = 'RSA_OAEP')"
            )

    def test_create_encrypted_table(self):
        stmt = parse(
            "CREATE TABLE T(id int, value int ENCRYPTED WITH ("
            "COLUMN_ENCRYPTION_KEY = MyCEK, ENCRYPTION_TYPE = Randomized, "
            "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"
        )
        assert isinstance(stmt, ast.CreateTableStmt)
        enc = stmt.columns[1].encryption
        assert enc.cek_name == "MyCEK"
        assert enc.encryption_type == "Randomized"

    def test_deterministic_encryption_type(self):
        stmt = parse(
            "CREATE TABLE T(v varchar(10) ENCRYPTED WITH ("
            "COLUMN_ENCRYPTION_KEY = K, ENCRYPTION_TYPE = Deterministic, "
            "ALGORITHM = 'A'))"
        )
        assert stmt.columns[0].encryption.encryption_type == "Deterministic"

    def test_bad_encryption_type_rejected(self):
        with pytest.raises(ParseError):
            parse(
                "CREATE TABLE T(v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = K, "
                "ENCRYPTION_TYPE = Sideways, ALGORITHM = 'A'))"
            )

    def test_alter_column_encrypt(self):
        stmt = parse(
            "ALTER TABLE T ALTER COLUMN v int ENCRYPTED WITH ("
            "COLUMN_ENCRYPTION_KEY = K, ENCRYPTION_TYPE = Randomized, ALGORITHM = 'A')"
        )
        assert isinstance(stmt, ast.AlterColumnStmt)
        assert stmt.encryption is not None

    def test_alter_column_decrypt(self):
        stmt = parse("ALTER TABLE T ALTER COLUMN v int")
        assert stmt.encryption is None


class TestDml:
    def test_select_star(self):
        stmt = parse("SELECT * FROM T WHERE value = @v")
        assert stmt.items[0].expr is None
        assert isinstance(stmt.where, ast.BinaryOp)

    def test_select_with_everything(self):
        stmt = parse(
            "SELECT c, COUNT(*) AS n FROM t WHERE a = 1 AND b LIKE 'x%' "
            "GROUP BY c ORDER BY c DESC LIMIT 7"
        )
        assert stmt.group_by and not stmt.order_by[0].ascending and stmt.limit == 7

    def test_join(self):
        stmt = parse("SELECT a.x FROM A a JOIN B b ON a.id = b.id")
        assert stmt.joins[0].table.alias == "b"

    def test_between_and_in(self):
        stmt = parse("SELECT x FROM t WHERE x BETWEEN 1 AND 5 AND y IN (1, 2, 3)")
        conj = stmt.where
        assert isinstance(conj.left, ast.BetweenOp)
        assert isinstance(conj.right, ast.InOp)

    def test_not_in_and_not_like(self):
        stmt = parse("SELECT x FROM t WHERE x NOT IN (1) AND y NOT LIKE 'a%'")
        assert stmt.where.left.negated and stmt.where.right.negated

    def test_is_null(self):
        stmt = parse("SELECT x FROM t WHERE x IS NULL AND y IS NOT NULL")
        assert not stmt.where.left.negated and stmt.where.right.negated

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, @x), (2, @y)")
        assert len(stmt.rows) == 2 and stmt.columns == ("a", "b")

    def test_update(self):
        stmt = parse("UPDATE t SET a = a + 1, b = @b WHERE id = 3")
        assert len(stmt.assignments) == 2

    def test_delete_without_where(self):
        stmt = parse("DELETE FROM t")
        assert stmt.where is None

    def test_operator_precedence(self):
        stmt = parse("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR.
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arith_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3 FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_negative_literal(self):
        stmt = parse("SELECT x FROM t WHERE x > -5")
        assert stmt.where.right.value == -5

    def test_params_collected_in_order(self):
        stmt = parse("SELECT x FROM t WHERE a = @p2 AND b = @p1 AND c = @p2")
        assert ast.statement_params(stmt) == ["p2", "p1"]

    def test_transaction_statements(self):
        assert isinstance(parse("BEGIN TRANSACTION"), ast.BeginStmt)
        assert isinstance(parse("COMMIT"), ast.CommitStmt)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStmt)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT x FROM t garbage garbage garbage()")

    def test_index_statements(self):
        stmt = parse("CREATE UNIQUE CLUSTERED INDEX i ON t (a, b)")
        assert stmt.unique and stmt.clustered
        stmt = parse("CREATE NONCLUSTERED INDEX i ON t (a)")
        assert not stmt.clustered and not stmt.unique
        stmt = parse("DROP INDEX i ON t")
        assert isinstance(stmt, ast.DropIndexStmt)

    def test_drop_table(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTableStmt)
