"""Model-based and differential property tests on core structures."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.index.btree import BPlusTree
from repro.sqlengine.index.comparators import (
    CellComparator,
    CompositeComparator,
    PlaintextComparator,
)
from repro.sqlengine.storage.heap import RowId
from repro.sqlengine.storage.record import deserialize_row, serialize_row


def plain_tree(order=4):
    return BPlusTree(
        CompositeComparator([CellComparator(PlaintextComparator())]), order=order
    )


class BTreeModel(RuleBasedStateMachine):
    """The B+-tree against a reference multiset model."""

    def __init__(self):
        super().__init__()
        self.tree = plain_tree(order=4)
        self.model: dict[int, set[int]] = {}
        self.next_rid = 0

    @rule(key=st.integers(-20, 20))
    def insert(self, key):
        rid = RowId(0, self.next_rid)
        self.next_rid += 1
        self.tree.insert((key,), rid)
        self.model.setdefault(key, set()).add(rid.slot)

    @rule(key=st.integers(-20, 20))
    def delete_one(self, key):
        slots = self.model.get(key)
        if slots:
            slot = next(iter(slots))
            assert self.tree.delete((key,), RowId(0, slot))
            slots.discard(slot)
            if not slots:
                del self.model[key]
        else:
            assert not self.tree.delete((key,), RowId(0, 999_999))

    @rule(key=st.integers(-20, 20))
    def search(self, key):
        got = {r.slot for r in self.tree.search_eq((key,))}
        assert got == self.model.get(key, set())

    @rule(lo=st.integers(-20, 20), hi=st.integers(-20, 20))
    def range(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = [k[0] for k, __ in self.tree.range_scan((lo,), (hi,))]
        expected = sorted(
            k for k, slots in self.model.items() if lo <= k <= hi for __ in slots
        )
        assert got == expected

    @invariant()
    def size_matches(self):
        assert len(self.tree) == sum(len(s) for s in self.model.values())

    @invariant()
    def scan_is_sorted(self):
        keys = [k[0] for k, __ in self.tree.scan_all()]
        assert keys == sorted(keys)


TestBTreeModel = BTreeModel.TestCase
TestBTreeModel.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)


from repro.crypto.aead import EncryptionScheme
from repro.sqlengine.types import EncryptionInfo


class TestProgramSerializationFuzz:
    ENC_INFOS = st.one_of(
        st.none(),
        st.builds(
            lambda det, cek, enc: EncryptionInfo(
                scheme=EncryptionScheme.DETERMINISTIC if det else EncryptionScheme.RANDOMIZED,
                cek_name=cek,
                enclave_enabled=enc,
            ),
            det=st.booleans(),
            cek=st.text(min_size=1, max_size=10),
            enc=st.booleans(),
        ),
    )

    @given(
        instructions=st.lists(
            st.one_of(
                st.builds(
                    lambda s, e: Instruction(Opcode.GET_DATA, (s, e)),
                    s=st.integers(0, 100),
                    e=ENC_INFOS,
                ),
                st.builds(
                    lambda v: Instruction(Opcode.PUSH_CONST, v),
                    v=st.one_of(st.none(), st.integers(-1000, 1000), st.text(max_size=20), st.booleans()),
                ),
                st.builds(lambda op: Instruction(Opcode.COMP, op), op=st.sampled_from(["=", "<", ">="])),
                st.just(Instruction(Opcode.AND)),
                st.just(Instruction(Opcode.NOT)),
                st.builds(lambda n: Instruction(Opcode.IS_NULL, n), n=st.booleans()),
                st.builds(
                    lambda s, e: Instruction(Opcode.SET_DATA, (s, e)),
                    s=st.integers(0, 10),
                    e=ENC_INFOS,
                ),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_serialize_roundtrip(self, instructions):
        program = StackProgram(instructions)
        blob = program.serialize()
        restored = StackProgram.deserialize(blob)
        assert restored.serialize() == blob
        assert len(restored.instructions) == len(instructions)


class TestRecordFuzz:
    @given(
        row=st.lists(
            st.one_of(
                st.none(),
                st.integers(-(2**62), 2**62),
                st.floats(allow_nan=False),
                st.text(max_size=50),
                st.binary(max_size=50),
                st.booleans(),
                st.builds(Ciphertext, st.binary(min_size=1, max_size=80)),
            ),
            max_size=12,
        ).map(tuple)
    )
    @settings(max_examples=80, deadline=None)
    def test_row_roundtrip(self, row):
        assert deserialize_row(serialize_row(row)) == row


_DIFF_STACK: dict = {}


def _differential_connection():
    """A lazily-built shared AE stack for the differential property test.

    One server/enclave for the whole module (RSA keygen is the expensive
    part); each example gets its own uniquely-named table.
    """
    if _DIFF_STACK:
        return _DIFF_STACK["conn"]
    from repro.attestation.hgs import AttestationPolicy, HostGuardianService
    from repro.attestation.tpm import HostMachine
    from repro.client.driver import connect
    from repro.crypto.rsa import RsaKeyPair
    from repro.enclave.runtime import Enclave, EnclaveBinary
    from repro.keys.providers import default_registry
    from repro.sqlengine.server import SqlServer
    from repro.tools.provisioning import provision_cek, provision_cmk

    binary = EnclaveBinary.build(RsaKeyPair.generate(1024))
    enclave = Enclave(binary)
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(enclave=enclave, host_machine=host, hgs=hgs)
    registry = default_registry()
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))
    conn = connect(server, registry, attestation_policy=policy)
    cmk = provision_cmk(conn, vault, "DiffCMK", "https://vault.azure.net/keys/diff")
    provision_cek(conn, vault, cmk, "DiffCEK")
    _DIFF_STACK["conn"] = conn
    _DIFF_STACK["n"] = 0
    return conn


class TestDifferentialSql:
    """SELECT over an RND-encrypted column must agree with a pure-Python
    reference evaluation of the same data."""

    @given(
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=20, unique=True),
        lo=st.integers(-50, 50),
        hi=st.integers(-50, 50),
    )
    @settings(max_examples=10, deadline=None)
    def test_range_query_matches_reference(self, values, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        conn = _differential_connection()
        _DIFF_STACK["n"] += 1
        table = f"DIFF_{_DIFF_STACK['n']}"
        conn.execute_ddl(
            f"CREATE TABLE {table} (id int PRIMARY KEY, "
            "v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = DiffCEK, "
            "ENCRYPTION_TYPE = Randomized, "
            "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"
        )
        for i, v in enumerate(values):
            conn.execute(
                f"INSERT INTO {table} (id, v) VALUES (@i, @v)", {"i": i, "v": v}
            )
        result = conn.execute(
            f"SELECT id FROM {table} WHERE v >= @lo AND v <= @hi",
            {"lo": lo, "hi": hi},
        )
        expected = sorted(i for i, v in enumerate(values) if lo <= v <= hi)
        assert sorted(r[0] for r in result.rows) == expected

    @given(
        values=st.lists(st.integers(-20, 20), min_size=1, max_size=20),
        probe=st.integers(-20, 20),
    )
    @settings(max_examples=10, deadline=None)
    def test_equality_matches_reference(self, values, probe):
        conn = _differential_connection()
        _DIFF_STACK["n"] += 1
        table = f"DIFF_{_DIFF_STACK['n']}"
        conn.execute_ddl(
            f"CREATE TABLE {table} (id int PRIMARY KEY, "
            "v int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = DiffCEK, "
            "ENCRYPTION_TYPE = Randomized, "
            "ALGORITHM = 'AEAD_AES_256_CBC_HMAC_SHA_256'))"
        )
        for i, v in enumerate(values):
            conn.execute(
                f"INSERT INTO {table} (id, v) VALUES (@i, @v)", {"i": i, "v": v}
            )
        result = conn.execute(
            f"SELECT id FROM {table} WHERE v = @p", {"p": probe}
        )
        expected = sorted(i for i, v in enumerate(values) if v == probe)
        assert sorted(r[0] for r in result.rows) == expected
