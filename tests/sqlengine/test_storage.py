"""Pages, records, heap files, buffer pool, and the WAL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SqlError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.disk import Disk
from repro.sqlengine.storage.heap import HeapFile, RowId
from repro.sqlengine.storage.page import PAGE_SIZE, Page
from repro.sqlengine.storage.record import deserialize_row, serialize_row
from repro.sqlengine.storage.wal import LogOp, WriteAheadLog


class TestRecord:
    def test_roundtrip_mixed_row(self):
        row = (1, "text", None, b"bytes", 3.5, True, Ciphertext(b"\x01" * 70))
        assert deserialize_row(serialize_row(row)) == row

    def test_empty_row(self):
        assert deserialize_row(serialize_row(())) == ()

    def test_ciphertext_survives_as_ciphertext(self):
        row = deserialize_row(serialize_row((Ciphertext(b"abc"),)))
        assert isinstance(row[0], Ciphertext)

    def test_malformed_rejected(self):
        with pytest.raises(SqlError):
            deserialize_row(b"\x00\x05\x01")

    row_strategy = st.tuples(
        st.one_of(st.none(), st.integers(-100, 100), st.text(max_size=20)),
        st.one_of(st.none(), st.binary(max_size=20)),
        st.booleans(),
    )

    @given(row_strategy)
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, row):
        assert deserialize_row(serialize_row(row)) == row


class TestPage:
    def test_insert_read(self):
        page = Page(1)
        slot = page.insert(b"record")
        assert page.read(slot) == b"record"

    def test_delete_leaves_tombstone_stable_slots(self):
        page = Page(1)
        s0 = page.insert(b"a")
        s1 = page.insert(b"b")
        page.delete(s0)
        assert page.read(s1) == b"b"
        assert page.read_or_none(s0) is None

    def test_tombstone_reused(self):
        page = Page(1)
        s0 = page.insert(b"a")
        page.delete(s0)
        assert page.insert(b"c") == s0

    def test_serialization_roundtrip(self):
        page = Page(7)
        page.insert(b"alpha")
        s = page.insert(b"beta")
        page.delete(s)
        page.insert(b"gamma")
        restored = Page.from_bytes(page.to_bytes())
        assert restored.page_id == 7
        assert restored.slots() == page.slots()

    def test_image_is_page_size(self):
        page = Page(1)
        page.insert(b"x")
        assert len(page.to_bytes()) == PAGE_SIZE

    def test_overflow_rejected(self):
        page = Page(1)
        with pytest.raises(SqlError):
            page.insert(b"x" * PAGE_SIZE)

    def test_insert_at_for_redo(self):
        page = Page(1)
        page.insert_at(5, b"redone")
        assert page.read(5) == b"redone"
        assert page.read_or_none(3) is None


class TestHeap:
    @pytest.fixture()
    def heap(self):
        return HeapFile("t", BufferPool(Disk(), capacity=4))

    def test_insert_read_update_delete(self, heap):
        rid = heap.insert((1, "a"))
        assert heap.read(rid) == (1, "a")
        heap.update(rid, (1, "b"))
        assert heap.read(rid) == (1, "b")
        heap.delete(rid)
        assert heap.read_or_none(rid) is None

    def test_scan_sees_all_live_rows(self, heap):
        rids = [heap.insert((i,)) for i in range(50)]
        heap.delete(rids[10])
        rows = {row[0] for __, row in heap.scan()}
        assert rows == set(range(50)) - {10}

    def test_rows_spill_across_pages(self, heap):
        big = "x" * 2000
        for i in range(20):
            heap.insert((i, big))
        assert len(heap.page_ids) > 1
        assert heap.row_count() == 20

    def test_foreign_rid_rejected(self, heap):
        with pytest.raises(SqlError):
            heap.read(RowId(999, 0))


class TestBufferPool:
    def test_eviction_writes_back(self):
        disk = Disk()
        pool = BufferPool(disk, capacity=2)
        first = pool.allocate_page()
        first.insert(b"persisted")
        # Allocating past capacity evicts the dirty first page to disk.
        for __ in range(3):
            pool.allocate_page()
        assert disk.has_page(first.page_id)
        reloaded = pool.get(first.page_id)
        assert reloaded.slots()[0][1] == b"persisted"

    def test_hit_miss_accounting(self):
        pool = BufferPool(Disk(), capacity=2)
        page = pool.allocate_page()
        pool.flush_all()
        before_hits = pool.hits
        pool.get(page.page_id)
        assert pool.hits == before_hits + 1

    def test_drop_all_loses_unflushed(self):
        disk = Disk()
        pool = BufferPool(disk, capacity=10)
        page = pool.allocate_page()
        page.insert(b"volatile")
        pool.drop_all()
        assert not disk.has_page(page.page_id)


class TestWal:
    def test_append_assigns_lsns(self):
        wal = WriteAheadLog()
        r1 = wal.append(1, LogOp.BEGIN)
        r2 = wal.append(1, LogOp.COMMIT)
        assert r2.lsn == r1.lsn + 1

    def test_unflushed_records_lost_at_crash(self):
        wal = WriteAheadLog()
        wal.append(1, LogOp.BEGIN)
        wal.flush()
        wal.append(1, LogOp.COMMIT)  # not flushed
        durable = wal.records(durable_only=True)
        assert [r.op for r in durable] == [LogOp.BEGIN]

    def test_truncate(self):
        wal = WriteAheadLog()
        for __ in range(5):
            wal.append(1, LogOp.BEGIN)
        wal.flush()
        dropped = wal.truncate_before(3)
        assert dropped == 3
        assert wal.size() == 2

    def test_adversary_sees_everything(self):
        wal = WriteAheadLog()
        wal.append(1, LogOp.INSERT, table="t", rid=RowId(0, 0), after=b"image")
        assert wal.adversary_view()[0].after == b"image"

    def test_counters_never_lag_the_durability_horizon_under_threads(self):
        """Regression: ``append`` used to bump ``wal.records_appended`` /
        ``wal.bytes_written`` outside ``_lock``, so a concurrent ``flush``
        could advance ``flushed_lsn`` over records the counters had not
        seen yet. The counter updates now land inside the lock: whenever
        ``flushed_lsn`` covers N records, the counter shows at least N."""
        import threading

        from repro.obs.metrics import get_registry

        registry = get_registry()
        wal = WriteAheadLog()
        baseline = registry.value("wal.records_appended")
        n_threads, per_thread = 4, 300
        stop = threading.Event()
        violations: list[tuple[int, int]] = []

        def appender():
            for __ in range(per_thread):
                wal.append(1, LogOp.INSERT, table="t", rid=RowId(0, 0), after=b"x" * 8)

        def sampler():
            while not stop.is_set():
                wal.flush()
                # Read the horizon first: the counter can only grow
                # afterwards, so counted >= covered must hold.
                covered = wal.flushed_lsn + 1
                counted = registry.value("wal.records_appended") - baseline
                if counted < covered:
                    violations.append((counted, covered))

        threads = [threading.Thread(target=appender) for __ in range(n_threads)]
        watcher = threading.Thread(target=sampler)
        watcher.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        watcher.join()
        assert not violations, f"counter lagged flushed_lsn: {violations[:3]}"
        wal.flush()
        assert registry.value("wal.records_appended") - baseline == n_threads * per_thread
        assert wal.flushed_lsn == n_threads * per_thread - 1
