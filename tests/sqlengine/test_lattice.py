"""The encryption type lattice of Figure 6 and its operation table."""

import itertools

import pytest

from repro.sqlengine.lattice import (
    GeneralizedType,
    Operation,
    generalize,
    join,
    lattice_le,
    requires_enclave,
    supports,
)

P = GeneralizedType.PLAINTEXT
D = GeneralizedType.DETERMINISTIC
R = GeneralizedType.RANDOMIZED
DE = GeneralizedType.DETERMINISTIC_ENCLAVE
RE = GeneralizedType.RANDOMIZED_ENCLAVE


class TestFigure6Order:
    def test_base_chain(self):
        # The arrows of Figure 6: Plaintext → Deterministic → Randomized.
        assert lattice_le(P, D)
        assert lattice_le(D, R)
        assert lattice_le(P, R)

    def test_antisymmetry(self):
        assert not lattice_le(D, P)
        assert not lattice_le(R, D)

    def test_reflexive(self):
        for t in GeneralizedType:
            assert lattice_le(t, t)

    def test_is_partial_order(self):
        # Transitivity over the full relation.
        for a, b, c in itertools.product(GeneralizedType, repeat=3):
            if lattice_le(a, b) and lattice_le(b, c):
                assert lattice_le(a, c), (a, b, c)

    def test_randomized_is_top(self):
        for t in GeneralizedType:
            assert lattice_le(t, R)

    def test_plaintext_is_bottom(self):
        for t in GeneralizedType:
            assert lattice_le(P, t)

    def test_join_exists_for_all_pairs(self):
        for a, b in itertools.product(GeneralizedType, repeat=2):
            j = join(a, b)
            assert j is not None
            assert lattice_le(a, j) and lattice_le(b, j)

    def test_join_examples(self):
        assert join(P, D) is D
        assert join(D, RE) is R
        assert join(DE, DE) is DE


class TestOperationsDecrease:
    def test_operations_strictly_decrease_up_the_base_chain(self):
        # "Operations decrease strictly as we go from Plaintext to
        # Deterministic to Randomized."
        ops = lambda t: {op for op in Operation if supports(t, op)}
        assert ops(D) < ops(P)
        assert ops(R) < ops(D)

    def test_plaintext_supports_everything(self):
        for op in Operation:
            assert supports(P, op)

    def test_det_equality_only(self):
        assert supports(D, Operation.EQUALITY)
        assert not supports(D, Operation.RANGE)
        assert not supports(D, Operation.LIKE)
        assert not supports(D, Operation.ORDER_BY)

    def test_rnd_without_enclave_projection_only(self):
        assert supports(R, Operation.PROJECT)
        assert not supports(R, Operation.EQUALITY)

    def test_rnd_enclave_restores_rich_operations(self):
        for op in (Operation.EQUALITY, Operation.RANGE, Operation.LIKE):
            assert supports(RE, op)

    def test_enclave_does_not_restore_order_by_or_arithmetic(self):
        # AEv2 limitation the paper works around in TPC-C.
        assert not supports(RE, Operation.ORDER_BY)
        assert not supports(RE, Operation.ARITHMETIC)


class TestEnclaveRouting:
    def test_det_equality_stays_on_host(self):
        assert not requires_enclave(D, Operation.EQUALITY)
        assert not requires_enclave(DE, Operation.EQUALITY)

    def test_rnd_enclave_ops_route_to_enclave(self):
        assert requires_enclave(RE, Operation.EQUALITY)
        assert requires_enclave(RE, Operation.RANGE)
        assert requires_enclave(RE, Operation.LIKE)

    def test_projection_never_needs_enclave(self):
        for t in GeneralizedType:
            assert not requires_enclave(t, Operation.PROJECT)


class TestGeneralize:
    @pytest.mark.parametrize(
        "scheme,enclave,expected",
        [
            (None, False, P),
            ("DET", False, D),
            ("DET", True, DE),
            ("RND", False, R),
            ("RND", True, RE),
        ],
    )
    def test_mapping(self, scheme, enclave, expected):
        assert generalize(scheme, enclave) is expected

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            generalize("XXX", False)
