"""Crash recovery (Section 4.5): redo, undo, deferral, CTR, invalidation."""

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.enclave.runtime import Enclave
from repro.errors import LockTimeoutError, TransactionError
from repro.sqlengine.catalog import Catalog, ColumnSchema, IndexSchema, TableSchema, plain_column
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.engine import IndexState, StorageEngine
from repro.sqlengine.types import ColumnType, SqlType
from repro.sqlengine.values import serialize_value


def cell(material, v):
    return Ciphertext(
        CellCipher(material).encrypt(serialize_value(v), EncryptionScheme.RANDOMIZED)
    )


@pytest.fixture()
def plain_engine():
    eng = StorageEngine(lock_timeout_s=0.2, ctr_enabled=False)
    eng.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("id", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("id",),
        )
    )
    return eng


def encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr: bool):
    catalog = Catalog()
    catalog.create_cmk(enclave_cmk)
    catalog.create_cek(enclave_cek)
    enc = catalog.encryption_info("TestCEK", EncryptionScheme.RANDOMIZED)
    eng = StorageEngine(catalog=catalog, enclave=enclave, lock_timeout_s=0.2, ctr_enabled=ctr)
    eng.create_table(
        TableSchema(
            name="e",
            columns=[
                plain_column("id", "INT", nullable=False),
                ColumnSchema("secret", ColumnType(SqlType("INT"), enc)),
            ],
            primary_key=("id",),
        )
    )
    enclave.sqlos.install_key("TestCEK", cek_material)
    eng.create_index(IndexSchema(name="ix", table_name="e", column_names=("secret",)))
    txn = eng.begin()
    for i in range(6):
        eng.insert(txn, "e", (i, cell(cek_material, i * 10)))
    eng.commit(txn)
    return eng


class TestPlainRecovery:
    def test_committed_survive_uncommitted_undone(self, plain_engine):
        eng = plain_engine
        txn1 = eng.begin()
        eng.insert(txn1, "t", (1, 100))
        eng.commit(txn1)
        txn2 = eng.begin()
        eng.insert(txn2, "t", (2, 200))
        eng.checkpoint()
        eng.crash()
        report = eng.recover()
        rows = {row[0] for __, row in eng.scan("t")}
        assert rows == {1}
        assert report.undone and not report.deferred

    def test_uncheckpointed_committed_data_redone(self, plain_engine):
        eng = plain_engine
        eng.checkpoint()
        txn = eng.begin()
        eng.insert(txn, "t", (5, 50))
        eng.commit(txn)  # commit flushes the log, not the pages
        eng.crash()
        eng.recover()
        assert {row[0] for __, row in eng.scan("t")} == {5}

    def test_update_redo(self, plain_engine):
        eng = plain_engine
        txn = eng.begin()
        rid = eng.insert(txn, "t", (1, 10))
        eng.commit(txn)
        txn2 = eng.begin()
        eng.update(txn2, "t", rid, (1, 999))
        eng.commit(txn2)
        eng.crash()
        eng.recover()
        assert eng.read("t", rid) == (1, 999)

    def test_delete_redo(self, plain_engine):
        eng = plain_engine
        txn = eng.begin()
        rid = eng.insert(txn, "t", (1, 10))
        eng.commit(txn)
        txn2 = eng.begin()
        eng.delete(txn2, "t", rid)
        eng.commit(txn2)
        eng.crash()
        eng.recover()
        assert eng.read("t", rid) is None

    def test_aborted_txn_stays_aborted(self, plain_engine):
        eng = plain_engine
        txn = eng.begin()
        eng.insert(txn, "t", (1, 10))
        eng.abort(txn)
        eng.crash()
        eng.recover()
        assert eng.table("t").heap.row_count() == 0

    def test_indexes_rebuilt(self, plain_engine):
        eng = plain_engine
        txn = eng.begin()
        for i in range(20):
            eng.insert(txn, "t", (i, i))
        eng.commit(txn)
        eng.crash()
        eng.recover()
        pk = eng.table("t").indexes["pk_t"]
        assert pk.state is IndexState.READY
        assert len(pk.tree.search_eq((7,))) == 1

    def test_recovery_idempotent(self, plain_engine):
        eng = plain_engine
        txn = eng.begin()
        eng.insert(txn, "t", (1, 10))
        eng.commit(txn)
        eng.crash()
        eng.recover()
        eng.crash()
        eng.recover()
        assert eng.table("t").heap.row_count() == 1


class TestDeferredTransactions:
    def test_keyless_recovery_defers(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)  # rebooted: no keys
        report = eng.recover()
        assert report.deferred
        assert "ix" in report.pending_indexes

    def test_deferred_txn_blocks_updates(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        eng.recover()
        blocked_rid = list(eng.deferred.values())[0].undo_log[0].rid
        txn2 = eng.begin()
        with pytest.raises(LockTimeoutError):
            eng.delete(txn2, "e", blocked_rid)

    def test_log_truncation_blocked(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        eng.recover()
        with pytest.raises(TransactionError, match="deferred"):
            eng.truncate_log()

    def test_keys_resolve_deferred(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        new_enclave = Enclave(enclave_binary)
        eng.enclave = new_enclave
        eng.recover()
        new_enclave.sqlos.install_key("TestCEK", cek_material)
        resolved = eng.resolve_deferred_transactions()
        assert resolved
        assert not eng.deferred
        assert eng.table("e").heap.row_count() == 6  # uncommitted insert undone
        assert eng.table("e").indexes["ix"].state is IndexState.READY
        eng.truncate_log()  # now allowed

    def test_no_encrypted_work_no_deferral(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        # A loser that never touched the encrypted-index table resolves fully.
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        eng.create_table(
            TableSchema(name="p", columns=[plain_column("id", "INT", nullable=False)], primary_key=("id",))
        )
        txn = eng.begin()
        eng.insert(txn, "p", (1,))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        report = eng.recover()
        assert not report.deferred
        assert report.undone


class TestCtr:
    def test_immediate_availability(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=True)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        report = eng.recover()
        assert report.ctr_reverted and not report.deferred
        # Committed data visible, locks free, uncommitted row gone.
        assert eng.table("e").heap.row_count() == 6
        txn2 = eng.begin()
        rid, row = next(eng.scan("e"))
        eng.delete(txn2, "e", rid)  # no lock timeout
        eng.abort(txn2)

    def test_version_cleaner_retries_until_keys(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=True)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        new_enclave = Enclave(enclave_binary)
        eng.enclave = new_enclave
        eng.recover()
        cleaned, pending = eng.run_version_cleaner()
        assert pending == 1 and cleaned == 0
        assert eng.pending_cleanups[0].retries == 1
        new_enclave.sqlos.install_key("TestCEK", cek_material)
        cleaned, pending = eng.run_version_cleaner()
        assert cleaned == 1 and pending == 0
        assert eng.table("e").indexes["ix"].state is IndexState.READY


class TestInvalidation:
    def test_policy_invalidation_releases_everything(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        eng.recover()
        invalidated = eng.apply_invalidation_policy(max_log_records=0)
        assert invalidated == ["ix"]
        assert not eng.deferred
        assert eng.table("e").indexes["ix"].state is IndexState.INVALID
        eng.truncate_log()

    def test_policy_noop_below_threshold(self, enclave_binary, enclave, enclave_cmk, enclave_cek, cek_material):
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        txn = eng.begin()
        eng.insert(txn, "e", (100, cell(cek_material, 1000)))
        eng.checkpoint()
        eng.crash()
        eng.enclave = Enclave(enclave_binary)
        eng.recover()
        assert eng.apply_invalidation_policy(max_log_records=10_000) == []
        assert eng.deferred

    def test_no_enclave_automatic_invalidation(self, enclave, enclave_cmk, enclave_cek, cek_material):
        # Restoring a backup on an enclave-less machine (Section 4.5).
        eng = encrypted_engine(enclave, enclave_cmk, enclave_cek, cek_material, ctr=False)
        eng.checkpoint()
        eng.crash()
        eng.enclave = None
        report = eng.recover()
        assert "ix" in report.invalidated_indexes
        assert not eng.deferred
