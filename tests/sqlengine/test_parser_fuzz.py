"""Parser robustness: arbitrary input never crashes — it parses or raises
ParseError, and valid statements round-trip through re-parsing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.sqlengine.sqlparser import ast, parse, tokenize


class TestLexerFuzz:
    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_tokenize_never_crashes_unexpectedly(self, text):
        try:
            tokens = tokenize(text)
        except ParseError:
            return
        assert tokens[-1].value == ""  # EOF sentinel

    @given(st.text(alphabet="SELECTFROMWHERE@=<>()'0x123abc ,;*", max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_parse_never_crashes_unexpectedly(self, text):
        try:
            parse(text)
        except ParseError:
            pass


class TestParseStability:
    """Structured SQL generated from fragments parses deterministically."""

    columns = st.sampled_from(["a", "b", "c_last", "value"])
    numbers = st.integers(-999, 999)

    @given(
        col=columns,
        op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        n=numbers,
        limit=st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_generated_selects_parse(self, col, op, n, limit):
        stmt = parse(f"SELECT {col} FROM t WHERE {col} {op} {n} LIMIT {limit}")
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.limit == limit
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ("<>" if op == "<>" else op)

    @given(values=st.lists(numbers, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_generated_in_lists_parse(self, values):
        sql = f"SELECT a FROM t WHERE a IN ({', '.join(map(str, values))})"
        stmt = parse(sql)
        in_op = stmt.where
        assert isinstance(in_op, ast.InOp)
        assert [option.value for option in in_op.options] == values

    @given(name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_identifiers_roundtrip(self, name):
        from repro.sqlengine.sqlparser.lexer import KEYWORDS

        if name.upper() in KEYWORDS:
            return
        stmt = parse(f"SELECT {name} FROM {name}")
        assert stmt.table.name == name
        assert stmt.items[0].expr.name == name

    @given(
        s=st.text(
            alphabet=st.characters(blacklist_characters="'", min_codepoint=32, max_codepoint=1000),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_string_literals_roundtrip(self, s):
        stmt = parse(f"SELECT a FROM t WHERE b = '{s}'")
        assert stmt.where.right.value == s
