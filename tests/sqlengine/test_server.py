"""The server facade: describe, plan cache, DDL, encrypted execution."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.errors import EnclaveError, SqlError
from repro.sqlengine.server import SqlServer

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


@pytest.fixture()
def keyed_server(server, enclave_cmk, enclave_cek, plain_cmk, plain_cek):
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    server.catalog.create_cmk(plain_cmk)
    server.catalog.create_cek(plain_cek)
    session = server.connect()
    session.execute(
        f"CREATE TABLE T(id int PRIMARY KEY, "
        f"value int ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'), "
        f"tag varchar(10) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = PlainCEK, "
        f"ENCRYPTION_TYPE = Deterministic, ALGORITHM = '{ALGO}'))"
    )
    return server


class TestDescribeParameterEncryption:
    def test_output_shape_for_example41(self, keyed_server):
        # Example 4.1: select * from T where value = @v.
        result = keyed_server.describe_parameter_encryption(
            "SELECT * FROM T WHERE value = @v"
        )
        assert len(result.parameters) == 1
        param = result.parameters[0]
        assert param.name == "v"
        assert param.column_type.encryption.cek_name == "TestCEK"
        assert result.uses_enclave
        assert [m.cek.name for m in result.enclave_ceks] == ["TestCEK"]
        # CEK metadata carries the encrypted value and the CMK metadata.
        metadata = result.parameter_ceks["TestCEK"]
        assert metadata.cmks[0].name == "TestCMK"
        assert metadata.cek.encrypted_values[0].encrypted_value

    def test_det_parameter_no_enclave(self, keyed_server):
        result = keyed_server.describe_parameter_encryption(
            "SELECT * FROM T WHERE tag = @t"
        )
        assert not result.uses_enclave
        assert result.parameters[0].column_type.encryption.scheme is EncryptionScheme.DETERMINISTIC

    def test_plaintext_parameter(self, keyed_server):
        result = keyed_server.describe_parameter_encryption(
            "SELECT * FROM T WHERE id = @i"
        )
        assert result.parameters[0].column_type.encryption is None
        assert not result.uses_enclave

    def test_attestation_included_when_enclave_needed(self, keyed_server):
        from repro.crypto.dh import DiffieHellman

        dh = DiffieHellman()
        result = keyed_server.describe_parameter_encryption(
            "SELECT * FROM T WHERE value = @v", client_dh_public=dh.public_key
        )
        assert result.attestation is not None

    def test_no_attestation_without_dh(self, keyed_server):
        result = keyed_server.describe_parameter_encryption(
            "SELECT * FROM T WHERE value = @v"
        )
        assert result.attestation is None


class TestPlanCache:
    def test_repeat_queries_hit_cache(self, keyed_server):
        q = "SELECT * FROM T WHERE id = @i"
        keyed_server.describe_parameter_encryption(q)
        misses = keyed_server.plan_cache_misses
        keyed_server.describe_parameter_encryption(q)
        keyed_server.describe_parameter_encryption(q)
        assert keyed_server.plan_cache_misses == misses
        assert keyed_server.plan_cache_hits >= 2

    def test_ddl_invalidates_cache(self, keyed_server):
        session = keyed_server.connect()
        q = "SELECT * FROM T WHERE id = @i"
        keyed_server.describe_parameter_encryption(q)
        session.execute("CREATE TABLE other (x int)")
        misses = keyed_server.plan_cache_misses
        keyed_server.describe_parameter_encryption(q)
        assert keyed_server.plan_cache_misses == misses + 1


class TestDdl:
    def test_create_drop_table(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE x (a int)")
        assert plain_server.catalog.has_table("x")
        session.execute("DROP TABLE x")
        assert not plain_server.catalog.has_table("x")

    def test_duplicate_table_rejected(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE x (a int)")
        with pytest.raises(SqlError):
            session.execute("CREATE TABLE x (a int)")

    def test_create_index_and_drop(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE x (a int, b int)")
        session.execute("CREATE INDEX ix ON x (a)")
        assert "ix" in plain_server.engine.table("x").indexes
        session.execute("DROP INDEX ix ON x")
        assert "ix" not in plain_server.engine.table("x").indexes

    def test_alter_column_requires_enclave(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE x (a int)")
        with pytest.raises(EnclaveError):
            session.execute("ALTER TABLE x ALTER COLUMN a int ENCRYPTED WITH ("
                            "COLUMN_ENCRYPTION_KEY = K, ENCRYPTION_TYPE = Randomized, "
                            f"ALGORITHM = '{ALGO}')")

    def test_cmk_cek_ddl_populate_catalog(self, plain_server):
        session = plain_server.connect()
        session.execute(
            "CREATE COLUMN MASTER KEY M WITH (KEY_STORE_PROVIDER_NAME = 'P', "
            "KEY_PATH = 'path')"
        )
        session.execute(
            "CREATE COLUMN ENCRYPTION KEY K WITH VALUES (COLUMN_MASTER_KEY = M, "
            "ALGORITHM = 'RSA_OAEP', ENCRYPTED_VALUE = 0x00, SIGNATURE = 0x00)"
        )
        assert plain_server.catalog.cmk("M").key_path == "path"
        assert plain_server.catalog.cek("K").cmk_names() == ["M"]
        # The DDL carried no enclave-computations signature: disabled.
        assert not plain_server.catalog.cek_enclave_enabled("K")


class TestCrashRecoveryThroughServer:
    def test_server_crash_recover(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE x (a int NOT NULL, PRIMARY KEY (a))")
        session.execute("INSERT INTO x (a) VALUES (1), (2)")
        plain_server.engine.checkpoint()
        plain_server.crash()
        plain_server.recover()
        r = plain_server.connect().execute("SELECT COUNT(*) FROM x", {})
        assert r.rows == [(2,)]
