"""Property-based crash recovery: durability invariants under random
workloads with crashes at arbitrary points.

Invariants after any crash + recovery:

* every row of every *committed* transaction is present (durability);
* no row of an *uncommitted* transaction is visible (atomicity, keyless
  heap undo);
* indexes agree exactly with the heap (physical/logical consistency);
* a second crash + recovery changes nothing (idempotence).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlengine.catalog import TableSchema, plain_column
from repro.sqlengine.engine import StorageEngine


def build_engine() -> StorageEngine:
    engine = StorageEngine(lock_timeout_s=0.2, ctr_enabled=False)
    engine.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("k", "INT", nullable=False), plain_column("v", "INT")],
            primary_key=("k",),
        )
    )
    return engine


# One workload step: (op, key). Ops mutate through short transactions; a
# separate flag decides whether each transaction commits.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(0, 30),
        st.booleans(),          # commit?
        st.booleans(),          # checkpoint after?
    ),
    min_size=1,
    max_size=25,
)


def apply_workload(engine: StorageEngine, steps) -> dict[int, int]:
    """Run the steps; returns the expected committed k→v mapping."""
    committed: dict[int, int] = {}
    rng = random.Random(0)
    for op, key, commit, checkpoint in steps:
        txn = engine.begin()
        value = rng.randint(0, 1000)
        try:
            if op == "insert":
                if key in committed:
                    engine.abort(txn)
                    continue
                engine.insert(txn, "t", (key, value))
                outcome = ("insert", key, value)
            elif op == "update":
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.update(txn, "t", rid, (key, value))
                outcome = ("update", key, value)
            else:
                rid = _rid_for(engine, key)
                if rid is None:
                    engine.abort(txn)
                    continue
                engine.delete(txn, "t", rid)
                outcome = ("delete", key, None)
        except Exception:
            if txn.is_active:
                engine.abort(txn)
            continue
        if commit:
            engine.commit(txn)
            kind, k, v = outcome
            if kind == "delete":
                committed.pop(k, None)
            else:
                committed[k] = v
        else:
            # Leave the transaction in-flight: it dies in the crash.
            pass
        if checkpoint:
            engine.checkpoint()
    return committed


def _rid_for(engine: StorageEngine, key: int):
    rids = engine.table("t").indexes["pk_t"].tree.search_eq((key,))
    return rids[0] if rids else None


def visible_state(engine: StorageEngine) -> dict[int, int]:
    return {row[0]: row[1] for __, row in engine.scan("t")}


class TestRecoveryProperties:
    @given(steps=OPS)
    @settings(max_examples=25, deadline=None)
    def test_committed_survive_uncommitted_vanish(self, steps):
        engine = build_engine()
        committed = apply_workload(engine, steps)
        engine.crash()
        report = engine.recover()
        assert not report.deferred  # plaintext-only: undo never blocks
        assert visible_state(engine) == committed

    @given(steps=OPS)
    @settings(max_examples=15, deadline=None)
    def test_index_agrees_with_heap_after_recovery(self, steps):
        engine = build_engine()
        apply_workload(engine, steps)
        engine.crash()
        engine.recover()
        heap_keys = sorted(row[0] for __, row in engine.scan("t"))
        pk = engine.table("t").indexes["pk_t"]
        index_keys = sorted(key[0] for key, __ in pk.tree.scan_all())
        assert index_keys == heap_keys
        # Every index rid dereferences to a live row with the same key.
        for key, rid in pk.tree.scan_all():
            row = engine.read("t", rid)
            assert row is not None and row[0] == key[0]

    @given(steps=OPS)
    @settings(max_examples=10, deadline=None)
    def test_double_crash_idempotent(self, steps):
        engine = build_engine()
        apply_workload(engine, steps)
        engine.crash()
        engine.recover()
        state_once = visible_state(engine)
        engine.crash()
        engine.recover()
        assert visible_state(engine) == state_once

    @given(steps=OPS)
    @settings(max_examples=10, deadline=None)
    def test_recovered_engine_accepts_new_work(self, steps):
        engine = build_engine()
        committed = apply_workload(engine, steps)
        engine.crash()
        engine.recover()
        txn = engine.begin()
        fresh_key = 999
        engine.insert(txn, "t", (fresh_key, 1))
        engine.commit(txn)
        expected = dict(committed)
        expected[fresh_key] = 1
        assert visible_state(engine) == expected
