"""Expression compilation and the Figure 7 host/enclave split."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.errors import TypeDeductionError
from repro.sqlengine.expression.compiler import compile_expression
from repro.sqlengine.expression.program import Opcode, StackProgram
from repro.sqlengine.expression.tree import (
    AndExpr,
    ArithExpr,
    ArithOp,
    ColumnRefExpr,
    CompareExpr,
    CompareOp,
    LikeExpr,
    LiteralExpr,
    ParameterExpr,
)
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType

RND_ENC = EncryptionInfo(scheme=EncryptionScheme.RANDOMIZED, cek_name="CEK", enclave_enabled=True)
DET_ENC = EncryptionInfo(scheme=EncryptionScheme.DETERMINISTIC, cek_name="CEK", enclave_enabled=False)
RND_NOENC = EncryptionInfo(scheme=EncryptionScheme.RANDOMIZED, cek_name="CEK", enclave_enabled=False)

INT = SqlType("INT")


def col(slot, enc=None):
    return ColumnRefExpr(name=f"c{slot}", slot=slot, column_type=ColumnType(INT, enc))


def param(slot, enc=None):
    return ParameterExpr(name=f"p{slot}", slot=slot, column_type=ColumnType(INT, enc))


def lit(value):
    return LiteralExpr(value=value, column_type=ColumnType(INT))


class TestFigure7Split:
    def test_figure7_split(self):
        """value = @v over an enclave-enabled RND column compiles to a host
        program with TM_EVAL whose operand serializes the enclave program
        — exactly the two CEsComp objects of Figure 7."""
        expr = CompareExpr(CompareOp.EQ, col(0, RND_ENC), param(1, RND_ENC))
        compiled = compile_expression(expr)

        host_ops = [i.opcode for i in compiled.host_program.instructions]
        assert host_ops == [Opcode.GET_DATA, Opcode.GET_DATA, Opcode.TM_EVAL]
        # Host GET_DATAs carry NO encryption annotation: the host moves
        # opaque ciphertext, never decrypts.
        for ins in compiled.host_program.instructions[:2]:
            assert ins.operand[1] is None

        assert compiled.uses_enclave
        assert compiled.enclave_ceks == {"CEK"}
        blob, n_inputs = compiled.host_program.instructions[2].operand
        assert n_inputs == 2
        enclave_program = StackProgram.deserialize(blob)
        enclave_ops = [i.opcode for i in enclave_program.instructions]
        assert enclave_ops == [Opcode.GET_DATA, Opcode.GET_DATA, Opcode.COMP, Opcode.SET_DATA]
        # Enclave GET_DATAs carry the CEK annotations (decrypt-at-ingress).
        assert enclave_program.instructions[0].operand[1] == RND_ENC
        # The result SET_DATA is plaintext (the boolean returned in clear).
        assert enclave_program.instructions[3].operand[1] is None

    def test_range_comparison_splits(self):
        compiled = compile_expression(CompareExpr(CompareOp.LT, col(0, RND_ENC), param(1, RND_ENC)))
        assert compiled.uses_enclave

    def test_like_splits(self):
        compiled = compile_expression(LikeExpr(value=col(0, RND_ENC), pattern=param(1, RND_ENC)))
        assert compiled.uses_enclave
        blob, __ = compiled.host_program.instructions[-1].operand
        ops = [i.opcode for i in StackProgram.deserialize(blob).instructions]
        assert Opcode.LIKE in ops


class TestDetStaysOnHost:
    def test_det_equality_no_tmeval(self):
        """Equality on DET is VARBINARY comparison, no TMEval (Section 4.4)."""
        compiled = compile_expression(CompareExpr(CompareOp.EQ, col(0, DET_ENC), param(1, DET_ENC)))
        assert not compiled.uses_enclave
        ops = [i.opcode for i in compiled.host_program.instructions]
        assert Opcode.TM_EVAL not in ops
        assert Opcode.COMP in ops

    def test_det_inequality_allowed(self):
        compiled = compile_expression(CompareExpr(CompareOp.NE, col(0, DET_ENC), param(1, DET_ENC)))
        assert not compiled.uses_enclave

    def test_det_range_rejected(self):
        with pytest.raises(TypeDeductionError):
            compile_expression(CompareExpr(CompareOp.LT, col(0, DET_ENC), param(1, DET_ENC)))


class TestRejections:
    def test_rnd_without_enclave_rejected(self):
        with pytest.raises(TypeDeductionError):
            compile_expression(CompareExpr(CompareOp.EQ, col(0, RND_NOENC), param(1, RND_NOENC)))

    def test_encrypted_vs_plaintext_rejected(self):
        with pytest.raises(TypeDeductionError):
            compile_expression(CompareExpr(CompareOp.EQ, col(0, RND_ENC), lit(5)))

    def test_cross_cek_rejected(self):
        other = EncryptionInfo(scheme=EncryptionScheme.RANDOMIZED, cek_name="OTHER", enclave_enabled=True)
        with pytest.raises(TypeDeductionError):
            compile_expression(CompareExpr(CompareOp.EQ, col(0, RND_ENC), col(1, other)))

    def test_arith_on_encrypted_rejected(self):
        with pytest.raises(TypeDeductionError):
            compile_expression(ArithExpr(ArithOp.ADD, col(0, RND_ENC), lit(1)))


class TestPlaintextCompilation:
    def test_plain_comparison(self):
        compiled = compile_expression(CompareExpr(CompareOp.LT, col(0), lit(10)))
        assert not compiled.uses_enclave
        ops = [i.opcode for i in compiled.host_program.instructions]
        assert ops == [Opcode.GET_DATA, Opcode.PUSH_CONST, Opcode.COMP]

    def test_and_combines_subprograms(self):
        expr = AndExpr(
            CompareExpr(CompareOp.EQ, col(0), lit(1)),
            CompareExpr(CompareOp.EQ, col(1, RND_ENC), param(2, RND_ENC)),
        )
        compiled = compile_expression(expr)
        ops = [i.opcode for i in compiled.host_program.instructions]
        assert ops[-1] == Opcode.AND
        assert compiled.uses_enclave

    def test_same_predicate_one_blob_per_compare(self):
        expr = AndExpr(
            CompareExpr(CompareOp.GT, col(0, RND_ENC), param(1, RND_ENC)),
            CompareExpr(CompareOp.LT, col(0, RND_ENC), param(2, RND_ENC)),
        )
        compiled = compile_expression(expr)
        assert len(compiled.enclave_programs) == 2


class TestSerializationRoundtrip:
    def test_program_roundtrip(self):
        expr = CompareExpr(CompareOp.EQ, col(0, RND_ENC), param(1, RND_ENC))
        compiled = compile_expression(expr)
        blob = compiled.host_program.serialize()
        restored = StackProgram.deserialize(blob)
        assert restored.serialize() == blob

    def test_referenced_ceks_recurses_into_tmeval(self):
        expr = CompareExpr(CompareOp.EQ, col(0, RND_ENC), param(1, RND_ENC))
        compiled = compile_expression(expr)
        assert compiled.host_program.referenced_ceks() == {"CEK"}

    def test_const_null_roundtrip(self):
        program = StackProgram([])
        from repro.sqlengine.expression.program import Instruction

        program.instructions.append(Instruction(Opcode.PUSH_CONST, None))
        program.instructions.append(Instruction(Opcode.PUSH_CONST, "text"))
        program.instructions.append(Instruction(Opcode.PUSH_CONST, 3.5))
        restored = StackProgram.deserialize(program.serialize())
        assert [i.operand for i in restored.instructions] == [None, "text", 3.5]
