"""The host-side stack machine: three-valued logic, ciphertext movement."""

import pytest

from repro.errors import ExecutionError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.expression.vm import StackMachine


def run(instructions, inputs=()):
    vm = StackMachine()
    return vm.eval(StackProgram(list(instructions)), list(inputs))[0]


def get(slot):
    return Instruction(Opcode.GET_DATA, (slot, None))


def const(v):
    return Instruction(Opcode.PUSH_CONST, v)


class TestComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("=", 1, 1, True), ("=", 1, 2, False),
            ("<>", 1, 2, True), ("<>", 2, 2, False),
            ("<", 1, 2, True), ("<=", 2, 2, True),
            (">", 3, 2, True), (">=", 1, 2, False),
        ],
    )
    def test_operators(self, op, a, b, expected):
        assert run([const(a), const(b), Instruction(Opcode.COMP, op)]) is expected

    def test_null_propagates_to_unknown(self):
        assert run([const(None), const(1), Instruction(Opcode.COMP, "=")]) is None
        assert run([const(1), const(None), Instruction(Opcode.COMP, "<")]) is None

    def test_string_comparison(self):
        assert run([const("a"), const("b"), Instruction(Opcode.COMP, "<")]) is True


class TestCiphertextOnHost:
    def test_det_equality_by_envelope(self):
        a = Ciphertext(b"\x01" * 80)
        b = Ciphertext(b"\x01" * 80)
        c = Ciphertext(b"\x02" * 80)
        assert run([get(0), get(1), Instruction(Opcode.COMP, "=")], [a, b]) is True
        assert run([get(0), get(1), Instruction(Opcode.COMP, "=")], [a, c]) is False
        assert run([get(0), get(1), Instruction(Opcode.COMP, "<>")], [a, c]) is True

    def test_ciphertext_range_rejected_on_host(self):
        a, b = Ciphertext(b"\x01" * 80), Ciphertext(b"\x02" * 80)
        with pytest.raises(ExecutionError):
            run([get(0), get(1), Instruction(Opcode.COMP, "<")], [a, b])

    def test_ciphertext_vs_plaintext_rejected(self):
        with pytest.raises(ExecutionError):
            run([get(0), const(1), Instruction(Opcode.COMP, "=")], [Ciphertext(b"x" * 80)])

    def test_host_cannot_decrypt(self):
        # An encrypted GET_DATA annotation outside the enclave must fail.
        from repro.crypto.aead import EncryptionScheme
        from repro.sqlengine.types import EncryptionInfo

        enc = EncryptionInfo(
            scheme=EncryptionScheme.RANDOMIZED, cek_name="K", enclave_enabled=True
        )
        program = StackProgram([Instruction(Opcode.GET_DATA, (0, enc))])
        with pytest.raises(ExecutionError, match="never"):
            StackMachine().eval(program, [Ciphertext(b"x" * 80)])

    def test_like_on_ciphertext_rejected(self):
        with pytest.raises(ExecutionError):
            run([get(0), const("%"), Instruction(Opcode.LIKE)], [Ciphertext(b"x" * 80)])


class TestKleeneLogic:
    T, F, N = True, False, None

    @pytest.mark.parametrize(
        "a,b,expected",
        [(T, T, T), (T, F, F), (F, N, F), (N, T, N), (N, N, N)],
    )
    def test_and(self, a, b, expected):
        assert run([const(a), const(b), Instruction(Opcode.AND)]) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [(T, T, T), (T, F, T), (F, N, N), (N, T, T), (F, F, F), (N, N, N)],
    )
    def test_or(self, a, b, expected):
        assert run([const(a), const(b), Instruction(Opcode.OR)]) is expected

    @pytest.mark.parametrize("a,expected", [(T, F), (F, T), (N, N)])
    def test_not(self, a, expected):
        assert run([const(a), Instruction(Opcode.NOT)]) is expected


class TestArithmetic:
    def test_operations(self):
        assert run([const(2), const(3), Instruction(Opcode.ARITH, "+")]) == 5
        assert run([const(2), const(3), Instruction(Opcode.ARITH, "-")]) == -1
        assert run([const(2), const(3), Instruction(Opcode.ARITH, "*")]) == 6

    def test_integer_division_truncates_toward_zero(self):
        assert run([const(7), const(2), Instruction(Opcode.ARITH, "/")]) == 3
        assert run([const(-7), const(2), Instruction(Opcode.ARITH, "/")]) == -3

    def test_float_division(self):
        assert run([const(7.0), const(2), Instruction(Opcode.ARITH, "/")]) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            run([const(1), const(0), Instruction(Opcode.ARITH, "/")])

    def test_null_propagates(self):
        assert run([const(None), const(3), Instruction(Opcode.ARITH, "+")]) is None

    def test_arith_on_ciphertext_rejected(self):
        with pytest.raises(ExecutionError):
            run([get(0), const(1), Instruction(Opcode.ARITH, "+")], [Ciphertext(b"x" * 80)])


class TestMisc:
    def test_is_null(self):
        assert run([const(None), Instruction(Opcode.IS_NULL, False)]) is True
        assert run([const(1), Instruction(Opcode.IS_NULL, False)]) is False
        assert run([const(None), Instruction(Opcode.IS_NULL, True)]) is False

    def test_like(self):
        assert run([const("hello"), const("h%"), Instruction(Opcode.LIKE)]) is True

    def test_set_data_routes_output(self):
        vm = StackMachine()
        program = StackProgram([const(42), Instruction(Opcode.SET_DATA, (0, None))])
        assert vm.eval(program, [], n_outputs=1) == [42]

    def test_get_data_out_of_range(self):
        with pytest.raises(ExecutionError):
            run([get(5)], [1])

    def test_tm_eval_without_enclave_rejected(self):
        with pytest.raises(ExecutionError, match="enclave"):
            run([const(1), Instruction(Opcode.TM_EVAL, (b"", 1))])

    def test_eval_predicate_type_checked(self):
        vm = StackMachine()
        with pytest.raises(ExecutionError):
            vm.eval_predicate(StackProgram([const(42)]), [])

    def test_stack_underflow(self):
        with pytest.raises(ExecutionError):
            run([Instruction(Opcode.COMP, "=")])


class TestSetDataOutputRegression:
    def test_stack_residue_does_not_clobber_set_data(self):
        # Regression: a program that wrote output 0 via SET_DATA and then
        # left residue on the stack used to have output 0 overwritten by
        # the stack top.
        vm = StackMachine()
        program = StackProgram([
            const(1), const(2), Instruction(Opcode.COMP, "<"),
            Instruction(Opcode.SET_DATA, (0, None)),
            const(99),  # residue
        ])
        assert vm.eval(program, [], n_outputs=1) == [True]

    def test_set_data_to_later_slot_keeps_slot_zero(self):
        vm = StackMachine()
        program = StackProgram([
            const(7), Instruction(Opcode.SET_DATA, (1, None)),
            const(5),  # residue with no SET_DATA targeting slot 0
        ])
        # Any SET_DATA means the program manages outputs itself; the
        # residue must not be surfaced.
        assert vm.eval(program, [], n_outputs=2) == [None, 7]

    def test_pure_predicate_still_surfaces_stack_top(self):
        assert run([const(1), const(2), Instruction(Opcode.COMP, "<")]) is True


class _RecordingConnector:
    """EnclaveConnector double that records batch vs single calls."""

    def __init__(self):
        self.single_calls = []
        self.batch_calls = []

    def register_program(self, program_bytes):
        return 7

    def eval(self, handle, inputs):
        self.single_calls.append(list(inputs))
        return [inputs[0] == inputs[1]]

    def eval_batch(self, handle, rows):
        self.batch_calls.append([list(r) for r in rows])
        return [[r[0] == r[1]] for r in rows]


class TestEvalBatch:
    def test_matches_per_row_eval_for_host_programs(self):
        vm = StackMachine()
        program = StackProgram([get(0), get(1), Instruction(Opcode.COMP, "<")])
        rows = [[1, 2], [3, 3], [5, 4], [None, 1]]
        batched = vm.eval_batch(program, rows)
        assert batched == [vm.eval(program, row) for row in rows]

    def test_empty_batch(self):
        vm = StackMachine()
        assert vm.eval_batch(StackProgram([const(1)]), []) == []

    def test_tm_eval_coalesced_into_one_connector_call(self):
        connector = _RecordingConnector()
        vm = StackMachine(enclave=connector)
        program = StackProgram([
            get(0), get(1), Instruction(Opcode.TM_EVAL, (b"sub", 2)),
        ])
        verdicts = vm.eval_predicate_batch(program, [[1, 1], [1, 2], [4, 4]])
        assert verdicts == [True, False, True]
        assert connector.batch_calls == [[[1, 1], [1, 2], [4, 4]]]
        assert connector.single_calls == []

    def test_single_row_batch_uses_plain_eval(self):
        connector = _RecordingConnector()
        vm = StackMachine(enclave=connector)
        program = StackProgram([
            get(0), get(1), Instruction(Opcode.TM_EVAL, (b"sub", 2)),
        ])
        assert vm.eval_predicate_batch(program, [[2, 2]]) == [True]
        assert connector.batch_calls == []
        assert connector.single_calls == [[2, 2]]

    def test_predicate_batch_type_checked(self):
        vm = StackMachine()
        with pytest.raises(ExecutionError, match="non-boolean"):
            vm.eval_predicate_batch(StackProgram([const(42)]), [[], []])

    def test_set_data_fix_applies_to_batch_path(self):
        vm = StackMachine()
        program = StackProgram([
            const(False), Instruction(Opcode.SET_DATA, (0, None)), const(True),
        ])
        assert vm.eval_batch(program, [[], []]) == [[False], [False]]
