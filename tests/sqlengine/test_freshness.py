"""Unit tests for the freshness anchor's building blocks.

The torture and differential suites exercise the end-to-end rollback
story; these tests pin the pieces in isolation — the WAL's incremental
chain cache, the anchor's monotonic advance discipline, the in-flight
page-write tolerance, the Merkle status surface, the crash semantics of
the volatile log tail, and the ecall surface the enclave exposes.
"""

from __future__ import annotations

import pytest

from repro.attestation.tpm import TpmNvAnchor
from repro.enclave.anchor import GENESIS, AnchorMismatch, AnchorState, merkle_root
from repro.enclave.runtime import Enclave
from repro.sqlengine.catalog import TableSchema, plain_column
from repro.sqlengine.engine import StorageEngine
from repro.sqlengine.storage.freshness import (
    EnclaveAnchorBackend,
    FreshnessAnchor,
    page_digest,
)
from repro.sqlengine.storage.wal import (
    CHAIN_GENESIS,
    LogOp,
    WriteAheadLog,
    chain_fold,
    encode_record,
)

D1 = b"\x11" * 32
D2 = b"\x22" * 32
D3 = b"\x33" * 32


def _filled_wal(n: int = 5, flush_every: int = 2) -> WriteAheadLog:
    wal = WriteAheadLog()
    for i in range(n):
        wal.append(i % 3, LogOp.INSERT, table="t", after=bytes([i]))
        if (i + 1) % flush_every == 0:
            wal.flush()
    return wal


class TestWalChainCache:
    def test_incremental_chain_matches_recomputation(self):
        wal = _filled_wal(n=7, flush_every=2)
        wal.flush()
        chain_lsn, chain_digest = wal.chain_state()
        digest = CHAIN_GENESIS
        for record in wal.records(durable_only=True):
            digest = chain_fold(digest, encode_record(record))
        assert chain_lsn == wal.flushed_lsn
        assert chain_digest == digest

    def test_chain_covers_only_the_durable_prefix(self):
        wal = _filled_wal(n=4, flush_every=2)
        wal.append(9, LogOp.COMMIT, table="t")  # appended, never flushed
        chain_lsn, __ = wal.chain_state()
        assert chain_lsn == wal.flushed_lsn == 3

    def test_truncation_base_digest_seeds_future_folds(self):
        wal = _filled_wal(n=6, flush_every=1)
        records = wal.records(durable_only=True)
        expected_base = CHAIN_GENESIS
        for record in records[:3]:
            expected_base = chain_fold(expected_base, encode_record(record))
        wal.truncate_before(3)
        base_lsn, base_digest = wal.chain_base()
        assert (base_lsn, base_digest) == (3, expected_base)
        # The full chain digest is unchanged: same history, cached fold.
        head_digest = base_digest
        for record in records[3:]:
            head_digest = chain_fold(head_digest, encode_record(record))
        assert wal.chain_state() == (5, head_digest)

    def test_drop_unflushed_loses_the_volatile_tail_and_reuses_lsns(self):
        wal = _filled_wal(n=4, flush_every=2)
        wal.append(7, LogOp.COMMIT, table="t")
        assert wal.size() == 5
        lost = wal.drop_unflushed()
        assert lost == 1
        assert wal.size() == 4
        replacement = wal.append(8, LogOp.ABORT, table="t")
        assert replacement.lsn == 4  # the torn slot is rewritten


class TestAnchorAdvanceDiscipline:
    def test_older_head_is_ignored_equal_conflict_rejected(self):
        anchor = AnchorState()
        anchor.attach({}, chain_lsn=-1, chain_digest=GENESIS)
        anchor.advance_wal(5, D1)
        anchor.advance_wal(3, D2)  # stale delivery: ignored
        assert (anchor.chain_lsn, anchor.chain_digest) == (5, D1)
        anchor.advance_wal(5, D1)  # idempotent redelivery: fine
        with pytest.raises(AnchorMismatch):
            anchor.advance_wal(5, D2)

    def test_epoch_is_monotonic_across_all_advance_kinds(self):
        anchor = AnchorState()
        epochs = [anchor.attach({}, -1, GENESIS)]
        epochs.append(anchor.advance_wal(0, D1))
        epochs.append(anchor.advance_page(0, D2))
        anchor.advance_wal(1, D3)
        epochs.append(anchor.epoch)
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    def test_truncation_seals_only_the_anchored_head(self):
        anchor = AnchorState()
        anchor.attach({}, chain_lsn=4, chain_digest=D1)
        with pytest.raises(AnchorMismatch):
            anchor.seal_base(4, D1)  # not one past the head
        with pytest.raises(AnchorMismatch):
            anchor.seal_base(5, D2)  # wrong digest
        anchor.seal_base(5, D1)
        assert (anchor.base_lsn, anchor.base_digest) == (5, D1)


class TestInflightPageTolerance:
    def _anchored_page(self):
        anchor = AnchorState()
        anchor.attach({0: D1}, chain_lsn=-1, chain_digest=GENESIS)
        return anchor

    def test_unconfirmed_write_tolerates_the_previous_version(self):
        anchor = self._anchored_page()
        anchor.advance_page(0, D2)  # write never lands (no confirm)
        verdict = anchor.verify(0, GENESIS, [], {0: D1}, set())
        assert verdict.ok, verdict.describe()
        # On success the map re-anchors to disk reality: the old version
        # is now the trusted one, and a second verify still passes.
        assert anchor.verify(0, GENESIS, [], {0: D1}, set()).ok

    def test_confirmed_write_makes_the_previous_version_stale(self):
        anchor = self._anchored_page()
        anchor.advance_page(0, D2)
        anchor.confirm_page(0)
        verdict = anchor.verify(0, GENESIS, [], {0: D1}, set())
        assert not verdict.ok
        assert "page.stale:0" in verdict.violations

    def test_repeated_unconfirmed_advances_keep_the_oldest_fallback(self):
        anchor = self._anchored_page()
        anchor.advance_page(0, D2)  # fails on disk, engine survives
        anchor.advance_page(0, D3)  # retried write, also never lands
        assert anchor.verify(0, GENESIS, [], {0: D1}, set()).ok

    def test_never_landed_first_write_may_be_absent(self):
        anchor = AnchorState()
        anchor.attach({}, chain_lsn=-1, chain_digest=GENESIS)
        anchor.advance_page(7, D1)  # brand-new page, write never lands
        assert anchor.verify(0, GENESIS, [], {}, set()).ok

    def test_torn_pages_are_exempt_and_forgotten(self):
        anchor = self._anchored_page()
        verdict = anchor.verify(0, GENESIS, [], {}, {0})
        assert verdict.ok
        # Forgotten: a later verify without the page must not flag it.
        assert anchor.verify(0, GENESIS, [], {}, set()).ok


class TestStatusSurface:
    def test_merkle_root_tracks_the_page_map(self):
        anchor = AnchorState()
        anchor.attach({}, -1, GENESIS)
        empty_root = anchor.status()["pages_root"]
        assert empty_root == GENESIS
        anchor.advance_page(0, D1)
        one = anchor.status()["pages_root"]
        anchor.advance_page(1, D2)
        two = anchor.status()["pages_root"]
        assert len({empty_root, one, two}) == 3

    def test_merkle_root_odd_leaf_promotion(self):
        a, b, c = D1, D2, D3
        assert merkle_root([a]) == a
        assert merkle_root([a, b, c]) != merkle_root([a, b])

    def test_status_reports_head_and_epoch(self):
        backend = TpmNvAnchor()
        backend.anchor_attach({}, -1, GENESIS, 0, GENESIS)
        backend.anchor_advance(chain_lsn=2, chain_digest=D1)
        status = backend.anchor_status()
        assert status["attached"] and status["chain_lsn"] == 2
        assert status["epoch"] == backend.epoch


class TestEngineWiring:
    def test_paper_mode_default_has_no_hooks_and_no_verification(self):
        engine = StorageEngine(ctr_enabled=False)
        assert engine.freshness is None
        assert engine.wal.flush_hook is None
        assert engine.pool.page_write_hook is None
        engine.create_table(
            TableSchema(
                name="t",
                columns=[plain_column("k", "INT", nullable=False)],
                primary_key=("k",),
            )
        )
        engine.crash()
        report = engine.recover()
        assert not report.freshness_verified
        assert report.anchor_epoch is None

    def test_attach_engine_wires_every_hook(self):
        anchor = FreshnessAnchor(TpmNvAnchor())
        engine = StorageEngine(ctr_enabled=False, freshness=anchor)
        assert engine.wal.flush_hook is not None
        assert engine.pool.page_write_hook is not None
        assert engine.pool.page_wrote_hook is not None
        assert anchor.status()["attached"]

    def test_enclave_backend_crossings_are_observed_ecalls(self, enclave_binary):
        enclave = Enclave(enclave_binary)
        seen: list[str] = []
        enclave.add_boundary_observer(
            lambda name, inputs, output: seen.append(name)
        )
        backend = EnclaveAnchorBackend(enclave)
        backend.anchor_attach({}, -1, GENESIS, 0, GENESIS)
        backend.anchor_advance(chain_lsn=0, chain_digest=D1)
        backend.anchor_confirm(3)
        backend.anchor_status()
        assert seen == [
            "anchor_attach",
            "anchor_advance",
            "anchor_confirm",
            "anchor_status",
        ]

    def test_page_digest_is_over_the_image_bytes(self):
        import hashlib

        assert page_digest(b"abc") == hashlib.sha256(b"abc").digest()
