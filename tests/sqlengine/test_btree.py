"""B+-tree correctness over all comparator flavours, incl. Figure 4."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.errors import ConstraintError, SqlError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.index.btree import BPlusTree
from repro.sqlengine.index.comparators import (
    MAX_KEY,
    CellComparator,
    CiphertextBinaryComparator,
    CompositeComparator,
    CountingComparator,
    EnclaveComparator,
    PlaintextComparator,
)
from repro.sqlengine.storage.heap import RowId
from repro.sqlengine.values import serialize_value


def plain_tree(order=8, unique=False):
    return BPlusTree(
        CompositeComparator([CellComparator(PlaintextComparator())]),
        order=order,
        unique=unique,
    )


def rid(n):
    return RowId(0, n)


class TestPlaintextTree:
    def test_insert_search(self):
        tree = plain_tree()
        data = list(range(200))
        random.Random(3).shuffle(data)
        for v in data:
            tree.insert((v,), rid(v))
        for v in (0, 57, 199):
            assert [r.slot for r in tree.search_eq((v,))] == [v]
        assert tree.search_eq((1000,)) == []

    def test_range_scan(self):
        tree = plain_tree()
        for v in range(100):
            tree.insert((v,), rid(v))
        got = [k[0] for k, __ in tree.range_scan((20,), (30,))]
        assert got == list(range(20, 31))

    def test_exclusive_bounds(self):
        tree = plain_tree()
        for v in range(10):
            tree.insert((v,), rid(v))
        got = [k[0] for k, __ in tree.range_scan((2,), (8,), low_inclusive=False, high_inclusive=False)]
        assert got == [3, 4, 5, 6, 7]

    def test_unbounded_scans(self):
        tree = plain_tree()
        for v in range(20):
            tree.insert((v,), rid(v))
        assert len(list(tree.range_scan())) == 20
        assert [k[0] for k, __ in tree.range_scan(low=(15,))] == [15, 16, 17, 18, 19]
        assert [k[0] for k, __ in tree.range_scan(high=(4,))] == [0, 1, 2, 3, 4]

    def test_duplicates_across_splits(self):
        tree = plain_tree(order=4)
        for i in range(30):
            tree.insert((7,), rid(i))
        assert len(tree.search_eq((7,))) == 30

    def test_delete(self):
        tree = plain_tree()
        for v in range(50):
            tree.insert((v,), rid(v))
        assert tree.delete((25,), rid(25))
        assert tree.search_eq((25,)) == []
        assert not tree.delete((25,), rid(25))
        assert len(tree) == 49

    def test_delete_specific_duplicate(self):
        tree = plain_tree()
        tree.insert((1,), rid(10))
        tree.insert((1,), rid(11))
        assert tree.delete((1,), rid(10))
        assert [r.slot for r in tree.search_eq((1,))] == [11]

    def test_unique_constraint(self):
        tree = plain_tree(unique=True)
        tree.insert((1,), rid(0))
        with pytest.raises(ConstraintError):
            tree.insert((1,), rid(1))

    def test_null_keys_sort_first(self):
        tree = plain_tree()
        tree.insert((5,), rid(5))
        tree.insert((None,), rid(99))
        keys = [k[0] for k, __ in tree.scan_all()]
        assert keys == [None, 5]

    def test_bulk_build_equals_incremental(self):
        entries = [((v,), rid(v)) for v in range(100)]
        random.Random(5).shuffle(entries)
        bulk = plain_tree()
        bulk.bulk_build(entries)
        assert [k[0] for k, __ in bulk.scan_all()] == list(range(100))

    def test_bulk_build_requires_empty(self):
        tree = plain_tree()
        tree.insert((1,), rid(1))
        with pytest.raises(SqlError):
            tree.bulk_build([])

    @given(st.lists(st.integers(-50, 50), max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_scan_is_sorted_multiset(self, values):
        tree = plain_tree(order=6)
        for i, v in enumerate(values):
            tree.insert((v,), rid(i))
        scanned = [k[0] for k, __ in tree.scan_all()]
        assert scanned == sorted(values)

    @given(st.sets(st.integers(0, 200), max_size=80), st.integers(0, 200), st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_property_range_scan_matches_filter(self, values, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = plain_tree(order=6)
        for v in values:
            tree.insert((v,), rid(v))
        got = [k[0] for k, __ in tree.range_scan((lo,), (hi,))]
        assert got == sorted(v for v in values if lo <= v <= hi)


class TestDetTree:
    def _cell(self, cipher, value):
        return Ciphertext(cipher.encrypt(serialize_value(value), EncryptionScheme.DETERMINISTIC))

    def test_equality_through_ciphertext_order(self, cek_material):
        cipher = CellCipher(cek_material)
        tree = BPlusTree(
            CompositeComparator([CellComparator(CiphertextBinaryComparator())]), order=6
        )
        for i, value in enumerate(["red", "blue", "red", "green", "red"]):
            tree.insert((self._cell(cipher, value),), rid(i))
        probe = (self._cell(cipher, "red"),)
        assert sorted(r.slot for r in tree.search_eq(probe)) == [0, 2, 4]

    def test_semantic_range_blocked_by_planner_contract(self, cek_material):
        comparator = CompositeComparator([CellComparator(CiphertextBinaryComparator())])
        assert comparator.supports_range        # scans are well-defined...
        assert not comparator.semantic_order    # ...but order is not plaintext order


class TestEnclaveTree:
    def test_figure4_walkthrough(self, enclave, cek_material):
        """Figure 4: inserting (encrypted) key 7 into a range index routes
        comparisons to the enclave and lands between 6 and 8."""
        enclave.sqlos.install_key("TestCEK", cek_material)
        cipher = CellCipher(cek_material)

        def cell(v):
            return Ciphertext(cipher.encrypt(serialize_value(v), EncryptionScheme.RANDOMIZED))

        inner = EnclaveComparator(enclave, "TestCEK")
        counter = CountingComparator(inner)
        tree = BPlusTree(
            CompositeComparator([CellComparator(counter)]), order=4
        )
        for v in [1, 2, 3, 4, 5, 6, 8, 9]:
            tree.insert((cell(v),), rid(v))

        comparisons_before = enclave.counters.comparisons
        tree.insert((cell(7),), rid(7))
        assert enclave.counters.comparisons > comparisons_before

        # The index stores only ciphertexts, ordered by plaintext.
        decrypted_order = [
            int.from_bytes(cipher.decrypt(k[0].envelope)[1:], "big", signed=True)
            for k, __ in tree.scan_all()
        ]
        assert decrypted_order == [1, 2, 3, 4, 5, 6, 7, 8, 9]

    def test_range_scan_by_plaintext_order(self, enclave, cek_material):
        enclave.sqlos.install_key("TestCEK", cek_material)
        cipher = CellCipher(cek_material)

        def cell(v):
            return Ciphertext(cipher.encrypt(serialize_value(v), EncryptionScheme.RANDOMIZED))

        tree = BPlusTree(
            CompositeComparator([CellComparator(EnclaveComparator(enclave, "TestCEK"))]),
            order=4,
        )
        for v in range(0, 100, 10):
            tree.insert((cell(v),), rid(v))
        got = [r.slot for __, r in tree.range_scan((cell(25),), (cell(65),))]
        assert got == [30, 40, 50, 60]


class TestCompositeTree:
    def test_prefix_scan(self):
        tree = BPlusTree(
            CompositeComparator([
                CellComparator(PlaintextComparator()),
                CellComparator(PlaintextComparator()),
            ]),
            order=4,
        )
        n = 0
        for a in range(3):
            for b in range(5):
                tree.insert((a, b), rid(n))
                n += 1
        got = [k for k, __ in tree.range_scan((1,), (1, MAX_KEY))]
        assert got == [(1, b) for b in range(5)]

    def test_full_key_seek(self):
        tree = BPlusTree(
            CompositeComparator([
                CellComparator(PlaintextComparator()),
                CellComparator(PlaintextComparator()),
            ]),
        )
        tree.insert((1, "x"), rid(1))
        tree.insert((1, "y"), rid(2))
        assert [r.slot for r in tree.search_eq((1, "y"))] == [2]

    def test_mixed_plain_and_det_components(self, cek_material):
        cipher = CellCipher(cek_material)

        def det(v):
            return Ciphertext(cipher.encrypt(serialize_value(v), EncryptionScheme.DETERMINISTIC))

        tree = BPlusTree(
            CompositeComparator([
                CellComparator(PlaintextComparator()),
                CellComparator(CiphertextBinaryComparator()),
            ]),
        )
        tree.insert((1, det("smith")), rid(1))
        tree.insert((1, det("jones")), rid(2))
        tree.insert((2, det("smith")), rid(3))
        assert [r.slot for r in tree.search_eq((1, det("smith")))] == [1]
        # Prefix-equality scan over (w) works even with a DET component.
        got = sorted(r.slot for __, r in tree.range_scan((1,), (1, MAX_KEY)))
        assert got == [1, 2]
