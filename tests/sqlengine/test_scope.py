"""Name resolution scopes."""

import pytest

from repro.errors import BindError
from repro.sqlengine.catalog import Catalog, TableSchema, plain_column
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast


@pytest.fixture()
def catalog():
    c = Catalog()
    c.create_table(TableSchema(name="a", columns=[plain_column("x", "INT"), plain_column("y", "INT")]))
    c.create_table(TableSchema(name="b", columns=[plain_column("y", "INT"), plain_column("z", "INT")]))
    return c


class TestScope:
    def test_slots_concatenate(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        scope.add_table(ast.TableRef(name="b"))
        assert scope.width == 4
        assert scope.resolve(ast.ColumnName("x")).slot == 0
        assert scope.resolve(ast.ColumnName("z")).slot == 3

    def test_ambiguous_column_rejected(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        scope.add_table(ast.TableRef(name="b"))
        with pytest.raises(BindError, match="ambiguous"):
            scope.resolve(ast.ColumnName("y"))

    def test_qualification_disambiguates(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        scope.add_table(ast.TableRef(name="b"))
        assert scope.resolve(ast.ColumnName("y", table="a")).slot == 1
        assert scope.resolve(ast.ColumnName("y", table="b")).slot == 2

    def test_alias_binding(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a", alias="t1"))
        assert scope.resolve(ast.ColumnName("x", table="t1")).slot == 0
        with pytest.raises(BindError):
            scope.resolve(ast.ColumnName("x", table="a"))  # alias replaces name

    def test_self_join_needs_aliases(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a", alias="l"))
        scope.add_table(ast.TableRef(name="a", alias="r"))
        assert scope.resolve(ast.ColumnName("x", table="r")).slot == 2

    def test_duplicate_binding_rejected(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        with pytest.raises(BindError):
            scope.add_table(ast.TableRef(name="a"))

    def test_unknown_column(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        with pytest.raises(BindError):
            scope.resolve(ast.ColumnName("nope"))

    def test_all_columns(self, catalog):
        scope = Scope(catalog)
        scope.add_table(ast.TableRef(name="a"))
        scope.add_table(ast.TableRef(name="b"))
        assert [c.column.name for c in scope.all_columns()] == ["x", "y", "y", "z"]
