"""Storage engine: DML, index maintenance, transactions."""

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.errors import ConstraintError, SqlError
from repro.sqlengine.catalog import Catalog, ColumnSchema, IndexSchema, TableSchema, plain_column
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.engine import StorageEngine
from repro.sqlengine.types import ColumnType, SqlType
from repro.sqlengine.values import serialize_value


@pytest.fixture()
def engine():
    eng = StorageEngine(lock_timeout_s=0.2)
    eng.create_table(
        TableSchema(
            name="t",
            columns=[plain_column("id", "INT", nullable=False), plain_column("v", "VARCHAR", 50)],
            primary_key=("id",),
        )
    )
    return eng


class TestDml:
    def test_insert_read(self, engine):
        txn = engine.begin()
        rid = engine.insert(txn, "t", (1, "a"))
        engine.commit(txn)
        assert engine.read("t", rid) == (1, "a")

    def test_primary_key_enforced(self, engine):
        txn = engine.begin()
        engine.insert(txn, "t", (1, "a"))
        with pytest.raises(ConstraintError):
            engine.insert(txn, "t", (1, "b"))

    def test_pk_violation_leaves_no_orphan_row(self, engine):
        txn = engine.begin()
        engine.insert(txn, "t", (1, "a"))
        try:
            engine.insert(txn, "t", (1, "b"))
        except ConstraintError:
            pass
        engine.commit(txn)
        assert engine.table("t").heap.row_count() == 1

    def test_update_maintains_index(self, engine):
        txn = engine.begin()
        rid = engine.insert(txn, "t", (1, "a"))
        engine.update(txn, "t", rid, (2, "a"))
        engine.commit(txn)
        pk = engine.table("t").indexes["pk_t"]
        assert pk.tree.search_eq((1,)) == []
        assert pk.tree.search_eq((2,)) == [rid]

    def test_delete_maintains_index(self, engine):
        txn = engine.begin()
        rid = engine.insert(txn, "t", (1, "a"))
        engine.delete(txn, "t", rid)
        engine.commit(txn)
        assert engine.table("t").indexes["pk_t"].tree.search_eq((1,)) == []

    def test_arity_checked(self, engine):
        txn = engine.begin()
        with pytest.raises(SqlError):
            engine.insert(txn, "t", (1,))

    def test_not_null_enforced(self, engine):
        txn = engine.begin()
        with pytest.raises(ConstraintError):
            engine.insert(txn, "t", (None, "a"))

    def test_type_validated(self, engine):
        txn = engine.begin()
        with pytest.raises(SqlError):
            engine.insert(txn, "t", ("not-an-int", "a"))

    def test_varchar_length_enforced(self, engine):
        txn = engine.begin()
        with pytest.raises(SqlError):
            engine.insert(txn, "t", (1, "x" * 51))


class TestTransactions:
    def test_abort_restores_inserts(self, engine):
        txn = engine.begin()
        engine.insert(txn, "t", (1, "a"))
        engine.abort(txn)
        assert engine.table("t").heap.row_count() == 0
        assert engine.table("t").indexes["pk_t"].tree.search_eq((1,)) == []

    def test_abort_restores_deletes(self, engine):
        txn = engine.begin()
        rid = engine.insert(txn, "t", (1, "a"))
        engine.commit(txn)
        txn2 = engine.begin()
        engine.delete(txn2, "t", rid)
        engine.abort(txn2)
        assert engine.read("t", rid) == (1, "a")
        assert engine.table("t").indexes["pk_t"].tree.search_eq((1,)) == [rid]

    def test_abort_restores_updates(self, engine):
        txn = engine.begin()
        rid = engine.insert(txn, "t", (1, "a"))
        engine.commit(txn)
        txn2 = engine.begin()
        engine.update(txn2, "t", rid, (1, "modified"))
        engine.abort(txn2)
        assert engine.read("t", rid) == (1, "a")

    def test_commit_twice_rejected(self, engine):
        txn = engine.begin()
        engine.commit(txn)
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            engine.commit(txn)

    def test_row_lock_conflict_times_out(self, engine):
        txn1 = engine.begin()
        rid = engine.insert(txn1, "t", (1, "a"))
        txn2 = engine.begin()
        from repro.errors import LockTimeoutError

        with pytest.raises(LockTimeoutError):
            engine.delete(txn2, "t", rid)

    def test_locks_released_on_commit(self, engine):
        txn1 = engine.begin()
        rid = engine.insert(txn1, "t", (1, "a"))
        engine.commit(txn1)
        txn2 = engine.begin()
        engine.delete(txn2, "t", rid)  # no timeout
        engine.commit(txn2)


class TestEncryptedColumns:
    @pytest.fixture()
    def enc_engine(self, enclave, cek_material, enclave_cmk, enclave_cek):
        catalog = Catalog()
        catalog.create_cmk(enclave_cmk)
        catalog.create_cek(enclave_cek)
        enc = catalog.encryption_info("TestCEK", EncryptionScheme.RANDOMIZED)
        eng = StorageEngine(catalog=catalog, enclave=enclave, lock_timeout_s=0.2)
        eng.create_table(
            TableSchema(
                name="e",
                columns=[
                    plain_column("id", "INT", nullable=False),
                    ColumnSchema("secret", ColumnType(SqlType("INT"), enc)),
                ],
                primary_key=("id",),
            )
        )
        enclave.sqlos.install_key("TestCEK", cek_material)
        return eng

    def _cell(self, cek_material, v):
        return Ciphertext(
            CellCipher(cek_material).encrypt(serialize_value(v), EncryptionScheme.RANDOMIZED)
        )

    def test_plaintext_into_encrypted_column_rejected(self, enc_engine):
        txn = enc_engine.begin()
        with pytest.raises(SqlError, match="encrypted"):
            enc_engine.insert(txn, "e", (1, 42))

    def test_ciphertext_into_plaintext_column_rejected(self, enc_engine, cek_material):
        txn = enc_engine.begin()
        with pytest.raises(SqlError, match="plaintext"):
            enc_engine.insert(txn, "e", (self._cell(cek_material, 1), self._cell(cek_material, 2)))

    def test_null_allowed_in_encrypted_column(self, enc_engine):
        txn = enc_engine.begin()
        enc_engine.insert(txn, "e", (1, None))
        enc_engine.commit(txn)

    def test_range_index_on_encrypted(self, enc_engine, cek_material):
        txn = enc_engine.begin()
        for i in range(10):
            enc_engine.insert(txn, "e", (i, self._cell(cek_material, i * 5)))
        enc_engine.commit(txn)
        ix = enc_engine.create_index(
            IndexSchema(name="ix_secret", table_name="e", column_names=("secret",))
        )
        got = [r for __, r in ix.tree.range_scan(
            (self._cell(cek_material, 10),), (self._cell(cek_material, 30),)
        )]
        assert len(got) == 5  # 10, 15, 20, 25, 30

    def test_clustered_index_on_encrypted_rejected(self, enc_engine):
        with pytest.raises(SqlError, match="clustered"):
            enc_engine.create_index(
                IndexSchema(
                    name="cl", table_name="e", column_names=("secret",), clustered=True
                )
            )

    def test_rnd_index_without_enclave_enabled_key_rejected(self, plain_cmk, plain_cek):
        catalog = Catalog()
        catalog.create_cmk(plain_cmk)
        catalog.create_cek(plain_cek)
        enc = catalog.encryption_info("PlainCEK", EncryptionScheme.RANDOMIZED)
        eng = StorageEngine(catalog=catalog)
        eng.create_table(
            TableSchema(
                name="x",
                columns=[ColumnSchema("v", ColumnType(SqlType("INT"), enc))],
            )
        )
        with pytest.raises(SqlError):
            eng.create_index(IndexSchema(name="ix", table_name="x", column_names=("v",)))
