"""Value serialization, comparison, and LIKE matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SqlError
from repro.sqlengine.values import (
    compare_values,
    deserialize_value,
    like_match,
    serialize_value,
)

SCALARS = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=100),
    st.binary(max_size=100),
    st.booleans(),
)


class TestSerialization:
    @pytest.mark.parametrize(
        "value", [0, -1, 2**63 - 1, -(2**63), 3.14, "", "héllo", b"", b"\x00", True, False]
    )
    def test_roundtrip(self, value):
        assert deserialize_value(serialize_value(value)) == value

    def test_null_not_serializable(self):
        with pytest.raises(SqlError):
            serialize_value(None)

    def test_int_out_of_range(self):
        with pytest.raises(SqlError):
            serialize_value(2**63)

    def test_type_tags_distinguish(self):
        # 1 (int) and True (bool) and 1.0 (float) serialize differently —
        # DET equality must not conflate them.
        assert serialize_value(1) != serialize_value(True)
        assert serialize_value(1) != serialize_value(1.0)

    def test_canonical_for_det(self):
        # Byte-identical serialization is what makes DET equality exact.
        assert serialize_value("abc") == serialize_value("abc")

    def test_empty_input_rejected(self):
        with pytest.raises(SqlError):
            deserialize_value(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(SqlError):
            deserialize_value(b"\x99abc")

    def test_malformed_int_rejected(self):
        with pytest.raises(SqlError):
            deserialize_value(b"\x01\x00\x00")

    @given(SCALARS)
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, value):
        result = deserialize_value(serialize_value(value))
        assert result == value and type(result) is type(value)


class TestComparison:
    def test_three_way(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    def test_mixed_numerics(self):
        assert compare_values(1, 1.5) == -1
        assert compare_values(2.0, 2) == 0

    def test_strings(self):
        assert compare_values("a", "b") == -1
        assert compare_values("b", "a") == 1

    def test_incompatible_types_rejected(self):
        with pytest.raises(SqlError):
            compare_values(1, "a")

    def test_bool_not_comparable_with_int(self):
        with pytest.raises(SqlError):
            compare_values(True, 1)

    def test_null_rejected(self):
        with pytest.raises(SqlError):
            compare_values(None, 1)

    @given(a=st.integers(), b=st.integers())
    @settings(max_examples=50, deadline=None)
    def test_antisymmetry(self, a, b):
        assert compare_values(a, b) == -compare_values(b, a)


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "%ell%", True),
            ("hello", "h_llo", True),
            ("hello", "h_lo", False),
            ("hello", "h__lo", True),
            ("hello", "", False),
            ("", "", True),
            ("", "%", True),
            ("abc", "%%", True),
            ("abc", "a%c", True),
            ("abc", "a%b", False),
            ("BARBAR", "BAR%", True),
            ("OUGHTBAR", "BAR%", False),
            ("aXbXc", "a_b_c", True),
            ("mississippi", "m%iss%ppi", True),
            ("mississippi", "m%xss%", False),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    @given(st.text(alphabet="ab", max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_percent_matches_everything(self, value):
        assert like_match(value, "%")

    @given(st.text(alphabet="ab", max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_exact_pattern_matches_itself(self, value):
        assert like_match(value, value)
