"""StatementScheduler and SqlServer session-limit behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.client.driver import connect
from repro.errors import ServerBusyError, SqlError
from repro.sqlengine.scheduler import StatementScheduler
from repro.sqlengine.server import SqlServer


class TestStatementScheduler:
    def test_submit_returns_result(self):
        scheduler = StatementScheduler(worker_threads=2)
        assert scheduler.submit(lambda: 41 + 1) == 42

    def test_passthrough_mode_runs_on_calling_thread(self):
        scheduler = StatementScheduler(worker_threads=0)
        caller = threading.current_thread()
        ran_on: list[threading.Thread] = []
        scheduler.submit(lambda: ran_on.append(threading.current_thread()))
        assert ran_on == [caller]
        assert scheduler.live_workers == 0

    def test_worker_mode_runs_off_calling_thread(self):
        scheduler = StatementScheduler(worker_threads=2)
        ran_on: list[threading.Thread] = []
        scheduler.submit(lambda: ran_on.append(threading.current_thread()))
        assert ran_on[0] is not threading.current_thread()
        assert ran_on[0].name.startswith("stmt-worker-")

    def test_errors_propagate_to_submitter(self):
        scheduler = StatementScheduler(worker_threads=2)

        def boom():
            raise ValueError("expected")

        with pytest.raises(ValueError, match="expected"):
            scheduler.submit(boom)

    def test_concurrency_bounded_by_worker_threads(self):
        """With 2 workers, 4 concurrent submits never run more than 2
        closures simultaneously."""
        scheduler = StatementScheduler(worker_threads=2)
        lock = threading.Lock()
        running = [0]
        peak = [0]

        def task():
            with lock:
                running[0] += 1
                peak[0] = max(peak[0], running[0])
            time.sleep(0.02)
            with lock:
                running[0] -= 1

        threads = [
            threading.Thread(target=scheduler.submit, args=(task,))
            for __ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert peak[0] <= 2
        assert scheduler.live_workers <= 2

    def test_reentrant_submit_runs_inline(self):
        """A task submitting from a worker thread must not wait for a
        second worker the pool may never grant (self-deadlock): it runs
        inline on the same worker."""
        scheduler = StatementScheduler(worker_threads=1)
        inner_thread: list[threading.Thread] = []

        def outer():
            scheduler.submit(
                lambda: inner_thread.append(threading.current_thread())
            )
            return threading.current_thread()

        outer_thread = scheduler.submit(outer)
        assert inner_thread == [outer_thread]

    def test_idle_workers_retire(self):
        scheduler = StatementScheduler(worker_threads=2, idle_timeout_s=0.05)
        scheduler.submit(lambda: None)
        assert scheduler.live_workers >= 1
        deadline = time.monotonic() + 2.0
        while scheduler.live_workers > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert scheduler.live_workers == 0

    def test_shutdown_rejects_new_work(self):
        scheduler = StatementScheduler(worker_threads=2)
        scheduler.shutdown()
        with pytest.raises(RuntimeError):
            scheduler.submit(lambda: None)

    def test_negative_worker_threads_rejected(self):
        with pytest.raises(ValueError):
            StatementScheduler(worker_threads=-1)


class TestSessionLimits:
    def test_max_sessions_enforced(self, registry):
        server = SqlServer(max_sessions=2)
        connect(server, registry, column_encryption=False)
        connect(server, registry, column_encryption=False)
        with pytest.raises(ServerBusyError):
            connect(server, registry, column_encryption=False)

    def test_close_frees_a_session_slot(self, registry):
        server = SqlServer(max_sessions=1)
        conn = connect(server, registry, column_encryption=False)
        conn.close()
        connect(server, registry, column_encryption=False)  # slot reusable

    def test_closed_session_rejects_statements(self, registry):
        server = SqlServer()
        conn = connect(server, registry, column_encryption=False)
        conn.execute_ddl("CREATE TABLE C(id int PRIMARY KEY)")
        conn.close()
        with pytest.raises(SqlError):
            conn.execute("SELECT id FROM C", {})

    def test_close_aborts_open_transaction(self, registry):
        server = SqlServer()
        conn_a = connect(server, registry, column_encryption=False)
        conn_a.execute_ddl("CREATE TABLE D(id int PRIMARY KEY)")
        conn_a.begin()
        conn_a.execute("INSERT INTO D (id) VALUES (@i)", {"i": 1})
        conn_a.close()                        # implicit rollback
        conn_b = connect(server, registry, column_encryption=False)
        assert conn_b.execute("SELECT id FROM D", {}).rows == []

    def test_connection_context_manager_closes(self, registry):
        server = SqlServer(max_sessions=1)
        with connect(server, registry, column_encryption=False) as conn:
            conn.execute_ddl("CREATE TABLE E(id int PRIMARY KEY)")
        connect(server, registry, column_encryption=False)

    def test_sessions_gauge_tracks_open_sessions(self, registry):
        from repro.obs.metrics import get_registry

        # The gauge holds the absolute open-session count of the server
        # that last touched it; with this fresh server acting alone it
        # reads 1 while the connection is open and 0 after close.
        server = SqlServer()
        conn = connect(server, registry, column_encryption=False)
        assert get_registry().value("server.sessions_open") == 1
        conn.close()
        assert get_registry().value("server.sessions_open") == 0
