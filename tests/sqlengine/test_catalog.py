"""Catalog: tables, key metadata system tables, enclave-flag derivation."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.errors import BindError, SqlError
from repro.keys.cek import CekEncryptedValue
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema, plain_column
from repro.sqlengine.types import ColumnType, SqlType


@pytest.fixture()
def catalog(enclave_cmk, enclave_cek, plain_cmk, plain_cek):
    c = Catalog()
    c.create_cmk(enclave_cmk)
    c.create_cek(enclave_cek)
    c.create_cmk(plain_cmk)
    c.create_cek(plain_cek)
    return c


class TestTables:
    def test_create_lookup_case_insensitive(self, catalog):
        catalog.create_table(TableSchema(name="Foo", columns=[plain_column("a", "INT")]))
        assert catalog.table("foo").name == "Foo"
        assert catalog.table("FOO").name == "Foo"
        assert catalog.has_table("fOo")

    def test_duplicate_rejected(self, catalog):
        catalog.create_table(TableSchema(name="t", columns=[plain_column("a", "INT")]))
        with pytest.raises(SqlError):
            catalog.create_table(TableSchema(name="T", columns=[plain_column("a", "INT")]))

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(BindError):
            catalog.table("ghost")

    def test_drop(self, catalog):
        catalog.create_table(TableSchema(name="t", columns=[plain_column("a", "INT")]))
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_column_lookup(self, catalog):
        schema = TableSchema(
            name="t", columns=[plain_column("a", "INT"), plain_column("B", "VARCHAR", 5)]
        )
        assert schema.column("b").name == "B"
        assert schema.column_index("A") == 0
        with pytest.raises(BindError):
            schema.column("zzz")


class TestKeyMetadata:
    def test_cek_references_must_resolve(self, catalog):
        orphan = CekEncryptedValue(
            column_master_key_name="NOPE", algorithm="RSA_OAEP",
            encrypted_value=b"x", signature=b"y",
        )
        from repro.keys.cek import ColumnEncryptionKey

        with pytest.raises(BindError):
            catalog.create_cek(ColumnEncryptionKey(name="Bad", encrypted_values=[orphan]))

    def test_enclave_flag_derivation(self, catalog):
        assert catalog.cek_enclave_enabled("TestCEK")
        assert not catalog.cek_enclave_enabled("PlainCEK")

    def test_encryption_info_carries_flag(self, catalog):
        info = catalog.encryption_info("TestCEK", EncryptionScheme.RANDOMIZED)
        assert info.enclave_enabled
        info = catalog.encryption_info("PlainCEK", EncryptionScheme.DETERMINISTIC)
        assert not info.enclave_enabled

    def test_unknown_algorithm_rejected(self, catalog):
        with pytest.raises(SqlError):
            catalog.encryption_info("TestCEK", EncryptionScheme.RANDOMIZED, algorithm="ROT13")

    def test_unknown_cek_rejected(self, catalog):
        with pytest.raises(BindError):
            catalog.encryption_info("GHOST", EncryptionScheme.RANDOMIZED)

    def test_duplicate_cmk_rejected(self, catalog, enclave_cmk):
        with pytest.raises(SqlError):
            catalog.create_cmk(enclave_cmk)

    def test_listing(self, catalog):
        assert {c.name for c in catalog.cmks()} == {"TestCMK", "PlainCMK"}
        assert {c.name for c in catalog.ceks()} == {"TestCEK", "PlainCEK"}


class TestColumnSchema:
    def test_is_encrypted(self, catalog):
        info = catalog.encryption_info("TestCEK", EncryptionScheme.RANDOMIZED)
        column = ColumnSchema("x", ColumnType(SqlType("INT"), info))
        assert column.is_encrypted
        assert not plain_column("y", "INT").is_encrypted
