"""Encryption type deduction via union-find (Section 4.3, Example 4.2)."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.errors import TypeDeductionError
from repro.sqlengine.catalog import Catalog, ColumnSchema, TableSchema, plain_column
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast, parse
from repro.sqlengine.typededuce import deduce
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType


def make_catalog(scheme=EncryptionScheme.RANDOMIZED, enclave=True) -> Catalog:
    catalog = Catalog()
    enc = EncryptionInfo(scheme=scheme, cek_name="CEK", enclave_enabled=enclave)
    enc2 = EncryptionInfo(scheme=scheme, cek_name="CEK2", enclave_enabled=enclave)
    catalog.create_table(
        TableSchema(
            name="T",
            columns=[
                plain_column("id", "INT"),
                ColumnSchema("value", ColumnType(SqlType("INT"), enc)),
                ColumnSchema("name", ColumnType(SqlType("VARCHAR", 20), enc)),
                ColumnSchema("other", ColumnType(SqlType("INT"), enc2)),
                plain_column("plain", "INT"),
            ],
        )
    )
    return catalog


def run(sql: str, scheme=EncryptionScheme.RANDOMIZED, enclave=True):
    catalog = make_catalog(scheme, enclave)
    stmt = parse(sql)
    scope = Scope(catalog)
    if isinstance(stmt, ast.SelectStmt):
        scope.add_table(stmt.table)
    else:
        scope.add_table(ast.TableRef(name=stmt.table))
    return deduce(stmt, scope)


class TestExample42:
    def test_param_inherits_column_encryption(self):
        # select * from T where value = @v  (the paper's running example)
        result = run("SELECT * FROM T WHERE value = @v")
        enc = result.param_types["v"].encryption
        assert enc is not None and enc.cek_name == "CEK"
        assert enc.scheme is EncryptionScheme.RANDOMIZED

    def test_param_sql_type_deduced(self):
        result = run("SELECT * FROM T WHERE value = @v")
        assert result.param_types["v"].sql_type.base == "INT"

    def test_plaintext_preference_for_unconstrained(self):
        # "our preference is to solve using the Plaintext type"
        result = run("SELECT * FROM T WHERE plain = @p")
        assert result.param_types["p"].encryption is None


class TestEnclaveRequirements:
    def test_rnd_equality_needs_enclave(self):
        result = run("SELECT * FROM T WHERE value = @v")
        assert result.enclave_ceks == {"CEK"}

    def test_rnd_range_needs_enclave(self):
        result = run("SELECT * FROM T WHERE value > @v")
        assert result.uses_enclave

    def test_like_needs_enclave(self):
        result = run("SELECT * FROM T WHERE name LIKE @p")
        assert result.enclave_ceks == {"CEK"}

    def test_det_equality_needs_no_enclave(self):
        result = run(
            "SELECT * FROM T WHERE value = @v",
            scheme=EncryptionScheme.DETERMINISTIC,
            enclave=False,
        )
        assert not result.uses_enclave
        assert result.param_types["v"].encryption.scheme is EncryptionScheme.DETERMINISTIC

    def test_plaintext_query_needs_no_enclave(self):
        result = run("SELECT * FROM T WHERE plain = @p AND id = 3")
        assert not result.uses_enclave


class TestRejections:
    def test_rnd_without_enclave_rejects_equality(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT * FROM T WHERE value = @v", enclave=False)

    def test_det_rejects_range(self):
        with pytest.raises(TypeDeductionError):
            run(
                "SELECT * FROM T WHERE value < @v",
                scheme=EncryptionScheme.DETERMINISTIC,
                enclave=False,
            )

    def test_det_rejects_like(self):
        with pytest.raises(TypeDeductionError):
            run(
                "SELECT * FROM T WHERE name LIKE @p",
                scheme=EncryptionScheme.DETERMINISTIC,
                enclave=False,
            )

    def test_encrypted_vs_literal_rejected(self):
        # Literals cannot be transparently encrypted — parameterize!
        with pytest.raises(TypeDeductionError):
            run("SELECT * FROM T WHERE value = 5")

    def test_cross_cek_comparison_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT * FROM T WHERE value = other")

    def test_encrypted_vs_plain_column_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT * FROM T WHERE value = plain")

    def test_arithmetic_on_encrypted_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT * FROM T WHERE value + 1 = @v")

    def test_order_by_encrypted_rejected(self):
        # The AEv2 restriction that forced the paper's TPC-C modification.
        with pytest.raises(TypeDeductionError):
            run("SELECT name FROM T ORDER BY name")

    def test_sum_on_encrypted_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT SUM(value) FROM T")

    def test_min_on_encrypted_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("SELECT MIN(value) FROM T")


class TestStatementKinds:
    def test_insert_params_inherit_column_types(self):
        result = run("INSERT INTO T (id, value) VALUES (@a, @b)")
        assert result.param_types["a"].encryption is None
        assert result.param_types["b"].encryption.cek_name == "CEK"

    def test_insert_literal_into_encrypted_rejected(self):
        with pytest.raises(TypeDeductionError):
            run("INSERT INTO T (value) VALUES (42)")

    def test_update_assignment_and_where(self):
        result = run("UPDATE T SET value = @new WHERE value = @old")
        assert result.param_types["new"].encryption is not None
        assert result.param_types["old"].encryption is not None
        assert result.uses_enclave

    def test_delete_where(self):
        result = run("DELETE FROM T WHERE name = @n")
        assert result.param_types["n"].encryption is not None

    def test_between_unifies_all_three(self):
        result = run("SELECT * FROM T WHERE value BETWEEN @lo AND @hi")
        assert result.param_types["lo"].encryption.cek_name == "CEK"
        assert result.param_types["hi"].encryption.cek_name == "CEK"

    def test_in_list_unifies(self):
        result = run("SELECT * FROM T WHERE value IN (@a, @b)")
        assert result.param_types["a"].encryption is not None
        assert result.param_types["b"].encryption is not None

    def test_count_star_is_fine(self):
        result = run("SELECT COUNT(*) FROM T")
        assert not result.uses_enclave

    def test_projection_of_encrypted_is_fine(self):
        # RND columns may always be fetched (SELECT clause only).
        result = run("SELECT name, value FROM T", enclave=False)
        assert not result.uses_enclave

    def test_group_by_det_allowed(self):
        result = run(
            "SELECT name, COUNT(*) FROM T GROUP BY name",
            scheme=EncryptionScheme.DETERMINISTIC,
            enclave=False,
        )
        assert not result.uses_enclave

    def test_is_null_on_encrypted_allowed(self):
        # Nullness is not hidden by encryption.
        result = run("SELECT * FROM T WHERE value IS NULL", enclave=False)
        assert not result.uses_enclave
