"""The executor + planner through the server session (plaintext paths)."""

import pytest

from repro.errors import BindError, ExecutionError, TypeDeductionError
from repro.sqlengine.server import SqlServer


@pytest.fixture()
def session(plain_server):
    s = plain_server.connect()
    s.execute(
        "CREATE TABLE emp (id int NOT NULL, name varchar(30), dept int, "
        "salary float, PRIMARY KEY (id))"
    )
    s.execute("CREATE TABLE dept (did int NOT NULL, dname varchar(20), PRIMARY KEY (did))")
    for did, dname in [(1, "eng"), (2, "sales"), (3, "empty")]:
        s.execute("INSERT INTO dept (did, dname) VALUES (@d, @n)", {"d": did, "n": dname})
    rows = [
        (1, "ada", 1, 120.0),
        (2, "bob", 1, 95.0),
        (3, "cal", 2, 80.0),
        (4, "dee", 2, 110.0),
        (5, "eve", 1, None),
    ]
    for r in rows:
        s.execute(
            "INSERT INTO emp (id, name, dept, salary) VALUES (@i, @n, @d, @s)",
            {"i": r[0], "n": r[1], "d": r[2], "s": r[3]},
        )
    return s


class TestSelect:
    def test_select_star(self, session):
        r = session.execute("SELECT * FROM emp WHERE id = @i", {"i": 3})
        assert r.rows == [(3, "cal", 2, 80.0)]
        assert [c.name for c in r.columns] == ["id", "name", "dept", "salary"]

    def test_projection(self, session):
        r = session.execute("SELECT name FROM emp WHERE id = 1", {})
        assert r.rows == [("ada",)]

    def test_computed_projection(self, session):
        r = session.execute("SELECT salary * 2 FROM emp WHERE id = 1", {})
        assert r.rows == [(240.0,)]

    def test_range_predicate(self, session):
        r = session.execute("SELECT id FROM emp WHERE salary >= @s", {"s": 100.0})
        assert sorted(x[0] for x in r.rows) == [1, 4]

    def test_null_never_matches(self, session):
        r = session.execute("SELECT id FROM emp WHERE salary > 0", {})
        assert 5 not in [x[0] for x in r.rows]

    def test_is_null(self, session):
        r = session.execute("SELECT id FROM emp WHERE salary IS NULL", {})
        assert r.rows == [(5,)]

    def test_like(self, session):
        r = session.execute("SELECT id FROM emp WHERE name LIKE @p", {"p": "%e"})
        assert sorted(x[0] for x in r.rows) == [4, 5]

    def test_between(self, session):
        r = session.execute("SELECT id FROM emp WHERE salary BETWEEN 90 AND 115", {})
        assert sorted(x[0] for x in r.rows) == [2, 4]

    def test_in_list(self, session):
        r = session.execute("SELECT id FROM emp WHERE id IN (1, 3, 99)", {})
        assert sorted(x[0] for x in r.rows) == [1, 3]

    def test_or_and_not(self, session):
        r = session.execute(
            "SELECT id FROM emp WHERE (dept = 1 OR dept = 2) AND NOT name = 'bob'", {}
        )
        assert sorted(x[0] for x in r.rows) == [1, 3, 4, 5]

    def test_order_by(self, session):
        r = session.execute("SELECT name, salary FROM emp ORDER BY salary DESC", {})
        assert [x[0] for x in r.rows] == ["ada", "dee", "bob", "cal", "eve"]  # NULL last in DESC

    def test_order_by_asc_nulls_first(self, session):
        r = session.execute("SELECT name, salary FROM emp ORDER BY salary", {})
        assert r.rows[0][0] == "eve"

    def test_limit(self, session):
        r = session.execute("SELECT id FROM emp ORDER BY id LIMIT 2", {})
        assert [x[0] for x in r.rows] == [1, 2]

    def test_distinct(self, session):
        r = session.execute("SELECT DISTINCT dept FROM emp", {})
        assert sorted(x[0] for x in r.rows) == [1, 2]

    def test_missing_param_rejected(self, session):
        with pytest.raises(ExecutionError, match="parameter"):
            session.execute("SELECT id FROM emp WHERE id = @i", {})

    def test_unknown_column_rejected(self, session):
        with pytest.raises(BindError):
            session.execute("SELECT nope FROM emp", {})


class TestAggregation:
    def test_count_star(self, session):
        r = session.execute("SELECT COUNT(*) FROM emp", {})
        assert r.rows == [(5,)]

    def test_count_column_skips_nulls(self, session):
        r = session.execute("SELECT COUNT(salary) FROM emp", {})
        assert r.rows == [(4,)]

    def test_group_by_with_aggregates(self, session):
        r = session.execute(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total FROM emp GROUP BY dept", {}
        )
        by_dept = {row[0]: (row[1], row[2]) for row in r.rows}
        assert by_dept[1] == (3, 215.0)
        assert by_dept[2] == (2, 190.0)

    def test_min_max_avg(self, session):
        r = session.execute("SELECT MIN(salary), MAX(salary), AVG(salary) FROM emp", {})
        low, high, avg = r.rows[0]
        assert (low, high) == (80.0, 120.0)
        assert abs(avg - 101.25) < 1e-9

    def test_empty_group_aggregates(self, session):
        r = session.execute("SELECT COUNT(*) FROM emp WHERE id > 100", {})
        assert r.rows == [(0,)]

    def test_sum_over_empty_is_null(self, session):
        r = session.execute("SELECT SUM(salary) FROM emp WHERE id > 100", {})
        assert r.rows == [(None,)]

    def test_non_grouped_item_rejected(self, session):
        with pytest.raises(BindError):
            session.execute("SELECT name, COUNT(*) FROM emp GROUP BY dept", {})

    def test_group_by_order_by(self, session):
        r = session.execute(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY dept", {}
        )
        assert [row[0] for row in r.rows] == [1, 2]


class TestJoins:
    def test_hash_join(self, session):
        r = session.execute(
            "SELECT name, dname FROM emp JOIN dept ON dept = did WHERE salary > 100", {}
        )
        assert sorted(r.rows) == [("ada", "eng"), ("dee", "sales")]

    def test_join_preserves_all_matches(self, session):
        r = session.execute("SELECT name, dname FROM emp JOIN dept ON dept = did", {})
        assert len(r.rows) == 5

    def test_empty_dept_joins_nothing(self, session):
        r = session.execute(
            "SELECT name FROM emp JOIN dept ON dept = did WHERE dname = 'empty'", {}
        )
        assert r.rows == []

    def test_qualified_names(self, session):
        r = session.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.did WHERE d.dname = 'eng'",
            {},
        )
        assert sorted(x[0] for x in r.rows) == ["ada", "bob", "eve"]


class TestDml:
    def test_update(self, session):
        session.execute("UPDATE emp SET salary = @s WHERE id = @i", {"s": 999.0, "i": 2})
        r = session.execute("SELECT salary FROM emp WHERE id = 2", {})
        assert r.rows == [(999.0,)]

    def test_update_rowcount(self, session):
        r = session.execute("UPDATE emp SET dept = 9 WHERE dept = 1", {})
        assert r.rowcount == 3

    def test_delete(self, session):
        r = session.execute("DELETE FROM emp WHERE dept = @d", {"d": 2})
        assert r.rowcount == 2
        r = session.execute("SELECT COUNT(*) FROM emp", {})
        assert r.rows == [(3,)]

    def test_update_expression(self, session):
        session.execute("UPDATE emp SET salary = salary + 10 WHERE id = 1", {})
        r = session.execute("SELECT salary FROM emp WHERE id = 1", {})
        assert r.rows == [(130.0,)]

    def test_transaction_rollback(self, session):
        session.execute("BEGIN TRANSACTION")
        session.execute("DELETE FROM emp", {})
        session.execute("ROLLBACK")
        r = session.execute("SELECT COUNT(*) FROM emp", {})
        assert r.rows == [(5,)]

    def test_transaction_commit(self, session):
        session.execute("BEGIN TRANSACTION")
        session.execute("DELETE FROM emp WHERE id = 1", {})
        session.execute("COMMIT")
        r = session.execute("SELECT COUNT(*) FROM emp", {})
        assert r.rows == [(4,)]


class TestPlanner:
    def test_pk_seek_chosen(self, session):
        r = session.execute("SELECT * FROM emp WHERE id = @i", {"i": 1})
        assert "IndexSeek(pk_emp)" in r.plan_info

    def test_scan_when_no_index(self, session):
        r = session.execute("SELECT * FROM emp WHERE salary = 80.0", {})
        assert "TableScan" in r.plan_info

    def test_secondary_index_range(self, session):
        session.execute("CREATE NONCLUSTERED INDEX ix_sal ON emp (salary)")
        r = session.execute("SELECT id FROM emp WHERE salary > @s", {"s": 100.0})
        assert "IndexRangeScan(ix_sal)" in r.plan_info
        assert sorted(x[0] for x in r.rows) == [1, 4]

    def test_composite_prefix(self, session):
        session.execute("CREATE NONCLUSTERED INDEX ix_ds ON emp (dept, salary)")
        r = session.execute(
            "SELECT id FROM emp WHERE dept = @d AND salary >= @s", {"d": 1, "s": 100.0}
        )
        assert "ix_ds" in r.plan_info
        assert sorted(x[0] for x in r.rows) == [1]
