"""SQL types with encryption attributes."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.errors import SqlError
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType, int_type, varchar


class TestSqlType:
    def test_normalizes_case(self):
        assert SqlType("int").base == "INT"

    def test_unknown_base_rejected(self):
        with pytest.raises(SqlError):
            SqlType("GEOGRAPHY")

    def test_length_only_for_string_types(self):
        SqlType("VARCHAR", 10)
        SqlType("VARBINARY", 4)
        with pytest.raises(SqlError):
            SqlType("INT", 4)

    @pytest.mark.parametrize(
        "base,ok,bad",
        [
            ("INT", 5, "x"),
            ("BIGINT", 2**40, 1.5),
            ("FLOAT", 2.5, "x"),
            ("BIT", True, 1),
            ("VARBINARY", b"ab", "ab"),
        ],
    )
    def test_validation(self, base, ok, bad):
        t = SqlType(base)
        t.validate(ok)
        with pytest.raises(SqlError):
            t.validate(bad)

    def test_bool_not_an_int(self):
        with pytest.raises(SqlError):
            SqlType("INT").validate(True)

    def test_varchar_length_enforced(self):
        varchar(3).validate("abc")
        with pytest.raises(SqlError):
            varchar(3).validate("abcd")

    def test_null_always_valid(self):
        SqlType("INT").validate(None)

    def test_str(self):
        assert str(SqlType("VARCHAR", 10)) == "VARCHAR(10)"
        assert str(int_type()) == "INT"


class TestColumnType:
    def test_plaintext(self):
        ct = ColumnType(int_type())
        assert not ct.is_encrypted
        assert str(ct) == "INT"

    def test_encrypted_rendering(self):
        info = EncryptionInfo(
            scheme=EncryptionScheme.RANDOMIZED, cek_name="K", enclave_enabled=True
        )
        ct = ColumnType(int_type(), info)
        assert ct.is_encrypted
        assert "RND" in str(ct) and "enclave" in str(ct)

    def test_encryption_info_equality(self):
        a = EncryptionInfo(EncryptionScheme.DETERMINISTIC, "K", False)
        b = EncryptionInfo(EncryptionScheme.DETERMINISTIC, "K", False)
        c = EncryptionInfo(EncryptionScheme.DETERMINISTIC, "K2", False)
        assert a == b and a != c
