"""Edge cases across the engine surface."""

import pytest

from repro.errors import BindError, ExecutionError, ParseError, SqlError
from repro.sqlengine.server import SqlServer
from tests.conftest import ALGO, make_encrypted_table


@pytest.fixture()
def session(plain_server):
    s = plain_server.connect()
    s.execute("CREATE TABLE t (a int NOT NULL, b varchar(10), PRIMARY KEY (a))")
    return s


class TestEmptyAndNull:
    def test_select_from_empty_table(self, session):
        assert session.execute("SELECT * FROM t", {}).rows == []

    def test_aggregate_over_empty(self, session):
        r = session.execute("SELECT COUNT(*), SUM(a), MIN(a) FROM t", {})
        assert r.rows == [(0, None, None)]

    def test_update_delete_empty(self, session):
        assert session.execute("UPDATE t SET b = 'x'", {}).rowcount == 0
        assert session.execute("DELETE FROM t", {}).rowcount == 0

    def test_insert_null_into_nullable(self, session):
        session.execute("INSERT INTO t (a, b) VALUES (@a, @b)", {"a": 1, "b": None})
        r = session.execute("SELECT b FROM t WHERE a = 1", {})
        assert r.rows == [(None,)]

    def test_null_param_in_predicate_matches_nothing(self, session):
        session.execute("INSERT INTO t (a, b) VALUES (1, NULL), (2, 'x')")
        r = session.execute("SELECT a FROM t WHERE b = @b", {"b": None})
        assert r.rows == []  # NULL = NULL is UNKNOWN


class TestStatementEdges:
    def test_multi_row_insert_atomic_on_failure(self, session):
        session.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        with pytest.raises(Exception):
            # Second row violates the PK; the autocommit txn rolls back
            # the whole statement.
            session.execute("INSERT INTO t (a, b) VALUES (2, 'y'), (1, 'dup')")
        r = session.execute("SELECT a FROM t", {})
        assert sorted(x[0] for x in r.rows) == [1]

    def test_self_join_with_aliases(self, session):
        for a in (1, 2, 3):
            session.execute("INSERT INTO t (a, b) VALUES (@a, 'v')", {"a": a})
        r = session.execute(
            "SELECT l.a, r.a FROM t l JOIN t r ON l.a = r.a", {}
        )
        assert len(r.rows) == 3

    def test_select_expression_without_from(self, plain_server):
        r = plain_server.connect().execute("SELECT 1 + 2 AS x", {})
        assert r.rows == [(3,)]

    def test_case_insensitive_identifiers(self, session):
        session.execute("INSERT INTO T (A, B) VALUES (7, 'q')")
        r = session.execute("SELECT B FROM T WHERE A = 7", {})
        assert r.rows == [("q",)]

    def test_parse_error_reported(self, session):
        with pytest.raises(ParseError):
            session.execute("SELEKT * FROM t")

    def test_empty_in_list_is_parse_error(self, session):
        with pytest.raises(ParseError):
            session.execute("SELECT a FROM t WHERE a IN ()")

    def test_limit_zero(self, session):
        session.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        r = session.execute("SELECT a FROM t LIMIT 0", {})
        assert r.rows == []

    def test_nested_transaction_rejected(self, session):
        session.execute("BEGIN TRANSACTION")
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            session.execute("BEGIN TRANSACTION")
        session.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, session):
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            session.execute("COMMIT")


class TestLargeValues:
    def test_row_spanning_many_pages(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE big (k int NOT NULL, data varchar(4000), PRIMARY KEY (k))")
        payload = "z" * 3500
        for k in range(10):
            session.execute(
                "INSERT INTO big (k, data) VALUES (@k, @d)", {"k": k, "d": payload}
            )
        r = session.execute("SELECT COUNT(*) FROM big", {})
        assert r.rows == [(10,)]
        assert len(plain_server.engine.table("big").heap.page_ids) >= 5

    def test_growing_update_relocates(self, plain_server):
        session = plain_server.connect()
        session.execute("CREATE TABLE g (k int NOT NULL, d varchar(4000), PRIMARY KEY (k))")
        for k in range(4):
            session.execute("INSERT INTO g (k, d) VALUES (@k, 'tiny')", {"k": k})
        # Grow every row far past the original page's free space.
        session.execute("UPDATE g SET d = @d", {"d": "y" * 3000})
        r = session.execute("SELECT k FROM g WHERE d LIKE 'y%'", {})
        assert sorted(x[0] for x in r.rows) == [0, 1, 2, 3]
        # PK index still seeks correctly after relocation.
        r = session.execute("SELECT d FROM g WHERE k = @k", {"k": 2})
        assert r.rows[0][0].startswith("y")
        assert "IndexSeek" in r.plan_info


class TestEncryptedEdges:
    def test_delete_by_encrypted_predicate_with_index(self, ae_connection, server):
        make_encrypted_table(ae_connection, name="E")
        ae_connection.execute_ddl("CREATE NONCLUSTERED INDEX E_V ON E(value)")
        for i in range(8):
            ae_connection.execute(
                "INSERT INTO E (id, value) VALUES (@i, @v)", {"i": i, "v": i}
            )
        r = ae_connection.execute("DELETE FROM E WHERE value >= @v", {"v": 5})
        assert r.rowcount == 3
        r = ae_connection.execute("SELECT COUNT(*) FROM E", {})
        assert r.rows == [(5,)]

    def test_update_encrypted_value_itself(self, ae_connection):
        make_encrypted_table(ae_connection, name="U")
        ae_connection.execute("INSERT INTO U (id, value) VALUES (@i, @v)", {"i": 1, "v": 10})
        ae_connection.execute(
            "UPDATE U SET value = @new WHERE value = @old", {"new": 99, "old": 10}
        )
        r = ae_connection.execute("SELECT value FROM U WHERE id = @i", {"i": 1})
        assert r.rows == [(99,)]

    def test_count_star_on_encrypted_table_without_keys(self, server, registry,
                                                        enclave_cmk, enclave_cek):
        # A connection with no attestation policy can still run queries
        # that never touch encrypted values.
        from repro.client.driver import connect

        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        writer = connect(server, registry, attestation_policy=None)
        make_encrypted_table(writer, name="K")
        # (insert needs only driver-side encryption — no enclave)
        writer.execute("INSERT INTO K (id, value) VALUES (@i, @v)", {"i": 1, "v": 5})
        r = writer.execute("SELECT COUNT(*) FROM K", {})
        assert r.rows == [(1,)]
