"""Concurrency invariant stress: N threads of mixed TPC-C, audited at quiesce.

This is the serializability gate for the concurrent session layer. Real
client threads run the standard mix against one server (shared plan
cache, lock manager, buffer pool, worker pool), and after every thread
joins, :func:`repro.workloads.tpcc.invariants.check_invariants` audits
the quiesced database:

* money conservation (W_YTD / D_YTD deltas == Σ H_AMOUNT) — catches lost
  updates on the RMW balance columns;
* order-id allocation (D_NEXT_O_ID vs order count, no duplicate ids) —
  catches torn atomic increments;
* stock flow (Σ S_YTD == new order-line quantity) — catches partially
  applied NewOrders;
* index-vs-heap agreement — catches B-tree entries lost to concurrent
  splits or un-relocated rows.

Runs are seeded: each client's transaction stream is deterministic, only
the interleaving varies — and the invariants must hold for *every*
interleaving.
"""

from repro.workloads.tpcc import EncryptionMode, TpccConfig, build_system
from repro.workloads.tpcc.config import TRANSACTION_MIX
from repro.workloads.tpcc.driver import run_multi_client
from repro.workloads.tpcc.invariants import check_invariants

SCALE = dict(warehouses=2, districts_per_warehouse=2, customers_per_district=10, items=20)


def _stress(mode: EncryptionMode, n_clients: int, per_client: int, seed: int):
    system = build_system(
        TpccConfig(mode=mode, seed=seed, **SCALE),
        worker_threads=8,
        lock_timeout_s=0.15,
    )
    result = run_multi_client(
        system,
        n_clients=n_clients,
        transactions_per_client=per_client,
        seed=seed,
    )
    return system, result


class TestConcurrencyStress:
    def test_plaintext_invariants_hold_under_contention(self):
        system, result = _stress(
            EncryptionMode.PLAINTEXT, n_clients=8, per_client=15, seed=91
        )
        assert result.transactions >= 8 * 15 * 0.9  # retries may give up a few
        assert check_invariants(system) == []

    def test_det_invariants_hold_under_contention(self):
        system, result = _stress(
            EncryptionMode.DET, n_clients=4, per_client=8, seed=92
        )
        assert result.transactions > 0
        assert check_invariants(system) == []

    def test_single_stream_baseline_matches_oracle_counts(self):
        """The same seeded stream single-threaded also passes the audit —
        so a multi-threaded failure isolates to concurrency, not to the
        workload or checker."""
        system = build_system(
            TpccConfig(mode=EncryptionMode.PLAINTEXT, seed=91, **SCALE),
            worker_threads=0,
        )
        client = system.new_client(seed=91)
        client.run_mix(40, TRANSACTION_MIX)
        assert check_invariants(system) == []
