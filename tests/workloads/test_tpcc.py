"""TPC-C on the full stack, across all encryption configurations."""

import pytest

from repro.sqlengine.cells import Ciphertext
from repro.workloads.tpcc import (
    PII_COLUMNS,
    TRANSACTION_MIX,
    EncryptionMode,
    TpccConfig,
    build_system,
    c_last_name,
    nurand,
)

TINY = dict(warehouses=1, districts_per_warehouse=2, customers_per_district=12, items=20)


@pytest.fixture(scope="module")
def pt_system():
    return build_system(TpccConfig(mode=EncryptionMode.PLAINTEXT, **TINY))


@pytest.fixture(scope="module")
def rnd_system():
    return build_system(TpccConfig(mode=EncryptionMode.RND, **TINY))


@pytest.fixture(scope="module")
def det_system():
    return build_system(TpccConfig(mode=EncryptionMode.DET, **TINY))


class TestGenerator:
    def test_c_last_name_spec_rule(self):
        # Spec: syllables indexed by the three digits of the number.
        assert c_last_name(0) == "BARBARBAR"
        assert c_last_name(371) == "PRICALLYOUGHT"
        assert c_last_name(999) == "EINGEINGEING"
        assert c_last_name(123) == "OUGHTABLEPRI"

    def test_nurand_in_range(self):
        import random

        rng = random.Random(1)
        for __ in range(200):
            value = nurand(rng, 255, 1, 100)
            assert 1 <= value <= 100

    def test_population_counts(self, pt_system):
        server = pt_system.server
        counts = {
            name: sum(1 for __ in server.engine.scan(name))
            for name in ("WAREHOUSE", "DISTRICT", "CUSTOMER", "ITEM", "STOCK", "ORDERS")
        }
        assert counts["WAREHOUSE"] == 1
        assert counts["DISTRICT"] == 2
        assert counts["CUSTOMER"] == 24
        assert counts["ITEM"] == 20
        assert counts["STOCK"] == 20
        assert counts["ORDERS"] == 24

    def test_pii_columns_encrypted_under_rnd(self, rnd_system):
        schema = rnd_system.server.catalog.table("CUSTOMER")
        for column_name in PII_COLUMNS:
            enc = schema.column(column_name).column_type.encryption
            assert enc is not None and enc.enclave_enabled
        # Non-PII columns stay plaintext.
        assert schema.column("C_BALANCE").column_type.encryption is None

    def test_stored_pii_is_ciphertext(self, rnd_system):
        schema = rnd_system.server.catalog.table("CUSTOMER")
        slot = schema.column_index("C_LAST")
        for __, row in rnd_system.server.engine.scan("CUSTOMER"):
            assert isinstance(row[slot], Ciphertext)


class TestTransactions:
    @pytest.mark.parametrize(
        "kind", ["new_order", "payment", "order_status", "delivery", "stock_level"]
    )
    def test_each_type_runs_plaintext(self, pt_system, kind):
        pt_system.transactions.run_one(kind)

    @pytest.mark.parametrize(
        "kind", ["new_order", "payment", "order_status", "delivery", "stock_level"]
    )
    def test_each_type_runs_encrypted(self, rnd_system, kind):
        rnd_system.transactions.run_one(kind)

    def test_mix_runs_det(self, det_system):
        det_system.transactions.run_mix(10, TRANSACTION_MIX)
        assert det_system.transactions.counts.total >= 10 - det_system.transactions.counts.rollbacks

    def test_payment_by_last_name_uses_enclave_under_rnd(self, rnd_system):
        enclave = rnd_system.enclave
        txns = rnd_system.transactions
        before = enclave.counters.ecalls
        # Force the by-last-name path a few times.
        for __ in range(5):
            customer = txns._customer_by_last_name(
                rnd_system.connection, 1, 1, c_last_name(0)
            )
        assert enclave.counters.ecalls > before

    def test_det_mode_does_not_use_enclave(self, det_system):
        assert det_system.enclave is None

    def test_new_order_advances_district_counter(self, pt_system):
        conn = pt_system.connection
        before = conn.execute(
            "SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w AND D_ID = @d",
            {"w": 1, "d": 1},
        ).rows[0][0]
        counts_before = pt_system.transactions.counts.new_order
        rollbacks_before = pt_system.transactions.counts.rollbacks
        pt_system.transactions.new_order()
        after = conn.execute(
            "SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w AND D_ID = @d",
            {"w": 1, "d": 1},
        ).rows[0][0]
        # Either this district was picked (counter advanced) or another was;
        # in all cases the counter never goes backwards.
        assert after >= before

    def test_delivery_consumes_new_orders(self, pt_system):
        conn = pt_system.connection
        before = conn.execute("SELECT COUNT(*) FROM NEW_ORDER", {}).rows[0][0]
        pt_system.transactions.delivery()
        after = conn.execute("SELECT COUNT(*) FROM NEW_ORDER", {}).rows[0][0]
        assert after <= before


class TestEncryptedEquivalence:
    def test_same_last_name_lookup_results(self, pt_system, rnd_system):
        """The encrypted system returns the same customers as plaintext —
        transparency means identical application-visible semantics."""
        last = c_last_name(1)
        q = ("SELECT C_ID FROM CUSTOMER WHERE C_W_ID = @w AND C_D_ID = @d "
             "AND C_LAST = @l")
        params = {"w": 1, "d": 1, "l": last}
        pt_rows = sorted(pt_system.connection.execute(q, params).rows)
        rnd_rows = sorted(rnd_system.connection.execute(q, params).rows)
        assert pt_rows == rnd_rows and pt_rows

    def test_customer_nc1_index_exists_and_used(self, rnd_system):
        r = rnd_system.connection.execute(
            "SELECT C_ID FROM CUSTOMER WHERE C_W_ID = @w AND C_D_ID = @d AND C_LAST = @l",
            {"w": 1, "d": 1, "l": c_last_name(2)},
        )
        assert "CUSTOMER_NC1" in r.plan_info
