"""TPC-C under real concurrency: locking and shared state hold up."""

import pytest

from repro.workloads.tpcc import (
    EncryptionMode,
    TpccConfig,
    build_system,
    run_concurrent,
)

TINY = dict(warehouses=1, districts_per_warehouse=2, customers_per_district=10, items=15)


class TestConcurrentClients:
    def test_plaintext_concurrent_mix(self):
        system = build_system(TpccConfig(mode=EncryptionMode.PLAINTEXT, **TINY))
        elapsed, clients = run_concurrent(system, n_clients=4, transactions_per_client=8)
        total = sum(c.counts.total for c in clients)
        assert total >= 4 * 8 - sum(c.counts.rollbacks for c in clients)
        assert elapsed > 0

    def test_encrypted_concurrent_mix_shares_enclave(self):
        system = build_system(TpccConfig(mode=EncryptionMode.RND, **TINY))
        __, clients = run_concurrent(system, n_clients=3, transactions_per_client=6)
        # Each client attested its own session; the single enclave served all.
        assert system.enclave.counters.sessions_started >= 3
        assert sum(c.counts.total for c in clients) > 0

    def test_database_consistent_after_concurrency(self):
        system = build_system(TpccConfig(mode=EncryptionMode.PLAINTEXT, **TINY))
        run_concurrent(system, n_clients=4, transactions_per_client=6)
        conn = system.connection
        # District order counters never exceed the number of orders + initial.
        for d_id in (1, 2):
            next_o = conn.execute(
                "SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = 1 AND D_ID = @d",
                {"d": d_id},
            ).rows[0][0]
            orders = conn.execute(
                "SELECT COUNT(*) FROM ORDERS WHERE O_W_ID = 1 AND O_D_ID = @d",
                {"d": d_id},
            ).rows[0][0]
            # Every committed NewOrder bumped the counter and inserted one
            # order; rollbacks bump neither permanently.
            assert next_o == orders + 1
