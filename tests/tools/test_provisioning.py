"""Client-side tooling: provisioning, rotation, initial encryption."""

import pytest

from repro.client.driver import connect
from repro.crypto.aead import EncryptionScheme
from repro.errors import EnclaveError
from repro.tools.initial_encryption import client_side_initial_encryption
from repro.tools.provisioning import (
    provision_cek,
    provision_cmk,
    rotate_cek_in_place,
    rotate_cmk,
)
from tests.conftest import ALGO


@pytest.fixture()
def conn(server, registry, attestation_policy):
    return connect(server, registry, attestation_policy=attestation_policy)


@pytest.fixture()
def vault(registry):
    return registry.get("AZURE_KEY_VAULT_PROVIDER")


class TestProvisioning:
    def test_provision_cmk_populates_catalog(self, conn, vault, server):
        cmk = provision_cmk(conn, vault, "PCMK", "https://vault.azure.net/keys/p1")
        assert server.catalog.cmk("PCMK").key_path == cmk.key_path
        assert server.catalog.cmk("PCMK").allow_enclave_computations

    def test_provision_cek_material_stays_client_side(self, conn, vault, server):
        cmk = provision_cmk(conn, vault, "PCMK2", "https://vault.azure.net/keys/p2")
        material = provision_cek(conn, vault, cmk, "PCEK")
        stored = server.catalog.cek("PCEK")
        assert material not in stored.encrypted_values[0].encrypted_value
        assert conn.cek_cache.get("PCEK") == material

    def test_enclave_disabled_cmk(self, conn, vault, server):
        provision_cmk(
            conn, vault, "NoEnc", "https://vault.azure.net/keys/p3",
            allow_enclave_computations=False,
        )
        assert not server.catalog.cmk("NoEnc").allow_enclave_computations


class TestInPlaceDdl:
    @pytest.fixture()
    def loaded(self, conn, vault, server):
        cmk = provision_cmk(conn, vault, "ECMK", "https://vault.azure.net/keys/e1")
        provision_cek(conn, vault, cmk, "ECEK")
        conn.execute_ddl("CREATE TABLE d (k int PRIMARY KEY, v varchar(20))")
        for k in range(4):
            conn.execute("INSERT INTO d (k, v) VALUES (@k, @v)", {"k": k, "v": f"val-{k}"})
        return cmk

    def test_initial_encryption_in_place(self, conn, loaded, server, enclave):
        before = enclave.counters.cell_encrypts
        conn.execute_ddl(
            "ALTER TABLE d ALTER COLUMN v varchar(20) ENCRYPTED WITH ("
            f"COLUMN_ENCRYPTION_KEY = ECEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}')",
            authorize_enclave=True,
        )
        assert enclave.counters.cell_encrypts - before == 4
        from repro.sqlengine.cells import Ciphertext

        for __, row in server.engine.scan("d"):
            assert isinstance(row[1], Ciphertext)
        # Transparent querying continues.
        r = conn.execute("SELECT k FROM d WHERE v = @v", {"v": "val-2"})
        assert r.rows == [(2,)]

    def test_unauthorized_initial_encryption_refused(self, conn, loaded):
        with pytest.raises(EnclaveError):
            conn.execute_ddl(
                "ALTER TABLE d ALTER COLUMN v varchar(20) ENCRYPTED WITH ("
                f"COLUMN_ENCRYPTION_KEY = ECEK, ENCRYPTION_TYPE = Randomized, "
                f"ALGORITHM = '{ALGO}')",
                authorize_enclave=False,
            )

    def test_decryption_ddl(self, conn, loaded, server):
        conn.execute_ddl(
            "ALTER TABLE d ALTER COLUMN v varchar(20) ENCRYPTED WITH ("
            f"COLUMN_ENCRYPTION_KEY = ECEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}')",
            authorize_enclave=True,
        )
        conn.execute_ddl(
            "ALTER TABLE d ALTER COLUMN v varchar(20)", authorize_enclave=True
        )
        rows = {row[1] for __, row in server.engine.scan("d")}
        assert rows == {f"val-{k}" for k in range(4)}

    def test_cek_rotation_in_place(self, conn, loaded, vault, server, enclave):
        conn.execute_ddl(
            "ALTER TABLE d ALTER COLUMN v varchar(20) ENCRYPTED WITH ("
            f"COLUMN_ENCRYPTION_KEY = ECEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}')",
            authorize_enclave=True,
        )
        cmk = server.catalog.cmk("ECMK")
        provision_cek(conn, vault, cmk, "ECEK2")
        rotate_cek_in_place(conn, "d", "v", "varchar(20)", "ECEK2")
        column = server.catalog.table("d").column("v")
        assert column.column_type.encryption.cek_name == "ECEK2"
        r = conn.execute("SELECT k FROM d WHERE v = @v", {"v": "val-1"})
        assert r.rows == [(1,)]


class TestCmkRotation:
    def test_rotate_cmk_no_data_touch(self, conn, vault, server, enclave):
        old_cmk = provision_cmk(conn, vault, "R1", "https://vault.azure.net/keys/r1")
        provision_cek(conn, vault, old_cmk, "RCEK")
        new_cmk = provision_cmk(conn, vault, "R2", "https://vault.azure.net/keys/r2")
        decrypts = enclave.counters.cell_decrypts
        rotate_cmk(conn, vault, "RCEK", old_cmk=old_cmk, new_cmk=new_cmk)
        assert enclave.counters.cell_decrypts == decrypts  # zero data work
        assert server.catalog.cek("RCEK").cmk_names() == ["R2"]
        # CEK still unwraps (through the new CMK).
        conn.cek_cache.invalidate()
        metadata = server.fetch_cek_metadata("RCEK")
        assert conn._unwrap_cek(metadata)


class TestClientSideInitialEncryption:
    def test_aev1_roundtrip_path(self, conn, vault, server):
        cmk = provision_cmk(
            conn, vault, "V1CMK", "https://vault.azure.net/keys/v1",
            allow_enclave_computations=False,
        )
        material = provision_cek(conn, vault, cmk, "V1CEK")
        conn.execute_ddl("CREATE TABLE legacy (k int PRIMARY KEY, s varchar(10))")
        for k in range(6):
            conn.execute("INSERT INTO legacy (k, s) VALUES (@k, @s)", {"k": k, "s": f"s{k}"})
        count = client_side_initial_encryption(
            conn, "legacy", "s", "V1CEK", material, EncryptionScheme.DETERMINISTIC
        )
        assert count == 6
        r = conn.execute("SELECT k FROM legacy WHERE s = @s", {"s": "s3"})
        assert r.rows == [(3,)]

    def test_already_encrypted_rejected(self, conn, vault, server):
        from repro.errors import DriverError

        cmk = provision_cmk(
            conn, vault, "V1CMK2", "https://vault.azure.net/keys/v2",
            allow_enclave_computations=False,
        )
        material = provision_cek(conn, vault, cmk, "V1CEK2")
        conn.execute_ddl("CREATE TABLE legacy2 (k int PRIMARY KEY, s varchar(10))")
        client_side_initial_encryption(
            conn, "legacy2", "s", "V1CEK2", material, EncryptionScheme.DETERMINISTIC
        )
        with pytest.raises(DriverError):
            client_side_initial_encryption(
                conn, "legacy2", "s", "V1CEK2", material, EncryptionScheme.DETERMINISTIC
            )
