"""Static security validation of enclave programs (Section 4.4.1)."""

import pytest

from repro.crypto.aead import EncryptionScheme
from repro.enclave.validate import validate_program
from repro.errors import EnclaveError
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.types import EncryptionInfo

ENC = EncryptionInfo(scheme=EncryptionScheme.RANDOMIZED, cek_name="K", enclave_enabled=True)
ENC2 = EncryptionInfo(scheme=EncryptionScheme.RANDOMIZED, cek_name="K2", enclave_enabled=True)
INSTALLED = frozenset({"K", "K2"})


def program(*instructions) -> StackProgram:
    return StackProgram(list(instructions))


class TestAccepted:
    def test_encrypted_comparison(self):
        used = validate_program(
            program(
                Instruction(Opcode.GET_DATA, (0, ENC)),
                Instruction(Opcode.GET_DATA, (1, ENC)),
                Instruction(Opcode.COMP, "<"),
                Instruction(Opcode.SET_DATA, (0, None)),
            ),
            INSTALLED,
        )
        assert used == {"K"}

    def test_plaintext_only_program(self):
        used = validate_program(
            program(
                Instruction(Opcode.PUSH_CONST, 1),
                Instruction(Opcode.PUSH_CONST, 2),
                Instruction(Opcode.COMP, "="),
                Instruction(Opcode.SET_DATA, (0, None)),
            ),
            INSTALLED,
        )
        assert used == set()

    def test_like_on_same_cek(self):
        validate_program(
            program(
                Instruction(Opcode.GET_DATA, (0, ENC)),
                Instruction(Opcode.GET_DATA, (1, ENC)),
                Instruction(Opcode.LIKE),
                Instruction(Opcode.SET_DATA, (0, None)),
            ),
            INSTALLED,
        )

    def test_boolean_combination_of_results(self):
        validate_program(
            program(
                Instruction(Opcode.GET_DATA, (0, ENC)),
                Instruction(Opcode.GET_DATA, (1, ENC)),
                Instruction(Opcode.COMP, "="),
                Instruction(Opcode.NOT),
                Instruction(Opcode.SET_DATA, (0, None)),
            ),
            INSTALLED,
        )


class TestRejected:
    def test_comparison_oracle_rejected(self):
        # Host plaintext vs decrypted column = a comparison oracle.
        with pytest.raises(EnclaveError, match="oracle"):
            validate_program(
                program(
                    Instruction(Opcode.GET_DATA, (0, ENC)),
                    Instruction(Opcode.PUSH_CONST, 42),
                    Instruction(Opcode.COMP, "<"),
                    Instruction(Opcode.SET_DATA, (0, None)),
                ),
                INSTALLED,
            )

    def test_cross_cek_comparison_rejected(self):
        with pytest.raises(EnclaveError, match="different CEKs"):
            validate_program(
                program(
                    Instruction(Opcode.GET_DATA, (0, ENC)),
                    Instruction(Opcode.GET_DATA, (1, ENC2)),
                    Instruction(Opcode.COMP, "="),
                    Instruction(Opcode.SET_DATA, (0, None)),
                ),
                INSTALLED,
            )

    def test_uninstalled_cek_rejected(self):
        missing = EncryptionInfo(
            scheme=EncryptionScheme.RANDOMIZED, cek_name="GHOST", enclave_enabled=True
        )
        with pytest.raises(EnclaveError, match="not installed"):
            validate_program(
                program(Instruction(Opcode.GET_DATA, (0, missing))),
                INSTALLED,
            )

    def test_arithmetic_on_decrypted_rejected(self):
        with pytest.raises(EnclaveError, match="arithmetic"):
            validate_program(
                program(
                    Instruction(Opcode.GET_DATA, (0, ENC)),
                    Instruction(Opcode.GET_DATA, (1, ENC)),
                    Instruction(Opcode.ARITH, "+"),
                ),
                INSTALLED,
            )

    def test_nested_tm_eval_rejected(self):
        with pytest.raises(EnclaveError, match="nested"):
            validate_program(
                program(Instruction(Opcode.TM_EVAL, (b"", 0))),
                INSTALLED,
            )

    def test_stack_underflow_rejected(self):
        with pytest.raises(EnclaveError, match="underflow"):
            validate_program(program(Instruction(Opcode.COMP, "=")), INSTALLED)

    def test_encrypted_output_cek_must_be_installed(self):
        missing = EncryptionInfo(
            scheme=EncryptionScheme.RANDOMIZED, cek_name="GHOST", enclave_enabled=True
        )
        with pytest.raises(EnclaveError, match="not installed"):
            validate_program(
                program(
                    Instruction(Opcode.PUSH_CONST, 1),
                    Instruction(Opcode.SET_DATA, (0, missing)),
                ),
                INSTALLED,
            )
