"""The sealed CEK-package channel between driver and enclave."""

import pytest

from repro.enclave.channel import (
    CekPackage,
    SealedPackage,
    open_package,
    seal_package,
    sign_query_authorization,
)
from repro.errors import EnclaveError, IntegrityError, ReplayError
from repro.faults import DuplicateMessage, OnNth, get_fault_registry
from repro.obs.metrics import get_registry
from tests.conftest import make_encrypted_table

SECRET = bytes(range(32))


class TestPackageSerialization:
    def test_roundtrip(self):
        package = CekPackage(
            nonce=7,
            ceks=(("CEK1", bytes(32)), ("CEK2", bytes([1]) * 32)),
            authorized_query_hashes=(bytes(32),),
        )
        assert CekPackage.deserialize(package.serialize()) == package

    def test_empty_package(self):
        package = CekPackage(nonce=0)
        assert CekPackage.deserialize(package.serialize()) == package

    def test_bad_hash_length_rejected(self):
        with pytest.raises(EnclaveError):
            CekPackage(nonce=0, authorized_query_hashes=(b"short",)).serialize()

    def test_trailing_bytes_rejected(self):
        blob = CekPackage(nonce=0).serialize() + b"x"
        with pytest.raises(EnclaveError):
            CekPackage.deserialize(blob)

    def test_truncated_rejected(self):
        with pytest.raises(EnclaveError):
            CekPackage.deserialize(b"\x00\x01")


class TestSealing:
    def test_seal_open_roundtrip(self):
        package = CekPackage(nonce=3, ceks=(("K", bytes(32)),))
        sealed = seal_package(SECRET, package)
        assert open_package(SECRET, sealed) == package

    def test_wrong_secret_rejected(self):
        sealed = seal_package(SECRET, CekPackage(nonce=1))
        with pytest.raises(IntegrityError):
            open_package(bytes(32), sealed)

    def test_sealed_blob_hides_key_material(self):
        material = bytes(range(32))
        sealed = seal_package(SECRET, CekPackage(nonce=1, ceks=(("K", material),)))
        assert material not in sealed.blob

    def test_tampered_blob_rejected(self):
        sealed = seal_package(SECRET, CekPackage(nonce=1))
        tampered = SealedPackage(blob=sealed.blob[:-1] + bytes([sealed.blob[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            open_package(SECRET, tampered)

    def test_sealing_is_randomized(self):
        package = CekPackage(nonce=1)
        assert seal_package(SECRET, package).blob != seal_package(SECRET, package).blob


class TestQueryAuthorization:
    def test_deterministic_per_secret(self):
        digest = bytes(32)
        assert sign_query_authorization(SECRET, digest) == sign_query_authorization(SECRET, digest)
        assert sign_query_authorization(SECRET, digest) != sign_query_authorization(bytes(32), digest)


class TestChannelReplayInjection:
    """Message duplication on the wire, injected at the driver's
    ``enclave.channel.send`` fault site. The enclave's nonce range
    tracker (Section 4.2) must reject the second delivery; the driver
    treats the rejection as success, and the workload is unaffected."""

    @pytest.fixture(autouse=True)
    def _disarm(self):
        get_fault_registry().disarm_all()
        yield
        get_fault_registry().disarm_all()

    def test_duplicated_package_is_rejected_by_nonce_tracking(self, ae_connection):
        baseline = get_registry().value("enclave.replays_rejected")
        armed = get_fault_registry().arm(
            "enclave.channel.send", OnNth(1), DuplicateMessage()
        )
        try:
            make_encrypted_table(ae_connection)
            ae_connection.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 5}
            )
            result = ae_connection.execute(
                "SELECT id, value FROM T WHERE value < @m", {"m": 10}
            )
        finally:
            get_fault_registry().disarm(armed)
        assert result.rows == [(1, 5)]
        # Exactly one duplicated delivery, exactly one rejection.
        assert get_registry().value("enclave.replays_rejected") - baseline == 1

    def test_raw_replay_of_sealed_blob_is_rejected(self, ae_connection):
        """An adversary replaying the captured sealed blob (no fault
        machinery involved) is also stopped by the same nonce tracking."""
        make_encrypted_table(ae_connection)
        ae_connection.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 5}
        )
        ae_connection.execute("SELECT id FROM T WHERE value < @m", {"m": 10})
        session = ae_connection._attestation
        assert session is not None
        # Re-seal a package bearing an already-consumed nonce.
        replayed = seal_package(session.shared_secret, CekPackage(nonce=0))
        with pytest.raises(ReplayError):
            ae_connection.server.forward_enclave_package(
                session.enclave_session_id, replayed
            )
