"""The sealed CEK-package channel between driver and enclave."""

import pytest

from repro.enclave.channel import (
    CekPackage,
    SealedPackage,
    open_package,
    seal_package,
    sign_query_authorization,
)
from repro.errors import EnclaveError, IntegrityError

SECRET = bytes(range(32))


class TestPackageSerialization:
    def test_roundtrip(self):
        package = CekPackage(
            nonce=7,
            ceks=(("CEK1", bytes(32)), ("CEK2", bytes([1]) * 32)),
            authorized_query_hashes=(bytes(32),),
        )
        assert CekPackage.deserialize(package.serialize()) == package

    def test_empty_package(self):
        package = CekPackage(nonce=0)
        assert CekPackage.deserialize(package.serialize()) == package

    def test_bad_hash_length_rejected(self):
        with pytest.raises(EnclaveError):
            CekPackage(nonce=0, authorized_query_hashes=(b"short",)).serialize()

    def test_trailing_bytes_rejected(self):
        blob = CekPackage(nonce=0).serialize() + b"x"
        with pytest.raises(EnclaveError):
            CekPackage.deserialize(blob)

    def test_truncated_rejected(self):
        with pytest.raises(EnclaveError):
            CekPackage.deserialize(b"\x00\x01")


class TestSealing:
    def test_seal_open_roundtrip(self):
        package = CekPackage(nonce=3, ceks=(("K", bytes(32)),))
        sealed = seal_package(SECRET, package)
        assert open_package(SECRET, sealed) == package

    def test_wrong_secret_rejected(self):
        sealed = seal_package(SECRET, CekPackage(nonce=1))
        with pytest.raises(IntegrityError):
            open_package(bytes(32), sealed)

    def test_sealed_blob_hides_key_material(self):
        material = bytes(range(32))
        sealed = seal_package(SECRET, CekPackage(nonce=1, ceks=(("K", material),)))
        assert material not in sealed.blob

    def test_tampered_blob_rejected(self):
        sealed = seal_package(SECRET, CekPackage(nonce=1))
        tampered = SealedPackage(blob=sealed.blob[:-1] + bytes([sealed.blob[-1] ^ 1]))
        with pytest.raises(IntegrityError):
            open_package(SECRET, tampered)

    def test_sealing_is_randomized(self):
        package = CekPackage(nonce=1)
        assert seal_package(SECRET, package).blob != seal_package(SECRET, package).blob


class TestQueryAuthorization:
    def test_deterministic_per_secret(self):
        digest = bytes(32)
        assert sign_query_authorization(SECRET, digest) == sign_query_authorization(SECRET, digest)
        assert sign_query_authorization(SECRET, digest) != sign_query_authorization(bytes(32), digest)
