"""The enclave worker-queue optimization (Section 4.6)."""

import threading

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.crypto.dh import DiffieHellman
from repro.enclave.channel import CekPackage, seal_package
from repro.enclave.worker import CallMode, EnclaveCallGateway
from repro.errors import EnclaveError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import serialize_value

ENC = EncryptionInfo(
    scheme=EncryptionScheme.RANDOMIZED, cek_name="TestCEK", enclave_enabled=True
)


@pytest.fixture()
def ready_enclave(enclave, cek_material):
    client_dh = DiffieHellman()
    session_id, enclave_dh, __ = enclave.start_session(client_dh.public_key)
    secret = client_dh.shared_secret(enclave_dh)
    enclave.install_package(
        session_id, seal_package(secret, CekPackage(nonce=0, ceks=(("TestCEK", cek_material),)))
    )
    return enclave


def comparison_blob() -> bytes:
    return StackProgram([
        Instruction(Opcode.GET_DATA, (0, ENC)),
        Instruction(Opcode.GET_DATA, (1, ENC)),
        Instruction(Opcode.COMP, "<"),
        Instruction(Opcode.SET_DATA, (0, None)),
    ]).serialize()


def cell(material, value) -> Ciphertext:
    return Ciphertext(
        CellCipher(material).encrypt(serialize_value(value), EncryptionScheme.RANDOMIZED)
    )


class TestSynchronous:
    def test_sync_eval(self, ready_enclave, cek_material):
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        handle = gateway.register_program(comparison_blob())
        result = gateway.eval(handle, [cell(cek_material, 1), cell(cek_material, 2)])
        assert result == [True]

    def test_sync_charges_transition_per_call(self, ready_enclave, cek_material):
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        handle = gateway.register_program(comparison_blob())
        for __ in range(5):
            gateway.eval(handle, [cell(cek_material, 1), cell(cek_material, 2)])
        assert gateway.stats.boundary_transitions == 5
        assert gateway.stats.calls == 5


class TestQueued:
    def test_queued_eval(self, ready_enclave, cek_material):
        with EnclaveCallGateway(ready_enclave, mode=CallMode.QUEUED, n_threads=2) as gateway:
            handle = gateway.register_program(comparison_blob())
            result = gateway.eval(handle, [cell(cek_material, 3), cell(cek_material, 2)])
            assert result == [False]

    def test_hot_worker_amortizes_transitions(self, ready_enclave, cek_material):
        with EnclaveCallGateway(
            ready_enclave, mode=CallMode.QUEUED, n_threads=1, spin_duration_s=0.05
        ) as gateway:
            handle = gateway.register_program(comparison_blob())
            a, b = cell(cek_material, 1), cell(cek_material, 2)
            for __ in range(20):
                gateway.eval(handle, [a, b])
            # Back-to-back calls should mostly be picked up by the spinning
            # (hot) worker, far fewer transitions than calls.
            assert gateway.stats.boundary_transitions < gateway.stats.calls
            assert gateway.stats.spin_hits > 0

    def test_errors_propagate_to_submitter(self, ready_enclave):
        with EnclaveCallGateway(ready_enclave, mode=CallMode.QUEUED, n_threads=1) as gateway:
            with pytest.raises(EnclaveError):
                gateway.eval(987654, [])

    def test_concurrent_submitters(self, ready_enclave, cek_material):
        with EnclaveCallGateway(ready_enclave, mode=CallMode.QUEUED, n_threads=4) as gateway:
            handle = gateway.register_program(comparison_blob())
            a, b = cell(cek_material, 1), cell(cek_material, 2)
            results = []
            lock = threading.Lock()

            def worker():
                for __ in range(10):
                    r = gateway.eval(handle, [a, b])
                    with lock:
                        results.append(r[0])

            threads = [threading.Thread(target=worker) for __ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == [True] * 40

    def test_needs_at_least_one_thread(self, ready_enclave):
        with pytest.raises(EnclaveError):
            EnclaveCallGateway(ready_enclave, n_threads=0)


class TestBatchedCalls:
    def test_sync_batch_one_transition_per_chunk(self, ready_enclave, cek_material):
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        handle = gateway.register_program(comparison_blob())
        rows = [
            [cell(cek_material, i), cell(cek_material, 5)] for i in range(10)
        ]
        results = gateway.eval_batch(handle, rows)
        assert [r[0] for r in results] == [i < 5 for i in range(10)]
        # 10 rows, one call, one transition.
        assert gateway.stats.calls == 1
        assert gateway.stats.boundary_transitions == 1

    def test_queued_batch_one_item_per_chunk(self, ready_enclave, cek_material):
        with EnclaveCallGateway(
            ready_enclave, mode=CallMode.QUEUED, n_threads=1, spin_duration_s=0.0
        ) as gateway:
            handle = gateway.register_program(comparison_blob())
            rows = [
                [cell(cek_material, i), cell(cek_material, 3)] for i in range(8)
            ]
            results = gateway.eval_batch(handle, rows)
            assert [r[0] for r in results] == [i < 3 for i in range(8)]
            # With spinning disabled every queue item is a wakeup + one
            # transition — the whole chunk was one item.
            assert gateway.stats.boundary_transitions == 1
            assert gateway.stats.calls == 1

    def test_batch_matches_row_at_a_time(self, ready_enclave, cek_material):
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        handle = gateway.register_program(comparison_blob())
        rows = [
            [cell(cek_material, i), cell(cek_material, 4)] for i in range(9)
        ]
        assert gateway.eval_batch(handle, rows) == [
            gateway.eval(handle, row) for row in rows
        ]

    def test_empty_batch_is_free(self, ready_enclave):
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        before = gateway.stats.calls
        assert gateway.eval_batch(1, []) == []
        assert gateway.stats.calls == before

    def test_batch_size_histogram_observed(self, ready_enclave, cek_material):
        from repro.obs.metrics import get_registry

        histogram = get_registry().get("worker.batch_size")
        before = histogram.snapshot()
        gateway = EnclaveCallGateway(ready_enclave, mode=CallMode.SYNCHRONOUS)
        handle = gateway.register_program(comparison_blob())
        gateway.eval_batch(
            handle, [[cell(cek_material, 1), cell(cek_material, 2)]] * 6
        )
        gateway.eval(handle, [cell(cek_material, 1), cell(cek_material, 2)])
        after = histogram.snapshot()
        assert after["count"] - before["count"] == 2  # one batch, one single
        assert after["sum"] - before["sum"] == 7      # 6 rows + 1 row

    def test_queued_batch_errors_propagate(self, ready_enclave, cek_material):
        with EnclaveCallGateway(ready_enclave, mode=CallMode.QUEUED, n_threads=1) as gateway:
            with pytest.raises(EnclaveError):
                gateway.eval_batch(
                    987654, [[cell(cek_material, 1), cell(cek_material, 2)]]
                )
