"""Nonce replay protection with compact range encoding (Section 4.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enclave.nonce import NonceCounter, NonceRangeTracker
from repro.errors import ReplayError


class TestBasics:
    def test_fresh_nonces_accepted(self):
        tracker = NonceRangeTracker()
        for n in range(10):
            tracker.check_and_add(n)
        assert tracker.total_seen == 10

    def test_replay_rejected(self):
        tracker = NonceRangeTracker()
        tracker.check_and_add(5)
        with pytest.raises(ReplayError):
            tracker.check_and_add(5)

    def test_negative_rejected(self):
        with pytest.raises(ReplayError):
            NonceRangeTracker().check_and_add(-1)

    def test_membership(self):
        tracker = NonceRangeTracker()
        tracker.check_and_add(3)
        assert 3 in tracker
        assert 4 not in tracker


class TestCompactEncoding:
    def test_sequential_collapses_to_one_range(self):
        # The paper's example: nonces 0..100 encode as [0, 100].
        tracker = NonceRangeTracker()
        for n in range(101):
            tracker.check_and_add(n)
        assert tracker.ranges() == [(0, 100)]
        assert tracker.range_count == 1

    def test_gap_fill_merges_ranges(self):
        tracker = NonceRangeTracker()
        tracker.check_and_add(0)
        tracker.check_and_add(2)
        assert tracker.range_count == 2
        tracker.check_and_add(1)
        assert tracker.ranges() == [(0, 2)]

    def test_local_reordering_stays_compact(self):
        # The design rationale: multi-threaded clients deliver nonces
        # near-sequentially with local reordering; the encoding stays tiny.
        rng = random.Random(1)
        tracker = NonceRangeTracker()
        window: list[int] = []
        next_nonce = 0
        for __ in range(500):
            while len(window) < 8:
                window.append(next_nonce)
                next_nonce += 1
            tracker.check_and_add(window.pop(rng.randrange(len(window))))
        for n in window:
            tracker.check_and_add(n)
        assert tracker.total_seen == next_nonce
        assert tracker.range_count <= 8

    def test_extend_left_and_right(self):
        tracker = NonceRangeTracker()
        tracker.check_and_add(5)
        tracker.check_and_add(6)   # extend right
        tracker.check_and_add(4)   # extend left
        assert tracker.ranges() == [(4, 6)]

    def test_sparse_nonces_separate_ranges(self):
        tracker = NonceRangeTracker()
        for n in (0, 10, 20):
            tracker.check_and_add(n)
        assert tracker.ranges() == [(0, 0), (10, 10), (20, 20)]


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=300), unique=True, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_any_permutation_all_accepted_once(self, nonces):
        tracker = NonceRangeTracker()
        for n in nonces:
            tracker.check_and_add(n)
        assert tracker.total_seen == len(nonces)
        for n in nonces:
            with pytest.raises(ReplayError):
                tracker.check_and_add(n)

    @given(st.lists(st.integers(min_value=0, max_value=300), unique=True, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_ranges_are_disjoint_sorted_nonadjacent(self, nonces):
        tracker = NonceRangeTracker()
        for n in nonces:
            tracker.check_and_add(n)
        ranges = tracker.ranges()
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 + 1 < s2  # disjoint AND non-adjacent (merged otherwise)
        covered = set()
        for start, end in ranges:
            covered.update(range(start, end + 1))
        assert covered == set(nonces)


class TestCounter:
    def test_monotone(self):
        counter = NonceCounter()
        assert [counter.next() for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_custom_start(self):
        assert NonceCounter(start=10).next() == 10
