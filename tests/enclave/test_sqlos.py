"""The enclave SQL OS layer."""

import pytest

from repro.enclave.sqlos import SqlOs
from repro.errors import EnclaveError, KeysUnavailableError


class TestKeys:
    def test_install_and_fetch(self):
        sqlos = SqlOs()
        sqlos.install_key("K", bytes(32))
        assert sqlos.has_key("K")
        assert sqlos.cipher_for("K") is sqlos.cipher_for("K")
        assert sqlos.key_material("K") == bytes(32)

    def test_missing_key_raises_keys_unavailable(self):
        sqlos = SqlOs()
        with pytest.raises(KeysUnavailableError):
            sqlos.cipher_for("missing")
        with pytest.raises(KeysUnavailableError):
            sqlos.key_material("missing")

    def test_installed_keys_snapshot(self):
        sqlos = SqlOs()
        sqlos.install_key("A", bytes(32))
        sqlos.install_key("B", bytes([1]) * 32)
        assert sqlos.installed_keys() == frozenset({"A", "B"})


class TestMemory:
    def test_accounting(self):
        sqlos = SqlOs(memory_limit_bytes=100)
        sqlos.allocate(60)
        assert sqlos.memory_used == 60
        sqlos.free(20)
        assert sqlos.memory_used == 40

    def test_limit_enforced(self):
        sqlos = SqlOs(memory_limit_bytes=10)
        with pytest.raises(EnclaveError):
            sqlos.allocate(11)

    def test_free_never_negative(self):
        sqlos = SqlOs()
        sqlos.free(100)
        assert sqlos.memory_used == 0


class TestFaults:
    def test_fault_recording_is_coarse(self):
        # Faults carry kind + location only — no plaintext (Section 4.4.1).
        sqlos = SqlOs()
        sqlos.record_fault("access_violation", "Eval")
        assert len(sqlos.faults) == 1
        fault = sqlos.faults[0]
        assert fault.kind == "access_violation"
        assert not hasattr(fault, "plaintext")
