"""The enclave runtime: sessions, CEK install, eval, gated oracles."""

import pytest

from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.crypto.dh import DiffieHellman, public_key_bytes
from repro.crypto.rsa import verify_signature
from repro.enclave.channel import CekPackage, SealedPackage, seal_package
from repro.errors import EnclaveError, KeysUnavailableError, ReplayError
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.expression.program import Instruction, Opcode, StackProgram
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import serialize_value

ENC = EncryptionInfo(
    scheme=EncryptionScheme.RANDOMIZED, cek_name="TestCEK", enclave_enabled=True
)


@pytest.fixture()
def session(enclave, cek_material):
    """An enclave with an attested session and TestCEK installed."""
    client_dh = DiffieHellman()
    session_id, enclave_dh_public, __ = enclave.start_session(client_dh.public_key)
    secret = client_dh.shared_secret(enclave_dh_public)
    package = CekPackage(nonce=0, ceks=(("TestCEK", cek_material),))
    enclave.install_package(session_id, seal_package(secret, package))
    return session_id, secret


def rnd_cell(cek_material, value) -> Ciphertext:
    cipher = CellCipher(cek_material)
    return Ciphertext(cipher.encrypt(serialize_value(value), EncryptionScheme.RANDOMIZED))


class TestSession:
    def test_dh_binding_signature_valid(self, enclave):
        client_dh = DiffieHellman()
        __, enclave_dh_public, signature = enclave.start_session(client_dh.public_key)
        message = (
            b"AE-DH-BINDING\x00"
            + public_key_bytes(enclave_dh_public)
            + public_key_bytes(client_dh.public_key)
        )
        assert verify_signature(enclave.public_key, message, signature)

    def test_unknown_session_rejected(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.install_package(9999, SealedPackage(blob=b"x" * 100))

    def test_replayed_package_rejected(self, enclave, session, cek_material):
        session_id, secret = session
        package = CekPackage(nonce=0, ceks=(("TestCEK", cek_material),))
        with pytest.raises(ReplayError):
            enclave.install_package(session_id, seal_package(secret, package))

    def test_garbage_package_rejected(self, enclave, session):
        session_id, __ = session
        with pytest.raises(EnclaveError):
            enclave.install_package(session_id, SealedPackage(blob=b"\x01" + b"\x00" * 100))

    def test_report_reflects_binary(self, enclave, enclave_binary):
        report = enclave.measure()
        assert report.binary_hash == enclave_binary.binary_hash
        assert report.author_id == enclave_binary.author_id
        assert report.enclave_public_key_hash == enclave.public_key.fingerprint()


class TestEval:
    def _comparison_handle(self, enclave, op="<"):
        prog = StackProgram([
            Instruction(Opcode.GET_DATA, (0, ENC)),
            Instruction(Opcode.GET_DATA, (1, ENC)),
            Instruction(Opcode.COMP, op),
            Instruction(Opcode.SET_DATA, (0, None)),
        ])
        return enclave.register_program(prog.serialize())

    def test_comparison_result_in_clear(self, enclave, session, cek_material):
        handle = self._comparison_handle(enclave)
        a, b = rnd_cell(cek_material, 5), rnd_cell(cek_material, 9)
        assert enclave.eval(handle, [a, b]) == [True]
        assert enclave.eval(handle, [b, a]) == [False]

    def test_null_propagates(self, enclave, session, cek_material):
        handle = self._comparison_handle(enclave)
        assert enclave.eval(handle, [None, rnd_cell(cek_material, 1)]) == [None]

    def test_registration_idempotent(self, enclave, session):
        prog = StackProgram([
            Instruction(Opcode.GET_DATA, (0, ENC)),
            Instruction(Opcode.GET_DATA, (1, ENC)),
            Instruction(Opcode.COMP, "="),
            Instruction(Opcode.SET_DATA, (0, None)),
        ]).serialize()
        assert enclave.register_program(prog) == enclave.register_program(prog)

    def test_unknown_handle_rejected(self, enclave, session):
        with pytest.raises(EnclaveError):
            enclave.eval(424242, [])

    def test_registration_requires_installed_keys(self, enclave):
        # No session/keys installed on this fresh enclave.
        prog = StackProgram([
            Instruction(Opcode.GET_DATA, (0, ENC)),
            Instruction(Opcode.GET_DATA, (1, ENC)),
            Instruction(Opcode.COMP, "="),
            Instruction(Opcode.SET_DATA, (0, None)),
        ]).serialize()
        with pytest.raises(EnclaveError):
            enclave.register_program(prog)

    def test_counters_track_work(self, enclave, session, cek_material):
        handle = self._comparison_handle(enclave)
        before = enclave.counters.evals
        enclave.eval(handle, [rnd_cell(cek_material, 1), rnd_cell(cek_material, 2)])
        assert enclave.counters.evals == before + 1
        assert enclave.counters.cpu_seconds > 0


class TestCompare:
    def test_three_way(self, enclave, session, cek_material):
        a, b = rnd_cell(cek_material, 10), rnd_cell(cek_material, 20)
        assert enclave.compare("TestCEK", a, b) == -1
        assert enclave.compare("TestCEK", b, a) == 1
        assert enclave.compare("TestCEK", a, rnd_cell(cek_material, 10)) == 0

    def test_missing_key_raises_keys_unavailable(self, enclave, cek_material):
        a = rnd_cell(cek_material, 1)
        with pytest.raises(KeysUnavailableError):
            enclave.compare("TestCEK", a, a)


class TestGatedOracles:
    DDL = "ALTER TABLE T ALTER COLUMN v int ENCRYPTED WITH (...)"

    def _authorize(self, enclave, session, query_text):
        import hashlib

        session_id, secret = session
        package = CekPackage(
            nonce=1,
            authorized_query_hashes=(hashlib.sha256(query_text.encode()).digest(),),
        )
        enclave.install_package(session_id, seal_package(secret, package))

    def test_encrypt_requires_authorization(self, enclave, session):
        with pytest.raises(EnclaveError, match="refused"):
            enclave.encrypt_for_ddl(
                self.DDL, "TestCEK", serialize_value(1), EncryptionScheme.RANDOMIZED
            )

    def test_encrypt_after_authorization(self, enclave, session, cek_material):
        self._authorize(enclave, session, self.DDL)
        cell = enclave.encrypt_for_ddl(
            self.DDL, "TestCEK", serialize_value(7), EncryptionScheme.RANDOMIZED
        )
        assert CellCipher(cek_material).decrypt(cell.envelope) == serialize_value(7)

    def test_different_query_text_not_authorized(self, enclave, session):
        self._authorize(enclave, session, self.DDL)
        with pytest.raises(EnclaveError, match="refused"):
            enclave.encrypt_for_ddl(
                self.DDL + " ", "TestCEK", serialize_value(1), EncryptionScheme.RANDOMIZED
            )

    def test_recrypt_gated_and_works(self, enclave, session, cek_material):
        self._authorize(enclave, session, self.DDL)
        session_id, secret = session
        new_material = bytes([5]) * 32
        enclave.install_package(
            session_id,
            seal_package(secret, CekPackage(nonce=2, ceks=(("NewCEK", new_material),))),
        )
        old_cell = rnd_cell(cek_material, 99)
        new_cell = enclave.recrypt_for_ddl(
            self.DDL, "TestCEK", "NewCEK", old_cell, EncryptionScheme.RANDOMIZED
        )
        assert CellCipher(new_material).decrypt(new_cell.envelope) == serialize_value(99)

    def test_decrypt_gated(self, enclave, session, cek_material):
        cell = rnd_cell(cek_material, 3)
        with pytest.raises(EnclaveError, match="refused"):
            enclave.decrypt_for_ddl("some ddl", "TestCEK", cell)
        self._authorize(enclave, session, "some ddl")
        assert enclave.decrypt_for_ddl("some ddl", "TestCEK", cell) == serialize_value(3)
