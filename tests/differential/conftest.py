"""Paired stacks for the differential oracle suite.

Each pair is one Always Encrypted stack and one plaintext *oracle* server.
The oracle runs the same engine with no encryption anywhere: the AE
stack's decrypted answers must be indistinguishable from the oracle's —
encryption is supposed to be *transparent*, so any divergence (a row the
DET equality missed, an enclave range comparison that disagrees with
Python's, a LIKE that treats ciphertext bytes as text) is a bug by
construction.

Pairs are module-scoped: building the RND stack pays RSA + attestation
once, and hypothesis then drives hundreds of generated schemas/queries
against it using per-example table names (created and dropped per case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import Connection, connect
from repro.enclave.runtime import Enclave
from repro.sqlengine.server import SqlServer

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"


@dataclass
class DifferentialPair:
    """An AE stack and its plaintext oracle, plus naming/counting state."""

    label: str                      # "DET" | "RND"
    cek_name: str
    scheme: str                     # "Deterministic" | "Randomized"
    ae: Connection
    oracle: Connection
    cases: int = 0                  # generated cases executed (asserted >= 200)
    _table_seq: count = field(default_factory=count)

    @property
    def connections(self) -> tuple[Connection, Connection]:
        return (self.ae, self.oracle)

    def next_table_names(self) -> tuple[str, str]:
        """Fresh (T, U) table names, unique across hypothesis examples."""
        n = next(self._table_seq)
        return f"T{n}", f"U{n}"

    def encrypted_ddl(self, table: str) -> str:
        enc = (
            f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {self.cek_name}, "
            f"ENCRYPTION_TYPE = {self.scheme}, ALGORITHM = '{ALGO}')"
        )
        return (
            f"CREATE TABLE {table}(id int PRIMARY KEY, "
            f"s varchar(10) {enc}, n int {enc}, pub int)"
        )

    def plain_ddl(self, table: str) -> str:
        return (
            f"CREATE TABLE {table}(id int PRIMARY KEY, "
            f"s varchar(10), n int, pub int)"
        )

    def create_tables(self, *tables: str) -> None:
        for table in tables:
            self.ae.execute_ddl(self.encrypted_ddl(table))
            self.oracle.execute_ddl(self.plain_ddl(table))

    def drop_tables(self, *tables: str) -> None:
        for table in tables:
            for conn in self.connections:
                try:
                    conn.execute_ddl(f"DROP TABLE {table}")
                except Exception:
                    pass  # creation may have failed mid-example


def _oracle_connection(registry) -> Connection:
    server = SqlServer(lock_timeout_s=1.0)
    return connect(server, registry, column_encryption=False)


@pytest.fixture(scope="module")
def det_pair(registry, plain_cmk, plain_cek) -> DifferentialPair:
    """DET stack (enclave-disabled CEK, no enclave) vs plaintext oracle."""
    server = SqlServer(lock_timeout_s=1.0)
    server.catalog.create_cmk(plain_cmk)
    server.catalog.create_cek(plain_cek)
    return DifferentialPair(
        label="DET",
        cek_name=plain_cek.name,
        scheme="Deterministic",
        ae=connect(server, registry),
        oracle=_oracle_connection(registry),
    )


@pytest.fixture(scope="module")
def rnd_pair(
    registry, enclave_binary, enclave_cmk, enclave_cek
) -> DifferentialPair:
    """RND stack (enclave-enabled CEK, attested enclave) vs plaintext oracle."""
    host = HostMachine()
    hgs = HostGuardianService()
    hgs.register_host(host.boot_and_measure())
    server = SqlServer(
        enclave=Enclave(enclave_binary),
        host_machine=host,
        hgs=hgs,
        lock_timeout_s=1.0,
    )
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    policy = AttestationPolicy(
        trusted_author_ids=frozenset({enclave_binary.author_id})
    )
    return DifferentialPair(
        label="RND",
        cek_name=enclave_cek.name,
        scheme="Randomized",
        ae=connect(server, registry, attestation_policy=policy),
        oracle=_oracle_connection(registry),
    )
