"""Differential oracle suite: AE answers must equal plaintext answers.

Hypothesis generates small schemas, data sets, and query workloads —
point lookups, ranges, LIKE, IN, joins on encrypted equality, group-bys,
updates, deletes, inserts — and runs each against an Always Encrypted
stack and a plaintext oracle server. The decrypted AE results must be
*identical* (as multisets) to the oracle's at every step, and the full
table contents must agree after every mutation.

The op vocabulary is mode-aware, mirroring the paper's capability matrix:

* **DET** (enclave-disabled deterministic keys): equality only — point,
  IN, join, GROUP BY on the encrypted column; ranges/LIKE only on
  plaintext columns.
* **RND** (enclave-enabled randomized keys): point, range, BETWEEN,
  LIKE, IN, join via enclave expression evaluation; GROUP BY only on
  plaintext/DET columns (the server refuses it on RND).

``derandomize=True`` keeps CI deterministic; each example uses fresh
table names and drops them afterwards, so hundreds of generated cases
share one attested stack. The final test per mode asserts that at least
200 generated cases actually executed with zero divergences.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

SETTINGS = settings(
    max_examples=45,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

MIN_CASES = 200

# Small domains make collisions (join matches, group duplicates, multi-row
# updates) likely instead of vanishingly rare.
texts = st.text(alphabet="ab", min_size=0, max_size=3)
ints = st.integers(min_value=-3, max_value=5)
rows = st.tuples(texts, ints, ints)                    # (s, n, pub)
like_patterns = st.sampled_from(
    ["%", "a%", "%b", "%a%", "ab%", "a_", "_b", "aa", ""]
)

# -- op vocabulary (tag, args...) -------------------------------------------

_point_s = st.tuples(st.just("point_s"), texts)
_point_n = st.tuples(st.just("point_n"), ints)
_in_n = st.tuples(st.just("in_n"), ints, ints)
_join = st.tuples(st.just("join"))
_group_pub = st.tuples(st.just("group_pub"))
_group_s = st.tuples(st.just("group_s"))               # DET only
_order_n = st.tuples(st.just("order_n"), ints)
_range_n = st.tuples(st.just("range_n"), ints)         # RND only
_between_n = st.tuples(st.just("between_n"), ints, ints)  # RND only
_range_s = st.tuples(st.just("range_s"), texts)        # RND only
_like_s = st.tuples(st.just("like_s"), like_patterns)  # RND only
_range_pub = st.tuples(st.just("range_pub"), ints)     # plaintext col: both
_update_pub = st.tuples(st.just("update_pub"), texts, ints)
_update_s = st.tuples(st.just("update_s"), st.integers(0, 7), texts)
_delete_s = st.tuples(st.just("delete_s"), texts)
_delete_n = st.tuples(st.just("delete_n"), ints)
_insert = st.tuples(st.just("insert"), st.integers(100, 107), rows)

_COMMON = [
    _point_s, _point_n, _in_n, _join, _group_pub, _order_n, _range_pub,
    _update_pub, _update_s, _delete_s, _delete_n, _insert,
]
det_ops = st.lists(
    st.one_of(*_COMMON, _group_s), min_size=5, max_size=9
)
rnd_ops = st.lists(
    st.one_of(*_COMMON, _range_n, _between_n, _range_s, _like_s),
    min_size=5, max_size=9,
)


def _render(op: tuple, t: str, u: str) -> tuple[str, dict, bool]:
    """One generated op -> (sql, params, is_mutation)."""
    tag, *args = op
    if tag == "point_s":
        return f"SELECT id, n, pub FROM {t} WHERE s = @v", {"v": args[0]}, False
    if tag == "point_n":
        return f"SELECT id, s, pub FROM {t} WHERE n = @v", {"v": args[0]}, False
    if tag == "in_n":
        return (
            f"SELECT id, s FROM {t} WHERE n IN (@a, @b)",
            {"a": args[0], "b": args[1]}, False,
        )
    if tag == "join":
        return (
            f"SELECT a.id, b.id, a.s FROM {t} a JOIN {u} b ON a.s = b.s",
            {}, False,
        )
    if tag == "group_pub":
        return f"SELECT pub, COUNT(*) FROM {t} GROUP BY pub", {}, False
    if tag == "group_s":
        return f"SELECT s, COUNT(*) FROM {t} GROUP BY s", {}, False
    if tag == "order_n":
        return (
            f"SELECT id, s FROM {t} WHERE n = @v ORDER BY id",
            {"v": args[0]}, False,
        )
    if tag == "range_n":
        return f"SELECT id, s FROM {t} WHERE n > @lo", {"lo": args[0]}, False
    if tag == "between_n":
        lo, hi = sorted(args)
        return (
            f"SELECT id, s FROM {t} WHERE n BETWEEN @lo AND @hi",
            {"lo": lo, "hi": hi}, False,
        )
    if tag == "range_s":
        return f"SELECT id, n FROM {t} WHERE s >= @v", {"v": args[0]}, False
    if tag == "like_s":
        return f"SELECT id, n FROM {t} WHERE s LIKE @pat", {"pat": args[0]}, False
    if tag == "range_pub":
        return f"SELECT id, s FROM {t} WHERE pub > @lo", {"lo": args[0]}, False
    if tag == "update_pub":
        return (
            f"UPDATE {t} SET pub = @p WHERE s = @v",
            {"p": args[1], "v": args[0]}, True,
        )
    if tag == "update_s":
        return (
            f"UPDATE {t} SET s = @new WHERE id = @i",
            {"new": args[1], "i": args[0]}, True,
        )
    if tag == "delete_s":
        return f"DELETE FROM {t} WHERE s = @v", {"v": args[0]}, True
    if tag == "delete_n":
        return f"DELETE FROM {t} WHERE n = @v", {"v": args[0]}, True
    if tag == "insert":
        row_id, (s, n, pub) = args
        return (
            f"INSERT INTO {t} (id, s, n, pub) VALUES (@i, @s, @n, @p)",
            {"i": row_id, "s": s, "n": n, "p": pub}, True,
        )
    raise AssertionError(f"unknown op {tag}")


def _multiset(result) -> list:
    return sorted(result.rows, key=repr)


def _run_case(pair, t_rows, u_rows, ops) -> None:
    t, u = pair.next_table_names()
    pair.create_tables(t, u)
    try:
        for i, (s, n, pub) in enumerate(t_rows):
            for conn in pair.connections:
                conn.execute(
                    f"INSERT INTO {t} (id, s, n, pub) VALUES (@i, @s, @n, @p)",
                    {"i": i, "s": s, "n": n, "p": pub},
                )
        for i, (s, n, pub) in enumerate(u_rows):
            for conn in pair.connections:
                conn.execute(
                    f"INSERT INTO {u} (id, s, n, pub) VALUES (@i, @s, @n, @p)",
                    {"i": i, "s": s, "n": n, "p": pub},
                )
        duplicate_id_seen = set()
        for op in ops:
            if op[0] == "insert":
                # A second insert of the same generated id would violate
                # the primary key on both stacks; skip the duplicate op
                # rather than compare error behaviour here.
                if op[1] in duplicate_id_seen:
                    continue
                duplicate_id_seen.add(op[1])
            sql, params, is_mutation = _render(op, t, u)
            ae_result = pair.ae.execute(sql, params)
            oracle_result = pair.oracle.execute(sql, params)
            if is_mutation:
                assert ae_result.rowcount == oracle_result.rowcount, (
                    f"{pair.label} rowcount diverged on {sql!r} {params!r}"
                )
                audit = f"SELECT id, s, n, pub FROM {t}"
                assert _multiset(pair.ae.execute(audit, {})) == _multiset(
                    pair.oracle.execute(audit, {})
                ), f"{pair.label} table diverged after {sql!r} {params!r}"
            else:
                assert _multiset(ae_result) == _multiset(oracle_result), (
                    f"{pair.label} diverged on {sql!r} {params!r}"
                )
            pair.cases += 1
    finally:
        pair.drop_tables(t, u)


@given(
    t_rows=st.lists(rows, min_size=1, max_size=8),
    u_rows=st.lists(rows, min_size=0, max_size=5),
    ops=det_ops,
)
@SETTINGS
def test_det_matches_plaintext_oracle(det_pair, t_rows, u_rows, ops):
    _run_case(det_pair, t_rows, u_rows, ops)


def test_det_generated_at_least_200_cases(det_pair):
    assert det_pair.cases >= MIN_CASES, det_pair.cases


@given(
    t_rows=st.lists(rows, min_size=1, max_size=8),
    u_rows=st.lists(rows, min_size=0, max_size=5),
    ops=rnd_ops,
)
@SETTINGS
def test_rnd_matches_plaintext_oracle(rnd_pair, t_rows, u_rows, ops):
    _run_case(rnd_pair, t_rows, u_rows, ops)


def test_rnd_generated_at_least_200_cases(rnd_pair):
    assert rnd_pair.cases >= MIN_CASES, rnd_pair.cases
