"""Differential freshness: DET and RND must refuse a stale restore alike.

The rollback adversary does not care which encryption mode a column
uses — a restored backup is valid ciphertext under both. The defense
must therefore be mode-transparent, exactly like encryption itself:

* after a detected stale restore, a DET stack (TPM-NV anchor, no
  enclave) and an RND stack (enclave anchor) refuse queries with the
  **identical** fixed :data:`~repro.sqlengine.server.QUARANTINE_MESSAGE`
  — the refusal text leaks nothing about mode, schema, or how far the
  restore rolled back;
* a **legitimate** crash + recovery on an anchored stack stays fully
  transparent: the anchor verifies, nothing is quarantined, and a query
  battery against a plaintext oracle shows zero divergences before and
  after the crash.
"""

from __future__ import annotations

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import TpmNvAnchor
from repro.client.driver import connect
from repro.enclave.runtime import Enclave
from repro.errors import StaleRestoreError
from repro.security.adversary import StrongAdversary
from repro.sqlengine.server import QUARANTINE_MESSAGE, SqlServer
from repro.sqlengine.storage.freshness import EnclaveAnchorBackend, FreshnessAnchor

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

ROWS = [("aa", 1, 0), ("ab", 3, 1), ("aa", 4, 0), ("b", 2, 2), ("ab", 1, 1)]
EXTRA_ROWS = [("ba", 5, 3), ("bb", 0, 4)]

COMMON_QUERIES = [
    ("SELECT id, n, pub FROM T WHERE s = @v", {"v": "aa"}),
    ("SELECT id, s, pub FROM T WHERE n = @v", {"v": 1}),
    ("SELECT id, s FROM T WHERE n IN (@a, @b)", {"a": 1, "b": 4}),
    ("SELECT pub, COUNT(*) FROM T GROUP BY pub", {}),
    ("SELECT id, s FROM T WHERE pub > @lo", {"lo": 0}),
]
DET_QUERIES = COMMON_QUERIES + [
    ("SELECT s, COUNT(*) FROM T GROUP BY s", {}),
]
RND_QUERIES = COMMON_QUERIES + [
    ("SELECT id, s FROM T WHERE n > @lo", {"lo": 1}),
    ("SELECT id, s FROM T WHERE n BETWEEN @lo AND @hi", {"lo": 1, "hi": 4}),
    ("SELECT id, n FROM T WHERE s LIKE @pat", {"pat": "a%"}),
]


def _det_stack(registry, plain_cmk, plain_cek):
    """Anchored DET stack: TPM-NV trust root, no enclave."""
    server = SqlServer(
        lock_timeout_s=1.0, freshness=FreshnessAnchor(TpmNvAnchor())
    )
    server.catalog.create_cmk(plain_cmk)
    server.catalog.create_cek(plain_cek)
    conn = connect(server, registry)
    return server, conn, plain_cek.name, "Deterministic", DET_QUERIES


def _rnd_stack(registry, enclave_binary, host_machine, enclave_cmk, enclave_cek):
    """Anchored RND stack: the enclave itself is the trust root."""
    hgs = HostGuardianService()
    hgs.register_host(host_machine.boot_and_measure())
    enclave = Enclave(enclave_binary)
    server = SqlServer(
        enclave=enclave,
        host_machine=host_machine,
        hgs=hgs,
        lock_timeout_s=1.0,
        freshness=FreshnessAnchor(EnclaveAnchorBackend(enclave)),
    )
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    policy = AttestationPolicy(
        trusted_author_ids=frozenset({enclave_binary.author_id})
    )
    conn = connect(server, registry, attestation_policy=policy)
    return server, conn, enclave_cek.name, "Randomized", RND_QUERIES


@pytest.fixture
def det_stack(registry, plain_cmk, plain_cek):
    return _det_stack(registry, plain_cmk, plain_cek)


@pytest.fixture
def rnd_stack(registry, enclave_binary, host_machine, enclave_cmk, enclave_cek):
    return _rnd_stack(
        registry, enclave_binary, host_machine, enclave_cmk, enclave_cek
    )


@pytest.fixture
def oracle(registry):
    server = SqlServer(lock_timeout_s=1.0)
    return connect(server, registry, column_encryption=False)


def _provision(conn, cek_name: str | None, scheme: str | None, rows) -> None:
    if cek_name is None:
        ddl = "CREATE TABLE T(id int PRIMARY KEY, s varchar(10), n int, pub int)"
    else:
        enc = (
            f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {cek_name}, "
            f"ENCRYPTION_TYPE = {scheme}, ALGORITHM = '{ALGO}')"
        )
        ddl = (
            f"CREATE TABLE T(id int PRIMARY KEY, "
            f"s varchar(10) {enc}, n int {enc}, pub int)"
        )
    conn.execute_ddl(ddl)
    _insert(conn, rows, start_id=0)


def _insert(conn, rows, start_id: int) -> None:
    for i, (s, n, pub) in enumerate(rows, start=start_id):
        conn.execute(
            "INSERT INTO T (id, s, n, pub) VALUES (@i, @s, @n, @p)",
            {"i": i, "s": s, "n": n, "p": pub},
        )


def _multiset(result) -> list:
    return sorted(result.rows, key=repr)


def _mount_stale_restore(server, conn) -> str:
    """Run the rollback playbook against an anchored stack.

    Backup → more committed (checkpointed) work → restore the backup →
    crash → recover. Returns the message the quarantined server gives a
    query afterwards.
    """
    adversary = StrongAdversary()
    adversary.attach(server)
    backup = adversary.take_snapshot()
    _insert(conn, EXTRA_ROWS, start_id=len(ROWS))
    server.engine.checkpoint()  # the anchored present moves well past the backup
    adversary.restore_snapshot(backup)
    server.crash()
    with pytest.raises(StaleRestoreError):
        server.recover()
    assert server.quarantined
    session = server.connect()
    with pytest.raises(StaleRestoreError) as refusal:
        session.execute("SELECT id FROM T", {})
    return str(refusal.value)


class TestStaleRestoreRefusedIdentically:
    def test_det_and_rnd_refuse_with_the_same_fixed_message(
        self, det_stack, rnd_stack
    ):
        messages = []
        for server, conn, cek_name, scheme, __ in (det_stack, rnd_stack):
            _provision(conn, cek_name, scheme, ROWS)
            messages.append(_mount_stale_restore(server, conn))
        det_message, rnd_message = messages
        assert det_message == rnd_message == QUARANTINE_MESSAGE

    def test_acceptance_lifts_quarantine_in_both_modes(
        self, det_stack, rnd_stack
    ):
        for server, conn, cek_name, scheme, __ in (det_stack, rnd_stack):
            _provision(conn, cek_name, scheme, ROWS)
            _mount_stale_restore(server, conn)
            report = server.accept_restored_state()
            assert report.freshness_verified
            assert not server.quarantined
            result = server.connect().execute("SELECT id FROM T", {})
            assert len(result.rows) == len(ROWS)


class TestLegitimateRecoveryStaysTransparent:
    @pytest.mark.parametrize("mode", ["det", "rnd"])
    def test_zero_divergences_before_and_after_crash_recovery(
        self, mode, det_stack, rnd_stack, oracle
    ):
        server, conn, cek_name, scheme, queries = (
            det_stack if mode == "det" else rnd_stack
        )
        _provision(conn, cek_name, scheme, ROWS)
        _provision(oracle, None, None, ROWS)

        def battery_divergences() -> list[str]:
            diverged = []
            for sql, params in queries:
                ae = _multiset(conn.execute(sql, params))
                plain = _multiset(oracle.execute(sql, params))
                if ae != plain:
                    diverged.append(f"{sql!r} {params!r}: {ae!r} != {plain!r}")
            return diverged

        assert battery_divergences() == []

        # Leave redo work behind: committed rows past the last checkpoint.
        server.engine.checkpoint()
        _insert(conn, EXTRA_ROWS, start_id=len(ROWS))
        _insert(oracle, EXTRA_ROWS, start_id=len(ROWS))

        server.crash()
        report = server.recover()
        assert report.freshness_verified
        assert report.anchor_epoch is not None
        assert not server.quarantined

        assert battery_divergences() == []
        audit = "SELECT id, s, n, pub FROM T"
        assert _multiset(conn.execute(audit, {})) == _multiset(
            oracle.execute(audit, {})
        )
