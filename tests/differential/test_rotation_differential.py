"""Differential suite: AE answers mid-rotation must equal the oracle's.

One Always Encrypted stack rotating a column online, one plaintext
oracle server applying the identical DML. Between every rotation batch a
query battery runs against both and the decrypted AE answers must be
*identical* (as multisets) to the oracle's — the mixed old/new-key
window is supposed to be invisible to clients, so any divergence is a
bug by construction. Both cell schemes are covered:

* **RND** — the rotating column is Randomized; every query shape works
  at every step.
* **DET** — the rotating column is Deterministic. Server-side equality
  compares raw ciphertexts, and mid-rotation the same plaintext exists
  under two keys, so DET predicates *on the rotating column* are
  battery members only before the rotation starts and after it
  completes (the documented DET-mid-rotation caveat — see docs/KEYS.md);
  scans and plaintext-column predicates run at every step regardless.

Mutations (insert / update / delete, mirrored to both servers) land
between batches too, so the battery sees rows the sweep must revisit.
"""

from __future__ import annotations

import random

import pytest

from repro.tools.rotation import rotate_cek_online

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"
SEED = 0xD1FF


def multiset(result) -> list:
    return sorted(result.rows, key=repr)


class RotationPair:
    """AE rotation stack + plaintext oracle, fed identical statements."""

    def __init__(self, stack, oracle, scheme: str):
        self.stack = stack
        self.ae = stack.conn
        self.oracle = oracle
        self.scheme = scheme
        self.divergences: list[str] = []
        self.cases = 0

    def ddl(self) -> None:
        enc = (
            f"ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = RotOldCEK, "
            f"ENCRYPTION_TYPE = {self.scheme}, ALGORITHM = '{ALGO}')"
        )
        self.ae.execute_ddl(
            f"CREATE TABLE T(id int PRIMARY KEY, value int {enc}, pub int)"
        )
        self.oracle.execute_ddl(
            "CREATE TABLE T(id int PRIMARY KEY, value int, pub int)"
        )

    def mutate(self, sql: str, params: dict) -> None:
        self.ae.execute(sql, params)
        self.oracle.execute(sql, params)

    def compare(self, sql: str, params: dict | None = None) -> None:
        self.cases += 1
        got = multiset(self.ae.execute(sql, params or {}))
        want = multiset(self.oracle.execute(sql, params or {}))
        if got != want:
            self.divergences.append(
                f"{self.scheme}: {sql!r} {params!r}: AE={got!r} oracle={want!r}"
            )

    def battery(self, rng: random.Random, det_on_rotating_column: bool) -> None:
        """The per-step query battery. The rotating column is always in
        the SELECT list; RND stacks also predicate on it server-side at
        every step (the enclave compares plaintexts, so the mixed-key
        window is legal there), DET only outside the window."""
        self.compare("SELECT id, value, pub FROM T")
        self.compare("SELECT value FROM T WHERE id = @id", {"id": rng.randrange(30)})
        self.compare(
            "SELECT id, value FROM T WHERE pub >= @lo",
            {"lo": rng.randrange(-2, 6)},
        )
        self.compare(
            "SELECT id, value FROM T WHERE pub >= @lo AND pub <= @hi",
            {"lo": -1, "hi": rng.randrange(0, 8)},
        )
        self.compare(
            "SELECT id FROM T WHERE id >= @a AND id <= @b ORDER BY id",
            {"a": rng.randrange(10), "b": rng.randrange(10, 30)},
        )
        if self.scheme == "Randomized":
            # Enclave predicates decrypt the cells, so mid-window they
            # must resolve mixed old/new envelopes (the rotation-partner
            # fallback on the eval path, not just the comparison ecalls).
            self.compare(
                "SELECT id FROM T WHERE value = @v", {"v": rng.randrange(-2, 10)}
            )
            self.compare(
                "SELECT id FROM T WHERE value >= @v", {"v": rng.randrange(-2, 10)}
            )
        elif det_on_rotating_column:
            # Equality on the DET column itself: only sound while every
            # cell is under ONE key (before begin / after end).
            self.compare(
                "SELECT id FROM T WHERE value = @v", {"v": rng.randrange(-2, 10)}
            )


@pytest.fixture(params=["Deterministic", "Randomized"], ids=["DET", "RND"])
def pair(request, rotation_stack_factory, registry):
    from repro.client.driver import connect
    from repro.sqlengine.server import SqlServer

    stack = rotation_stack_factory()
    oracle = connect(
        SqlServer(lock_timeout_s=1.0), registry, column_encryption=False
    )
    p = RotationPair(stack, oracle, request.param)
    p.ddl()
    return p


class TestRotationDifferential:
    def test_zero_divergences_through_a_full_online_rotation(self, pair):
        rng = random.Random(SEED)
        for i in range(30):
            pair.mutate(
                "INSERT INTO T (id, value, pub) VALUES (@id, @v, @p)",
                {"id": i, "v": rng.randrange(-2, 10), "p": rng.randrange(-2, 8)},
            )

        det = pair.scheme == "Deterministic"
        pair.battery(rng, det_on_rotating_column=det)  # pre-rotation baseline

        rid = rotate_cek_online(
            pair.ae, "T", "value", "RotNewCEK", batch_size=5, run=False
        )
        more, next_id = True, 100
        while more:
            more, __ = pair.stack.server.rotate_step(rid)
            # a mutation lands inside the mixed window...
            choice = rng.randrange(3)
            if choice == 0:
                pair.mutate(
                    "INSERT INTO T (id, value, pub) VALUES (@id, @v, @p)",
                    {"id": next_id, "v": rng.randrange(-2, 10), "p": 1},
                )
                next_id += 1
            elif choice == 1:
                pair.mutate(
                    "UPDATE T SET value = @v WHERE id = @id",
                    {"id": rng.randrange(30), "v": rng.randrange(-2, 10)},
                )
            else:
                pair.mutate(
                    "DELETE FROM T WHERE id = @id", {"id": rng.randrange(30)}
                )
            # ...and the battery must not notice any of it.
            pair.battery(rng, det_on_rotating_column=False)

        assert not any(s.active for s in pair.stack.server.rotation_states())
        pair.battery(rng, det_on_rotating_column=det)  # post-rotation
        assert pair.stack.server.cek_versions() == {"RotNewCEK": 2}

        assert pair.divergences == [], "\n".join(pair.divergences)
        assert pair.cases >= 40, pair.cases

    def test_divergence_detector_is_live(self, pair):
        """Sanity: the comparator actually fails when the worlds differ."""
        pair.mutate("INSERT INTO T (id, value, pub) VALUES (@id, @v, @p)",
                    {"id": 0, "v": 1, "p": 1})
        pair.oracle.execute(
            "UPDATE T SET value = @v WHERE id = @id", {"id": 0, "v": 99}
        )
        pair.compare("SELECT id, value FROM T")
        assert len(pair.divergences) == 1
