"""Per-statement stats stay exact when statements run concurrently.

The regression this file pins: QueryStats used to be computed as global
registry deltas (value-after minus value-before), which is only correct
when one statement runs at a time — two concurrent statements would bleed
their counter increments into each other's stats. Attribution contexts
(:class:`repro.obs.metrics.AttributionContext`) fix this: each collector
pushes a thread-local context, every ``Counter.inc`` lands in the active
contexts of *its* thread, and the enclave gateway carries the submitting
statement's contexts across the queued-worker boundary.
"""

from __future__ import annotations

import threading

from repro.client.driver import connect
from repro.obs.metrics import AttributionContext, get_registry
from repro.sqlengine.server import SqlServer
from tests.conftest import make_encrypted_table

POINT_LOOKUP = "SELECT id, value FROM T WHERE value = @v"


class TestAttributionContext:
    def test_context_captures_only_its_own_threads_increments(self):
        registry = get_registry()
        counter = registry.counter("ctxtest.hits")
        ctx = AttributionContext()
        registry.push_context(ctx)
        try:
            counter.inc()                     # this thread: attributed

            def other_thread():
                counter.inc(5)                # no context there: unattributed

            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        finally:
            registry.pop_context(ctx)
        counter.inc()                         # after pop: unattributed
        assert ctx.value("ctxtest.hits") == 1

    def test_adopt_contexts_attributes_worker_increments(self):
        registry = get_registry()
        counter = registry.counter("ctxtest.adopted")
        ctx = AttributionContext()
        registry.push_context(ctx)
        contexts = registry.current_contexts()
        registry.pop_context(ctx)

        def worker():
            with registry.adopt_contexts(contexts):
                counter.inc(3)
            counter.inc()                     # outside adoption: unattributed

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert ctx.value("ctxtest.adopted") == 3

    def test_nested_contexts_both_receive(self):
        registry = get_registry()
        counter = registry.counter("ctxtest.nested")
        outer, inner = AttributionContext(), AttributionContext()
        registry.push_context(outer)
        registry.push_context(inner)
        try:
            counter.inc(2)
        finally:
            registry.pop_context(inner)
            registry.pop_context(outer)
        assert outer.value("ctxtest.nested") == 2
        assert inner.value("ctxtest.nested") == 2


class TestConcurrentStatementStats:
    def test_concurrent_inserts_report_exact_wal_records(self, registry):
        """Two sessions inserting at the same instant each see exactly the
        WAL records of *their* statement — the global-delta bug would give
        one of them (up to) both statements' records."""
        server = SqlServer(lock_timeout_s=1.0, worker_threads=2)
        conn_a = connect(server, registry, column_encryption=False)
        conn_b = connect(server, registry, column_encryption=False)
        conn_a.execute_ddl("CREATE TABLE W(id int PRIMARY KEY, v int)")

        # Baseline: what one single-row autocommit INSERT costs alone.
        baseline = conn_a.execute(
            "INSERT INTO W (id, v) VALUES (@i, @v)", {"i": 0, "v": 0}
        ).stats.wal_records
        assert baseline > 0

        barrier = threading.Barrier(2)
        results: dict[str, object] = {}

        def client(name: str, conn, row_id: int) -> None:
            barrier.wait()
            results[name] = conn.execute(
                "INSERT INTO W (id, v) VALUES (@i, @v)", {"i": row_id, "v": 1}
            )

        threads = [
            threading.Thread(target=client, args=("a", conn_a, 1)),
            threading.Thread(target=client, args=("b", conn_b, 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results["a"].stats.wal_records == baseline
        assert results["b"].stats.wal_records == baseline

    def test_concurrent_enclave_queries_partition_ecalls_exactly(
        self, server, registry, attestation_policy, enclave_cmk, enclave_cek
    ):
        """Queued-gateway ecalls executed on the enclave worker thread are
        attributed to the submitting statement; two concurrent statements
        partition the registry delta with nothing lost or double-counted."""
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn_a = connect(server, registry, attestation_policy=attestation_policy)
        conn_b = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(conn_a)
        for i in range(6):
            conn_a.execute(
                "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10}
            )
        # Warm both connections (describe, attestation, CEK install).
        conn_a.execute(POINT_LOOKUP, {"v": 30})
        conn_b.execute(POINT_LOOKUP, {"v": 30})

        metrics = get_registry()
        before = metrics.value("enclave.ecalls")
        barrier = threading.Barrier(2)
        results: dict[str, object] = {}

        def client(name: str, conn) -> None:
            barrier.wait()
            results[name] = conn.execute(POINT_LOOKUP, {"v": 30})

        threads = [
            threading.Thread(target=client, args=("a", conn_a)),
            threading.Thread(target=client, args=("b", conn_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        after = metrics.value("enclave.ecalls")

        stats_a = results["a"].stats
        stats_b = results["b"].stats
        assert stats_a.ecalls > 0
        assert stats_b.ecalls > 0
        assert stats_a.ecalls + stats_b.ecalls == after - before

    def test_concurrent_statements_get_their_own_span_trees(self, registry):
        server = SqlServer(lock_timeout_s=1.0, worker_threads=2)
        conn_a = connect(server, registry, column_encryption=False)
        conn_b = connect(server, registry, column_encryption=False)
        conn_a.execute_ddl("CREATE TABLE S(id int PRIMARY KEY, v int)")
        for i in range(4):
            conn_a.execute(
                "INSERT INTO S (id, v) VALUES (@i, @v)", {"i": i, "v": i}
            )

        barrier = threading.Barrier(2)
        results: dict[str, object] = {}

        def client(name: str, conn, v: int) -> None:
            barrier.wait()
            results[name] = conn.execute(
                "SELECT id FROM S WHERE v = @v", {"v": v}
            )

        threads = [
            threading.Thread(target=client, args=("a", conn_a, 1)),
            threading.Thread(target=client, args=("b", conn_b, 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        span_a = results["a"].stats.root_span
        span_b = results["b"].stats.root_span
        assert span_a is not None and span_b is not None
        assert span_a is not span_b
        assert results["a"].rows == [(1,)]
        assert results["b"].rows == [(2,)]
