"""Unit tests for the metrics registry: kinds, naming, thread safety,
histogram bucket edges, and exposition round-trips."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    MetricError,
    MetricKind,
    MetricsRegistry,
    StatsView,
    snapshot_from_json,
    snapshot_from_prometheus_text,
    validate_metric_name,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# ---------------------------------------------------------------- naming


def test_name_convention_accepts_component_noun_verb():
    for name in ("enclave.ecalls", "bufferpool.page_hits", "a.b.c", "x0.y_z9"):
        validate_metric_name(name)


@pytest.mark.parametrize(
    "bad",
    ["ecalls", "Enclave.ecalls", "enclave.Ecalls", "enclave..ecalls",
     "enclave.", ".ecalls", "enclave.e-calls", "9x.y", "enclave.9y", ""],
)
def test_name_convention_rejects_violations(bad):
    with pytest.raises(MetricError):
        validate_metric_name(bad)


def test_registration_is_get_or_create(registry):
    c1 = registry.counter("test.counter_a")
    c2 = registry.counter("test.counter_a")
    assert c1 is c2


def test_kind_conflict_raises(registry):
    registry.counter("test.conflicted")
    with pytest.raises(MetricError):
        registry.gauge("test.conflicted")
    with pytest.raises(MetricError):
        registry.histogram("test.conflicted")


def test_counter_rejects_negative(registry):
    counter = registry.counter("test.count")
    with pytest.raises(MetricError):
        counter.inc(-1)


def test_gauge_goes_up_and_down(registry):
    gauge = registry.gauge("test.depth")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(3)
    assert gauge.value == 4


def test_value_of_unregistered_metric_is_zero(registry):
    assert registry.value("never.registered") == 0


def test_disabled_registry_is_noop(registry):
    counter = registry.counter("test.count")
    hist = registry.histogram("test.duration_seconds")
    registry.enabled = False
    counter.inc(10)
    hist.observe(0.5)
    assert counter.value == 0
    assert hist.count == 0
    registry.enabled = True
    counter.inc(1)
    assert counter.value == 1


# ---------------------------------------------------------------- thread safety


def test_counter_thread_safety_eight_threads(registry):
    counter = registry.counter("test.contended")
    n_threads, per_thread = 8, 5000
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait()
        for __ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=worker) for __ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == n_threads * per_thread


def test_histogram_thread_safety_eight_threads(registry):
    hist = registry.histogram("test.latency_seconds", buckets=(0.1, 1.0))
    n_threads, per_thread = 8, 2000
    barrier = threading.Barrier(n_threads)

    def worker(i):
        barrier.wait()
        for j in range(per_thread):
            hist.observe(0.05 if (i + j) % 2 else 0.5)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = n_threads * per_thread
    snap = hist.snapshot()
    assert snap["count"] == total
    assert snap["buckets"]["+Inf"] == total
    assert snap["buckets"][repr(0.1)] == total // 2


def test_mixed_registration_thread_safety(registry):
    """Concurrent get-or-create of the same name yields one metric."""
    results = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        results.append(registry.counter("test.same_name"))

    threads = [threading.Thread(target=worker) for __ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(c) for c in results}) == 1


# ---------------------------------------------------------------- histograms


def test_histogram_bucket_edges_are_inclusive(registry):
    hist = registry.histogram("test.sizes", buckets=(1.0, 10.0))
    hist.observe(1.0)   # exactly on the edge -> first bucket
    hist.observe(1.001)  # just over -> second bucket
    hist.observe(10.0)  # edge of second bucket
    hist.observe(10.5)  # overflow -> +Inf only
    snap = hist.snapshot()
    assert snap["buckets"][repr(1.0)] == 1
    assert snap["buckets"][repr(10.0)] == 3  # cumulative
    assert snap["buckets"]["+Inf"] == 4
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(22.501)


def test_histogram_rejects_unsorted_buckets(registry):
    with pytest.raises(MetricError):
        registry.histogram("test.bad_buckets", buckets=(1.0, 0.5))
    with pytest.raises(MetricError):
        registry.histogram("test.empty_buckets", buckets=())


def test_default_buckets_are_ascending():
    assert list(DEFAULT_TIME_BUCKETS_S) == sorted(DEFAULT_TIME_BUCKETS_S)


# ---------------------------------------------------------------- snapshot / reset


def test_snapshot_and_reset(registry):
    registry.counter("test.a").inc(3)
    registry.gauge("test.b").set(7)
    registry.histogram("test.c", buckets=(1.0,)).observe(0.5)
    snap = registry.snapshot()
    assert snap["test.a"] == 3
    assert snap["test.b"] == 7
    assert snap["test.c"]["count"] == 1
    registry.reset()
    snap = registry.snapshot()
    assert snap["test.a"] == 0
    assert snap["test.b"] == 0
    assert snap["test.c"]["count"] == 0


def test_kind_of(registry):
    registry.counter("test.a")
    registry.gauge("test.b")
    assert registry.kind_of("test.a") is MetricKind.COUNTER
    assert registry.kind_of("test.b") is MetricKind.GAUGE


# ---------------------------------------------------------------- exposition


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("enclave.ecalls").inc(42)
    registry.counter("wal.bytes_written").inc(123456)
    registry.gauge("worker.queue_depth").set(3)
    registry.counter("enclave.cpu_seconds").inc(0.125)
    hist = registry.histogram("locks.wait_seconds", buckets=(0.001, 0.1, 1.0))
    for v in (0.0005, 0.05, 0.05, 2.0):
        hist.observe(v)
    return registry


def test_json_round_trip_identical_values():
    registry = _populated_registry()
    assert snapshot_from_json(registry.to_json()) == registry.snapshot()


def test_prometheus_round_trip_identical_values():
    registry = _populated_registry()
    parsed = snapshot_from_prometheus_text(registry.to_prometheus_text())
    assert parsed == registry.snapshot()


def test_json_and_prometheus_agree():
    registry = _populated_registry()
    assert snapshot_from_json(registry.to_json()) == snapshot_from_prometheus_text(
        registry.to_prometheus_text()
    )


def test_json_exposition_carries_kinds():
    registry = _populated_registry()
    payload = json.loads(registry.to_json())
    assert payload["metrics"]["enclave.ecalls"]["kind"] == "counter"
    assert payload["metrics"]["worker.queue_depth"]["kind"] == "gauge"
    assert payload["metrics"]["locks.wait_seconds"]["kind"] == "histogram"


def test_prometheus_text_sanitizes_names():
    registry = _populated_registry()
    text = registry.to_prometheus_text()
    assert 'enclave_ecalls{metric="enclave.ecalls"} 42' in text
    assert "# TYPE enclave_ecalls counter" in text
    assert 'locks_wait_seconds_bucket{metric="locks.wait_seconds",le="+Inf"} 4' in text


def test_prometheus_parser_rejects_garbage():
    with pytest.raises(MetricError):
        snapshot_from_prometheus_text("not a metric line\n")


# ---------------------------------------------------------------- stats views


class _View(StatsView):
    FIELDS = {"hits": "test.view_hits", "misses": "test.view_misses"}


def test_stats_view_baselines_per_instance(registry):
    first = _View(registry)
    first.inc("hits", 5)
    second = _View(registry)
    second.inc("hits", 2)
    assert first.hits == 7      # sees both (global counter moved by 7)
    assert second.hits == 2     # only its own delta
    assert registry.value("test.view_hits") == 7


def test_stats_view_clamps_after_reset(registry):
    view = _View(registry)
    view.inc("hits", 3)
    registry.reset()
    assert view.hits == 0  # not negative


def test_stats_view_snapshot_and_unknown_attr(registry):
    view = _View(registry)
    view.inc("misses")
    assert view.snapshot() == {"hits": 0, "misses": 1}
    with pytest.raises(AttributeError):
        view.nope
