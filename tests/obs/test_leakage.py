"""Leakage accountant tests: per-(column, kind) accounting, the
unlabelled fallback, the registry kill switch, and the flight-recorder
events each observation emits."""

from __future__ import annotations

import pytest

from repro.obs.flightrec import get_recorder
from repro.obs.leakage import (
    LEAK_KINDS,
    UNLABELLED,
    LeakageAccountant,
    get_leakage_accountant,
    record_leak,
)
from repro.obs.metrics import MetricsRegistry


def make_accountant() -> tuple[LeakageAccountant, MetricsRegistry]:
    registry = MetricsRegistry()
    return LeakageAccountant(registry=registry), registry


def test_counts_accumulate_per_column_and_kind():
    accountant, registry = make_accountant()
    accountant.record("T.C_LAST", "rnd_comparison", count=3)
    accountant.record("T.C_LAST", "rnd_comparison")
    accountant.record("T.C_LAST", "index_touch", count=2)
    accountant.record("T.SSN", "det_equality")
    assert accountant.snapshot() == {
        "T.C_LAST": {"rnd_comparison": 4, "index_touch": 2},
        "T.SSN": {"det_equality": 1},
    }
    assert accountant.total() == 7
    assert accountant.total("T.C_LAST") == 6
    assert registry.counter("leakage.events_observed").value == 7


def test_unknown_kind_raises():
    accountant, __ = make_accountant()
    with pytest.raises(ValueError, match="unknown leakage kind"):
        accountant.record("T.X", "plaintext_dump")


def test_every_leak_kind_maps_to_a_declared_event():
    from repro.obs.flightrec import EVENT_KINDS

    for event_kind in LEAK_KINDS.values():
        assert event_kind in EVENT_KINDS, event_kind


def test_nonpositive_counts_are_ignored():
    accountant, __ = make_accountant()
    accountant.record("T.X", "det_equality", count=0)
    accountant.record("T.X", "det_equality", count=-5)
    assert accountant.snapshot() == {}


def test_unlabelled_observations_pool_under_the_sentinel():
    accountant, __ = make_accountant()
    accountant.record(None, "det_equality")
    assert accountant.snapshot() == {UNLABELLED: {"det_equality": 1}}


def test_registry_kill_switch_silences_accounting():
    accountant, registry = make_accountant()
    registry.enabled = False
    accountant.record("T.X", "det_equality")
    assert accountant.snapshot() == {}


def test_reset_clears_counts():
    accountant, __ = make_accountant()
    accountant.record("T.X", "index_touch", count=9)
    accountant.reset()
    assert accountant.snapshot() == {}
    assert accountant.total() == 0


def test_record_leak_emits_a_flight_recorder_event():
    recorder = get_recorder()
    accountant = get_leakage_accountant()
    recorder.clear()
    try:
        record_leak("T.C_LAST", "rnd_comparison", count=5)
        events = [e for e in recorder.events()
                  if e.kind == "leak.rnd_comparison"]
        assert len(events) == 1
        assert events[0].attrs == {"column": "T.C_LAST", "count": 5}
    finally:
        recorder.clear()
        accountant.reset()
