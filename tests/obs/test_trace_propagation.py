"""Cross-thread trace-context propagation, end to end.

The satellite this file pins: two concurrent sessions drive encrypted
statements through the :class:`StatementScheduler` (worker_threads >= 2)
and the QUEUED enclave gateway, and every flight-recorder event emitted
on *any* thread — scheduler worker, enclave worker — must carry the
statement identity of the statement that caused it. A context that
leaked across sessions (or was dropped at a thread hop) is exactly the
orphaned-span bug this PR fixes."""

from __future__ import annotations

import threading

import pytest

from repro.client.driver import connect
from repro.obs.flightrec import get_recorder
from repro.obs.leakage import get_leakage_accountant
from repro.obs.tracing import TraceOrphanError, Tracer, get_tracer
from repro.sqlengine.server import SqlServer
from tests.conftest import make_encrypted_table

POINT_LOOKUP = "SELECT id, value FROM T WHERE value = @v"

#: Events caused by statement execution — if one of these carries a
#: statement id, it must be the id of the statement that caused it.
STATEMENT_SCOPED = (
    "stmt.begin", "stmt.end", "enclave.ecall", "enclave.transition",
    "leak.det_equality", "leak.rnd_comparison", "leak.index_touch",
    "lock.wait", "lock.timeout", "span.end",
)


@pytest.fixture()
def recorder():
    rec = get_recorder()
    rec.clear()
    yield rec
    rec.clear()
    get_leakage_accountant().reset()


def test_concurrent_sessions_partition_events_by_statement(
    recorder, server, registry, attestation_policy, enclave_cmk, enclave_cek
):
    """Two sessions, two scheduler workers, one queued enclave gateway:
    the recording must attribute every statement-scoped event to the
    statement that caused it, with zero cross-session bleed."""
    assert server.scheduler.worker_threads >= 2
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn_a = connect(server, registry, attestation_policy=attestation_policy)
    conn_b = connect(server, registry, attestation_policy=attestation_policy)
    make_encrypted_table(conn_a)
    for i in range(6):
        conn_a.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10}
        )
    # Warm both connections (describe, attestation, CEK install) so the
    # recorded window contains only the two concurrent statements.
    conn_a.execute(POINT_LOOKUP, {"v": 30})
    conn_b.execute(POINT_LOOKUP, {"v": 30})

    recorder.clear()
    barrier = threading.Barrier(2)
    results: dict[str, object] = {}

    def client(name: str, conn, v: int) -> None:
        barrier.wait()
        results[name] = conn.execute(POINT_LOOKUP, {"v": v})

    threads = [
        threading.Thread(target=client, args=("a", conn_a, 30)),
        threading.Thread(target=client, args=("b", conn_b, 40)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert results["a"].rows and results["b"].rows
    stmt_a = results["a"].stats.statement_id
    stmt_b = results["b"].stats.statement_id
    assert stmt_a != stmt_b
    session_of = {
        stmt_a: conn_a.session.session_id,
        stmt_b: conn_b.session.session_id,
    }
    assert len(set(session_of.values())) == 2

    events = recorder.events()
    seen: dict[int, list] = {stmt_a: [], stmt_b: []}
    for event in events:
        if event.statement_id is None:
            continue
        # No bleed: only the two statements we ran may appear, and each
        # event's session id must be the session that owns its statement.
        assert event.statement_id in session_of, event
        assert event.session_id == session_of[event.statement_id], event
        assert event.kind in STATEMENT_SCOPED, event
        seen[event.statement_id].append(event)

    for stmt_id, stmt_events in seen.items():
        kinds = {e.kind for e in stmt_events}
        # The encrypted point lookup crosses the enclave boundary, so the
        # recording must show the boundary under this statement's trace.
        assert "stmt.begin" in kinds and "stmt.end" in kinds
        assert "enclave.ecall" in kinds
        # Cross-thread propagation: the statement's events span more than
        # one thread (scheduler worker submits, enclave worker evaluates),
        # and every one of them still carries the statement id.
        threads_used = {e.thread for e in stmt_events}
        assert len(threads_used) >= 2, (stmt_id, threads_used)
        assert any(t.startswith("enclave-worker") for t in threads_used)


def test_statements_on_scheduler_workers_are_never_orphaned(recorder, registry):
    """Strict orphan mode stays silent for the whole dispatch path: the
    scheduler worker adopts the submitting session's trace before any
    span opens (the regression this PR's tracer fix pins)."""
    tracer = get_tracer()
    assert not tracer.strict
    tracer.strict = True
    try:
        server = SqlServer(lock_timeout_s=1.0, worker_threads=2)
        conn = connect(server, registry, column_encryption=False)
        conn.execute_ddl("CREATE TABLE O(id int PRIMARY KEY, v int)")
        result = conn.execute(
            "INSERT INTO O (id, v) VALUES (@i, @v)", {"i": 1, "v": 1}
        )
        assert result.stats.statement_id is not None
    finally:
        tracer.strict = False
    stmt_events = [e for e in recorder.events() if e.statement_id is not None]
    assert stmt_events, "scheduler-dispatched statement recorded no events"
    assert {e.statement_id for e in stmt_events} == {result.stats.statement_id}


def test_strict_mode_rejects_spans_on_unpropagated_workers():
    """An adopted worker whose submitter failed to capture its trace is
    an orphan factory; strict mode turns that silent mis-parenting into
    an error."""
    tracer = Tracer()
    tracer.strict = True
    empty = tracer.capture()          # no active trace: empty capture
    failures: list[Exception] = []

    def worker():
        with tracer.adopt(empty):
            try:
                with tracer.span("orphan.work"):
                    pass
            except TraceOrphanError as exc:
                failures.append(exc)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert len(failures) == 1
