"""Span tracer tests: nesting, ordering, metric capture, the child cap,
and the disabled no-op path."""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    ECALL,
    MAX_CHILDREN_PER_SPAN,
    OPERATOR,
    STATEMENT,
    Span,
    Tracer,
)


def make_tracer() -> tuple[Tracer, MetricsRegistry]:
    registry = MetricsRegistry()
    return Tracer(registry=registry), registry


def test_span_nesting_and_ordering():
    tracer, __ = make_tracer()
    with tracer.span("root", kind=STATEMENT) as root:
        with tracer.span("child_a", kind=OPERATOR):
            with tracer.span("grandchild"):
                pass
        with tracer.span("child_b", kind=OPERATOR):
            pass
    assert [c.name for c in root.children] == ["child_a", "child_b"]
    assert [c.name for c in root.children[0].children] == ["grandchild"]
    assert root.end_s is not None
    assert root.duration_s >= root.children[0].duration_s


def test_current_tracks_innermost_span():
    tracer, __ = make_tracer()
    assert tracer.current() is None
    with tracer.span("outer") as outer:
        assert tracer.current() is outer
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
        assert tracer.current() is outer
    assert tracer.current() is None


def test_abandoned_generator_span_swept_by_ancestor_exit():
    """A generator suspended at a yield inside a span never runs its
    __exit__ when the *consumer* raises past it; the enclosing span's
    exit must sweep the abandoned descendant off the thread-local stack
    or it leaks for the life of the thread (regression: a tampered-cell
    IntegrityError mid-scan left exec.table_scan open forever)."""
    tracer, __ = make_tracer()

    def producer():
        with tracer.span("producer"):
            yield 1
            yield 2

    try:
        with tracer.span("consumer"):
            for __ in producer():
                raise RuntimeError("consumer fails mid-iteration")
    except RuntimeError:
        pass
    assert tracer.current() is None
    assert tracer._stack() == []


def test_root_span_is_not_retained():
    """Spans without a parent must not accumulate anywhere (hot loops)."""
    tracer, __ = make_tracer()
    for __ in range(100):
        with tracer.span("loop_iteration"):
            pass
    assert tracer.current() is None
    assert tracer._stack() == []


def test_span_count_by_kind():
    tracer, __ = make_tracer()
    with tracer.span("stmt", kind=STATEMENT) as root:
        with tracer.span("seek", kind=OPERATOR):
            with tracer.ecall_span("enclave.eval"):
                pass
            with tracer.ecall_span("enclave.eval"):
                pass
    assert root.count(ECALL) == 2
    assert root.count(OPERATOR) == 1
    assert root.count() == 3


def test_metric_capture_records_deltas():
    tracer, registry = make_tracer()
    counter = registry.counter("test.work_done")
    counter.inc(10)
    with tracer.span("traced", capture=("test.work_done",)) as span:
        counter.inc(5)
    assert span.metrics["test.work_done"] == 5


def test_child_cap_counts_overflow():
    tracer, __ = make_tracer()
    with tracer.span("root") as root:
        for __ in range(MAX_CHILDREN_PER_SPAN + 25):
            with tracer.span("child"):
                pass
    assert len(root.children) == MAX_CHILDREN_PER_SPAN
    assert root.dropped_children == 25
    assert "25 more spans (capped)" in root.format_tree()


def test_disabled_tracer_is_noop():
    tracer, __ = make_tracer()
    tracer.enabled = False
    with tracer.span("ignored") as span:
        pass
    assert span.end_s is None  # the shared null span, never finished
    assert tracer.current() is None


def test_ecall_span_kind():
    tracer, __ = make_tracer()
    with tracer.ecall_span("enclave.eval", mode="queued") as span:
        pass
    assert span.kind == ECALL
    assert span.attrs == {"mode": "queued"}


def test_spans_are_thread_local():
    tracer, __ = make_tracer()
    seen = {}

    def worker():
        with tracer.span("worker_root") as span:
            seen["worker"] = tracer.current() is span

    with tracer.span("main_root") as root:
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert tracer.current() is root
    assert seen["worker"] is True
    assert root.children == []  # the other thread's span is not our child


def test_format_tree_shows_attrs_and_metrics():
    span = Span(name="n", kind=OPERATOR, attrs={"table": "T"})
    span.start_s, span.end_s = 0.0, 0.001
    span.metrics["enclave.ecalls"] = 3
    text = span.format_tree()
    assert "table=T" in text
    assert "enclave.ecalls=3" in text
    assert "1.000ms" in text
