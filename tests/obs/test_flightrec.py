"""Flight recorder unit tests: the closed kind registry, the bounded
ring with drop accounting, the enabled/registry kill switches, trace
context attachment, the span sink, and the JSONL / Chrome exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.flightrec import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    EVENT_NAME_RE,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Event,
    FlightRecorder,
    FlightRecorderError,
    get_recorder,
)
from repro.obs.flightrec.export import (
    SchemaError,
    read_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.flightrec.report import build_report, format_report
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import STATEMENT, TraceContext, Tracer


def make_recorder(capacity: int = 16) -> tuple[FlightRecorder, Tracer, MetricsRegistry]:
    registry = MetricsRegistry()
    tracer = Tracer(registry=registry)
    return FlightRecorder(capacity=capacity, registry=registry, tracer=tracer), tracer, registry


# -- the closed kind registry ------------------------------------------------

def test_every_declared_kind_matches_the_naming_convention():
    for kind in EVENT_KINDS:
        assert EVENT_NAME_RE.match(kind), kind


def test_undeclared_kind_raises():
    recorder, __, __ = make_recorder()
    with pytest.raises(FlightRecorderError, match="not declared"):
        recorder.record("stmt.bgein")  # typo'd kind must fail loudly


def test_declared_kinds_record():
    recorder, __, __ = make_recorder()
    recorder.record("wal.flush", flushed_lsn=7)
    (event,) = recorder.events()
    assert event.kind == "wal.flush"
    assert event.attrs == {"flushed_lsn": 7}
    assert event.seq == 1
    assert event.trace_id is None


# -- bounding and drop accounting -------------------------------------------

def test_ring_bounds_memory_and_counts_evictions():
    recorder, __, registry = make_recorder(capacity=4)
    for i in range(10):
        recorder.record("enclave.ecall", name=f"call{i}")
    events = recorder.events()
    assert len(events) == 4
    assert recorder.dropped == 6
    # The oldest events were evicted; the newest four survive in order.
    assert [e.attrs["name"] for e in events] == ["call6", "call7", "call8", "call9"]
    assert [e.seq for e in events] == [7, 8, 9, 10]
    assert registry.counter("flightrec.events_recorded").value == 10
    assert registry.counter("flightrec.events_dropped").value == 6


def test_capacity_must_be_positive():
    with pytest.raises(FlightRecorderError):
        FlightRecorder(capacity=0, registry=MetricsRegistry())


def test_clear_resets_ring_and_drop_count():
    recorder, __, __ = make_recorder(capacity=2)
    for __ in range(5):
        recorder.record("stmt.begin", query="q")
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.dropped == 0
    assert recorder.events() == []


# -- kill switches -----------------------------------------------------------

def test_recorder_disabled_records_nothing():
    recorder, __, __ = make_recorder()
    recorder.enabled = False
    recorder.record("stmt.begin", query="q")
    assert not recorder.recording
    assert recorder.events() == []


def test_registry_kill_switch_disables_recording():
    recorder, __, registry = make_recorder()
    registry.enabled = False
    recorder.record("stmt.begin", query="q")
    assert not recorder.recording
    assert recorder.events() == []
    registry.enabled = True
    recorder.record("stmt.begin", query="q")
    assert len(recorder.events()) == 1


def test_disabled_recorder_skips_kind_validation():
    """The kill switch must short-circuit *before* any per-call work —
    that is what makes the disabled path near-free."""
    recorder, __, __ = make_recorder()
    recorder.enabled = False
    recorder.record("not.a.registered.kind")  # no raise: early-out wins


# -- trace context attachment ------------------------------------------------

def test_events_carry_the_active_trace_context():
    recorder, tracer, __ = make_recorder()
    context = TraceContext(trace_id=9, statement_id=9, session_id=3)
    with tracer.trace(context):
        recorder.record("enclave.ecall", name="tm_eval")
    recorder.record("enclave.ecall", name="outside")
    inside, outside = recorder.events()
    assert inside.statement_id == 9
    assert inside.session_id == 3
    assert inside.trace_id == 9
    assert outside.statement_id is None


def test_span_sink_turns_closing_spans_into_events():
    recorder, tracer, __ = make_recorder()
    recorder.install()
    with tracer.span("exec.statement", kind=STATEMENT):
        pass
    recorder.uninstall()
    with tracer.span("after.uninstall"):
        pass
    (event,) = recorder.events()
    assert event.kind == "span.end"
    assert event.attrs["name"] == "exec.statement"
    assert event.attrs["span_kind"] == STATEMENT
    assert event.attrs["duration_s"] >= 0.0


def test_global_recorder_is_installed_and_bounded():
    recorder = get_recorder()
    assert recorder.capacity == DEFAULT_CAPACITY
    assert recorder is get_recorder()


# -- Event serialization -----------------------------------------------------

def test_event_dict_round_trip_preserves_identity():
    event = Event(seq=4, ts_s=1.25, kind="lock.wait", thread="worker-1",
                  trace_id=2, statement_id=2, session_id=1,
                  attrs={"resource": "T/row/3", "duration_s": 0.5})
    assert Event.from_dict(event.as_dict()) == event


def test_event_dict_omits_absent_trace_fields():
    event = Event(seq=1, ts_s=0.0, kind="wal.flush", thread="MainThread")
    payload = event.as_dict()
    assert "trace_id" not in payload
    assert "attrs" not in payload


# -- JSONL export ------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    recorder, tracer, __ = make_recorder()
    with tracer.trace(TraceContext(trace_id=1, statement_id=1, session_id=1)):
        recorder.record("stmt.begin", query="SELECT 1")
        recorder.record("stmt.end", elapsed_s=0.01, rows=1, ok=True)
    path = tmp_path / "rec.jsonl"
    assert write_jsonl(recorder, path) == 2
    header, events = read_jsonl(path)
    assert header["schema"] == SCHEMA_NAME
    assert header["version"] == SCHEMA_VERSION
    assert header["dropped"] == 0
    assert events == recorder.events()
    assert validate_jsonl(path) == 2


def test_jsonl_validation_rejects_undeclared_kind(tmp_path):
    path = tmp_path / "bad.jsonl"
    header = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION,
              "events": 1, "dropped": 0}
    bogus = {"seq": 1, "ts_s": 0.0, "kind": "made.up_kind", "thread": "t"}
    path.write_text(json.dumps(header) + "\n" + json.dumps(bogus) + "\n")
    with pytest.raises(SchemaError, match="undeclared event kind"):
        validate_jsonl(path)


def test_jsonl_validation_rejects_wrong_version(tmp_path):
    path = tmp_path / "bad.jsonl"
    header = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION + 1,
              "events": 0, "dropped": 0}
    path.write_text(json.dumps(header) + "\n")
    with pytest.raises(SchemaError, match="schema version"):
        read_jsonl(path)


def test_jsonl_validation_rejects_event_count_mismatch(tmp_path):
    path = tmp_path / "bad.jsonl"
    header = {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION,
              "events": 5, "dropped": 0}
    event = {"seq": 1, "ts_s": 0.0, "kind": "wal.flush", "thread": "t"}
    path.write_text(json.dumps(header) + "\n" + json.dumps(event) + "\n")
    with pytest.raises(SchemaError, match="declares 5 events"):
        read_jsonl(path)


# -- Chrome trace export -----------------------------------------------------

def test_chrome_trace_structure_and_round_trip(tmp_path):
    recorder, tracer, __ = make_recorder()
    with tracer.trace(TraceContext(trace_id=7, statement_id=7, session_id=2)):
        recorder.record("stmt.begin", query="SELECT 1")
        recorder.record("span.end", name="exec.statement",
                        span_kind=STATEMENT, duration_s=0.002)
    payload = to_chrome_trace(recorder)
    phases = [entry["ph"] for entry in payload["traceEvents"]]
    assert "M" in phases          # process/thread metadata
    assert "i" in phases          # instant: stmt.begin
    assert "X" in phases          # complete slice: the closed span
    slice_entry = next(e for e in payload["traceEvents"] if e["ph"] == "X")
    assert slice_entry["args"]["statement_id"] == 7
    assert slice_entry["dur"] == pytest.approx(2000.0)  # microseconds
    path = tmp_path / "trace.json"
    count = write_chrome_trace(recorder, path)
    assert count == len(payload["traceEvents"])
    assert len(read_chrome_trace(path)) == count


# -- the report builder ------------------------------------------------------

def _synthetic_events() -> list[Event]:
    return [
        Event(seq=1, ts_s=0.0, kind="stmt.begin", thread="w1",
              trace_id=1, statement_id=1, session_id=1,
              attrs={"query": "SELECT a"}),
        Event(seq=2, ts_s=0.1, kind="leak.rnd_comparison", thread="w1",
              trace_id=1, statement_id=1, session_id=1,
              attrs={"column": "T.C_LAST", "count": 4}),
        Event(seq=3, ts_s=0.2, kind="latch.wait", thread="w1",
              trace_id=1, statement_id=1, session_id=1,
              attrs={"latch": "repro.sqlengine.storage.wal.WriteAheadLog._lock",
                     "level": 12, "duration_s": 0.05}),
        Event(seq=4, ts_s=0.3, kind="enclave.transition", thread="w1",
              trace_id=1, statement_id=1, session_id=1,
              attrs={"rows": 8, "duration_s": 0.001}),
        Event(seq=5, ts_s=0.4, kind="stmt.end", thread="w1",
              trace_id=1, statement_id=1, session_id=1,
              attrs={"elapsed_s": 0.4, "rows": 2, "query": "SELECT a"}),
    ]


def test_build_report_aggregates_all_dimensions():
    report = build_report(_synthetic_events())
    assert report["events"] == 5
    assert report["statements"] == 1
    assert report["leakage_per_column"]["T.C_LAST"]["rnd_comparison"] == 4
    latch = report["latch_contention"][
        "repro.sqlengine.storage.wal.WriteAheadLog._lock"]
    assert latch["waits"] == 1
    assert latch["level"] == 12
    assert report["transition_costs"][8]["calls"] == 1
    (slowest,) = report["slowest_statements"]
    assert slowest["statement_id"] == 1
    assert [e["kind"] for e in slowest["timeline"]][0] == "stmt.begin"


def test_format_report_prints_contention_and_leakage():
    text = format_report(build_report(_synthetic_events()))
    assert "FLIGHT RECORDER REPORT" in text
    assert "T.C_LAST" in text
    assert "rnd_comparison=4" in text
    assert "WriteAheadLog._lock" in text
