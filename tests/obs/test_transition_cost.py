"""Transition-cost model tests: power-of-two bucketing, per-row cost
queries, the batch-size recommendation the batch executor consumes, and
JSON persistence."""

from __future__ import annotations

import pytest

from repro.obs.transition_cost import BATCH_BUCKETS, TransitionCostModel


def test_bucket_of_rounds_up_to_the_next_power_of_two():
    assert TransitionCostModel.bucket_of(1) == 1
    assert TransitionCostModel.bucket_of(2) == 2
    assert TransitionCostModel.bucket_of(3) == 4
    assert TransitionCostModel.bucket_of(9) == 16
    assert TransitionCostModel.bucket_of(10**9) == BATCH_BUCKETS[-1]


def test_observe_accumulates_bucket_statistics():
    model = TransitionCostModel()
    model.observe(rows=8, wall_s=0.004)
    model.observe(rows=7, wall_s=0.002)   # same bucket (8)
    assert model.observations == 2
    assert model.mean_cost_s(8) == pytest.approx(0.003)
    assert model.cost_per_row_s(8) == pytest.approx(0.003 / 8)


def test_unmeasured_bucket_returns_none():
    model = TransitionCostModel()
    assert model.mean_cost_s(4) is None
    assert model.cost_per_row_s(4) is None


def test_zero_rows_counts_as_a_one_row_call():
    model = TransitionCostModel()
    model.observe(rows=0, wall_s=0.001)
    assert model.mean_cost_s(1) == pytest.approx(0.001)


def test_recommended_batch_size_picks_lowest_per_row_cost():
    model = TransitionCostModel()
    # One transition per row: 100us per call of 1 row.
    for __ in range(10):
        model.observe(rows=1, wall_s=100e-6)
    # Batched: 8 rows amortize the fixed cost — 200us per call of 8.
    for __ in range(10):
        model.observe(rows=8, wall_s=200e-6)
    assert model.recommended_batch_size() == 8


def test_recommended_batch_size_falls_back_to_default_when_unmeasured():
    model = TransitionCostModel()
    assert model.recommended_batch_size(default=64) == 64
    assert model.recommended_batch_size(default=16) == 16


def test_save_load_round_trip(tmp_path):
    model = TransitionCostModel()
    model.observe(rows=1, wall_s=0.001)
    model.observe(rows=16, wall_s=0.004)
    path = tmp_path / "costs.json"
    model.save(path)
    loaded = TransitionCostModel.load(path)
    assert loaded.to_dict() == model.to_dict()
    assert loaded.recommended_batch_size() == model.recommended_batch_size()


def test_load_rejects_foreign_payloads():
    with pytest.raises(ValueError, match="transition-cost"):
        TransitionCostModel.from_dict({"schema": "something-else", "version": 1})


def test_reset_clears_observations():
    model = TransitionCostModel()
    model.observe(rows=4, wall_s=0.001)
    model.reset()
    assert model.observations == 0
    assert model.mean_cost_s(4) is None
