"""Latch-contention profiler tests: level attribution against the
declared lock order, contended-only measurement in TimedLatch, and the
per-level aggregation the EXPLAIN STATS surface consumes."""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.config import DEFAULT_LOCK_ORDER
from repro.obs.latchprof import LatchProfiler, TimedLatch
from repro.obs.metrics import MetricsRegistry

WAL_LATCH = "repro.sqlengine.storage.wal.WriteAheadLog._lock"


def make_profiler() -> tuple[LatchProfiler, MetricsRegistry]:
    registry = MetricsRegistry()
    return LatchProfiler(registry=registry), registry


# -- level attribution -------------------------------------------------------

def test_level_of_matches_declared_patterns_in_order():
    profiler, __ = make_profiler()
    assert profiler.level_of(WAL_LATCH) == DEFAULT_LOCK_ORDER.index(
        "repro.sqlengine.storage.wal.*"
    )
    assert profiler.level_of(
        "repro.sqlengine.storage.bufferpool.BufferPool._latch"
    ) == DEFAULT_LOCK_ORDER.index("repro.sqlengine.storage.bufferpool.*")


def test_undeclared_latch_sits_below_every_level():
    profiler, __ = make_profiler()
    assert profiler.level_of("some.new.Module._lock") == len(DEFAULT_LOCK_ORDER)


def test_every_storage_latch_name_is_declared():
    """The runtime latch ids and the static lock order must agree — an
    instrumented latch that matches no pattern silently loses its level."""
    profiler, __ = make_profiler()
    for latch_id in (
        WAL_LATCH,
        "repro.sqlengine.storage.bufferpool.BufferPool._latch",
        "repro.sqlengine.storage.heap.HeapFile._latch",
        "repro.sqlengine.catalog.Catalog._latch",
        "repro.sqlengine.index.btree.BPlusTree._latch",
    ):
        assert profiler.level_of(latch_id) < len(DEFAULT_LOCK_ORDER), latch_id


# -- wait accounting ---------------------------------------------------------

def test_record_wait_accumulates_per_latch_and_per_level():
    profiler, registry = make_profiler()
    level = profiler.level_of(WAL_LATCH)
    profiler.record_wait(WAL_LATCH, 0.25)
    profiler.record_wait(WAL_LATCH, 0.75)
    entry = profiler.snapshot()[WAL_LATCH]
    assert entry["waits"] == 2
    assert entry["total_s"] == pytest.approx(1.0)
    assert entry["max_s"] == pytest.approx(0.75)
    assert entry["level"] == level
    assert registry.counter("latch.waits").value == 2
    assert registry.counter(f"latch.l{level:02d}_waits").value == 2
    assert registry.counter(
        f"latch.l{level:02d}_wait_seconds"
    ).value == pytest.approx(1.0)


def test_by_level_aggregates_latches_sharing_a_pattern():
    profiler, __ = make_profiler()
    profiler.record_wait(WAL_LATCH, 0.1)
    profiler.record_wait("repro.sqlengine.storage.heap.HeapFile._latch", 0.2)
    levels = profiler.by_level()
    wal_level = profiler.level_of(WAL_LATCH)
    assert levels[wal_level]["waits"] == 1
    assert levels[wal_level]["pattern"] == "repro.sqlengine.storage.wal.*"
    heap_level = profiler.level_of("repro.sqlengine.storage.heap.HeapFile._latch")
    assert WAL_LATCH in levels[wal_level]["latches"]
    assert heap_level != wal_level


def test_registry_kill_switch_silences_the_profiler():
    profiler, registry = make_profiler()
    registry.enabled = False
    profiler.record_wait(WAL_LATCH, 0.5)
    assert profiler.snapshot() == {}


def test_reset_clears_stats_but_keeps_level_cache_valid():
    profiler, __ = make_profiler()
    profiler.record_wait(WAL_LATCH, 0.5)
    profiler.reset()
    assert profiler.snapshot() == {}
    assert profiler.level_of(WAL_LATCH) < len(DEFAULT_LOCK_ORDER)


# -- TimedLatch --------------------------------------------------------------

def test_uncontended_acquisition_measures_nothing():
    profiler, __ = make_profiler()
    latch = TimedLatch("uncontended.test_latch", profiler=profiler)
    with latch:
        pass
    assert profiler.snapshot() == {}


def test_reentrant_acquisition_is_free_and_legal():
    profiler, __ = make_profiler()
    latch = TimedLatch("reentrant.test_latch", profiler=profiler)
    with latch:
        with latch:
            pass
    assert profiler.snapshot() == {}


def test_contended_acquisition_reports_its_wait():
    profiler, __ = make_profiler()
    latch = TimedLatch("contended.test_latch", profiler=profiler)
    entered = threading.Event()
    release = threading.Event()

    def holder():
        with latch:
            entered.set()
            release.wait(timeout=5.0)

    thread = threading.Thread(target=holder)
    thread.start()
    entered.wait(timeout=5.0)
    waiter_started = time.perf_counter()

    def waiter():
        with latch:
            pass

    contender = threading.Thread(target=waiter)
    contender.start()
    time.sleep(0.05)          # let the contender block
    release.set()
    contender.join(timeout=5.0)
    thread.join(timeout=5.0)
    elapsed = time.perf_counter() - waiter_started
    entry = profiler.snapshot()["contended.test_latch"]
    assert entry["waits"] == 1
    assert 0.0 < entry["total_s"] <= elapsed


def test_non_blocking_acquire_fails_fast_without_recording():
    profiler, __ = make_profiler()
    latch = TimedLatch("nonblocking.test_latch", profiler=profiler)
    hold = threading.Event()
    done = threading.Event()

    def holder():
        with latch:
            hold.set()
            done.wait(timeout=5.0)

    thread = threading.Thread(target=holder)
    thread.start()
    hold.wait(timeout=5.0)
    try:
        assert latch.acquire(blocking=False) is False
    finally:
        done.set()
        thread.join(timeout=5.0)
    assert profiler.snapshot() == {}
