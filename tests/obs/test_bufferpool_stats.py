"""Buffer pool telemetry: eviction counts, hit ratio, gauge upkeep."""

from __future__ import annotations

from repro.obs.metrics import get_registry
from repro.sqlengine.storage.bufferpool import BufferPool
from repro.sqlengine.storage.disk import Disk


def make_pool(capacity: int) -> BufferPool:
    return BufferPool(Disk(), capacity=capacity)


def test_hit_and_miss_accounting():
    pool = make_pool(4)
    page = pool.allocate_page()
    page.dirty = True
    assert pool.hit_ratio == 1.0  # idle pool reads as perfect
    pool.get(page.page_id)        # hit
    pool.flush_all()
    pool.drop_all()
    pool.get(page.page_id)        # miss (re-read from disk)
    assert pool.hits == 1
    assert pool.misses == 1
    assert pool.hit_ratio == 0.5


def test_evictions_are_counted_and_write_back():
    pool = make_pool(2)
    pages = []
    for __ in range(5):
        page = pool.allocate_page()
        page.dirty = True
        pages.append(page)
    assert pool.evictions == 3  # capacity 2, five allocations
    # Evicted dirty pages must have been written back and stay readable.
    first = pool.get(pages[0].page_id)
    assert first.page_id == pages[0].page_id


def test_eviction_delta_feeds_registry():
    registry = get_registry()
    before = registry.value("bufferpool.pages_evicted")
    pool = make_pool(1)
    for __ in range(3):
        pool.allocate_page()
    assert registry.value("bufferpool.pages_evicted") - before == 2
    assert pool.evictions == 2  # the per-pool view agrees


def test_cached_pages_gauge_tracks_residency():
    registry = get_registry()
    pool = make_pool(8)
    for __ in range(3):
        pool.allocate_page()
    assert registry.value("bufferpool.pages_cached") == 3
    pool.drop_all()
    assert registry.value("bufferpool.pages_cached") == 0


def test_fresh_pool_is_isolated_from_global_counters():
    busy = make_pool(1)
    for __ in range(4):
        busy.allocate_page()
    fresh = make_pool(4)
    assert fresh.hits == 0
    assert fresh.misses == 0
    assert fresh.evictions == 0
    assert fresh.hit_ratio == 1.0
