"""QueryStats integration: every statement result carries per-query
telemetry whose enclave counts agree exactly with the registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import get_registry
from repro.obs.querystats import QueryStats, format_explain_stats
from tests.conftest import make_encrypted_table

POINT_LOOKUP = "SELECT id, value FROM T WHERE value = @v"


def test_point_lookup_reports_ecalls_and_pages(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 30})  # warm: describe, attest, CEKs

    result = conn.execute(POINT_LOOKUP, {"v": 30})
    stats = result.stats
    assert stats is not None
    assert result.rows == [(3, 30)]
    assert stats.rows_returned == 1
    assert stats.ecalls > 0            # RND predicate runs in the enclave
    assert stats.pages_read > 0        # rows come through the buffer pool
    assert stats.rows_scanned > 0
    assert stats.elapsed_s > 0


def test_ecall_count_matches_registry_delta_exactly(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 30})  # warm

    registry = get_registry()
    before = registry.value("enclave.ecalls")
    result = conn.execute(POINT_LOOKUP, {"v": 30})
    after = registry.value("enclave.ecalls")

    assert result.stats.ecalls == after - before


def test_driver_side_fields_merge_into_stats(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 10})  # warm

    result = conn.execute(POINT_LOOKUP, {"v": 10})
    stats = result.stats
    # Warm connection: describe is cached, CEK material is cached.
    assert stats.describe_roundtrips == 0
    assert stats.cek_cache_hits > 0
    assert stats.cek_cache_misses == 0


def test_plan_cache_hit_shows_in_stats(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 10})  # warm (plan cached server-side)
    result = conn.execute(POINT_LOOKUP, {"v": 10})
    assert result.stats.plan_cache_hits >= 1


def test_dml_reports_wal_activity(encrypted_table):
    conn = encrypted_table
    result = conn.execute(
        "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 99, "v": 990}
    )
    stats = result.stats
    assert stats is not None
    assert stats.wal_records > 0
    assert stats.wal_bytes > 0


def test_span_tree_contains_ecall_spans(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 30})  # warm

    result = conn.execute(POINT_LOOKUP, {"v": 30})
    stats = result.stats
    assert stats.root_span is not None
    assert stats.root_span.name == "server.statement"
    assert stats.ecall_spans > 0
    # The trace agrees with the counters on boundary crossings.
    assert stats.ecall_spans <= stats.ecalls


def test_explain_stats_output(encrypted_table):
    conn = encrypted_table
    conn.execute(POINT_LOOKUP, {"v": 30})  # warm

    text = conn.explain_stats(POINT_LOOKUP, {"v": 30})
    assert text.startswith("EXPLAIN STATS")
    assert "ecalls" in text
    assert "pages_read" in text
    assert "span tree:" in text
    assert "server.statement" in text


def test_format_explain_stats_handles_empty():
    text = format_explain_stats(QueryStats())
    assert text.startswith("EXPLAIN STATS")
    assert "<unknown>" in text


def test_plain_connection_still_gets_stats(plain_server, registry):
    from repro.client.driver import connect

    conn = connect(plain_server, registry, column_encryption=False)
    conn.execute_ddl("CREATE TABLE P(id int PRIMARY KEY, v int)")
    conn.execute("INSERT INTO P (id, v) VALUES (@id, @v)", {"id": 1, "v": 2})
    result = conn.execute("SELECT v FROM P WHERE id = @id", {"id": 1})
    stats = result.stats
    assert stats is not None
    assert stats.ecalls == 0  # no enclave on a plaintext path
    assert stats.rows_scanned > 0


class TestStatsStayWellFormedUnderFaults:
    """A statement that raises mid-execution must not poison telemetry:
    no span left open on the tracer, and the next statement's registry
    deltas all non-negative."""

    @pytest.fixture(autouse=True)
    def _disarm(self):
        from repro.faults import get_fault_registry

        get_fault_registry().disarm_all()
        yield
        get_fault_registry().disarm_all()

    def _delta_fields(self, stats: QueryStats) -> dict[str, int]:
        from repro.obs.querystats import _DRIVER_DELTA_FIELDS, _SERVER_DELTA_FIELDS

        return {
            attr: getattr(stats, attr)
            for attr in (*_SERVER_DELTA_FIELDS, *_DRIVER_DELTA_FIELDS)
        }

    def test_failed_statement_leaves_no_open_span(self, encrypted_table):
        from repro.errors import FatalFault
        from repro.faults import Always, RaiseFatal, get_fault_registry
        from repro.obs.tracing import get_tracer

        conn = encrypted_table
        armed = get_fault_registry().arm(
            "engine.index_insert", Always(), RaiseFatal()
        )
        try:
            with pytest.raises(FatalFault):
                conn.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)",
                    {"id": 50, "v": 500},
                )
        finally:
            get_fault_registry().disarm(armed)
        assert get_tracer().current() is None

    def test_next_statement_deltas_are_non_negative(self, encrypted_table):
        from repro.errors import FatalFault
        from repro.faults import Always, RaiseFatal, get_fault_registry

        conn = encrypted_table
        armed = get_fault_registry().arm(
            "engine.index_insert", Always(), RaiseFatal()
        )
        try:
            with pytest.raises(FatalFault):
                conn.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)",
                    {"id": 51, "v": 510},
                )
        finally:
            get_fault_registry().disarm(armed)
        result = conn.execute(POINT_LOOKUP, {"v": 30})
        assert result.rows == [(3, 30)]
        for attr, value in self._delta_fields(result.stats).items():
            assert value >= 0, f"{attr} went negative after a failed statement"

    def test_faults_injected_delta_attributed_to_faulted_statement(self, encrypted_table):
        from repro.errors import TransientFault
        from repro.faults import OnNth, RaiseTransient, get_fault_registry

        conn = encrypted_table
        armed = get_fault_registry().arm("engine.commit", OnNth(1), RaiseTransient())
        try:
            with pytest.raises(TransientFault):
                conn.execute(
                    "INSERT INTO T (id, value) VALUES (@id, @v)",
                    {"id": 52, "v": 520},
                )
        finally:
            get_fault_registry().disarm(armed)
        # The failed statement aborted cleanly; the next one reports its
        # own (fault-free) delta.
        result = conn.execute(POINT_LOOKUP, {"v": 30})
        assert result.stats.faults_injected == 0


def test_range_query_explain_stats(ae_connection):
    """The README example: EXPLAIN STATS for an encrypted range query."""
    conn = ae_connection
    make_encrypted_table(conn)
    for i in range(10):
        conn.execute("INSERT INTO T (id, value) VALUES (@id, @v)", {"id": i, "v": i * 10})
    query = "SELECT id, value FROM T WHERE value > @low AND value < @high"
    conn.execute(query, {"low": 20, "high": 70})  # warm
    result = conn.execute(query, {"low": 20, "high": 70})
    stats = result.stats
    assert [r[0] for r in result.rows] == [3, 4, 5, 6]
    assert stats.ecalls > 0
    assert stats.enclave_evals > 0  # host-issued TM_EVALs for the predicate
