"""The strong adversary: what it sees, and what it must never see."""

import pytest

from repro.client.driver import connect
from repro.security.adversary import StrongAdversary
from tests.conftest import make_encrypted_table


@pytest.fixture()
def watched(server, registry, attestation_policy, enclave_cmk, enclave_cek):
    adversary = StrongAdversary()
    adversary.attach(server)
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn = connect(server, registry, attestation_policy=attestation_policy)
    make_encrypted_table(conn)
    for i in range(5):
        conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": i, "v": 1000 + i})
    return adversary, conn


class TestOperationalGuarantee:
    def test_no_plaintext_on_any_surface(self, watched):
        adversary, conn = watched
        conn.execute("SELECT * FROM T WHERE value = @v", {"v": 1002})
        from repro.sqlengine.values import serialize_value

        secrets = [serialize_value(1000 + i) for i in range(5)]
        assert adversary.plaintext_exposures(secrets) == []

    def test_disk_contains_only_ciphertext_for_encrypted_column(self, watched):
        adversary, conn = watched
        disk = adversary.disk_bytes()
        from repro.sqlengine.values import serialize_value

        for i in range(5):
            assert serialize_value(1000 + i) not in disk

    def test_log_images_are_ciphertext(self, watched):
        adversary, __ = watched
        from repro.sqlengine.values import serialize_value

        blob = b"".join(
            (r.before or b"") + (r.after or b"") for r in adversary.log_records()
        )
        assert serialize_value(1000) not in blob
        assert blob  # the adversary does see (encrypted) log images


class TestWhatLeaks:
    def test_wire_events_capture_queries(self, watched):
        adversary, conn = watched
        conn.execute("SELECT * FROM T WHERE id = @i", {"i": 1})
        assert any("WHERE id = @i" in e.query_text for e in adversary.wire_events)

    def test_eval_results_visible_in_clear(self, watched):
        adversary, conn = watched
        conn.execute("SELECT * FROM T WHERE value = @v", {"v": 1003})
        evals = adversary.observed_eval_results()
        # The boolean verdicts cross the boundary in the clear.
        verdicts = [out[0] for __, __, out in evals]
        assert True in verdicts and False in verdicts

    def test_boundary_sees_sealed_packages_only(self, watched, cek_material):
        adversary, conn = watched
        # Trigger a CEK install: equality over RND needs the enclave.
        conn.execute("SELECT * FROM T WHERE value = @v", {"v": 1000})
        installs = [e for e in adversary.boundary_events if e.ecall == "install_package"]
        assert installs
        for event in installs:
            __, blob = event.visible_inputs
            assert cek_material not in blob

    def test_metadata_not_confidential(self, watched, server):
        # Table names, column names, cardinalities are conceded (Section 3.2).
        adversary, __ = watched
        assert [t.name for t in server.catalog.tables()] == ["T"]
        assert sum(1 for __ in server.engine.scan("T")) == 5
