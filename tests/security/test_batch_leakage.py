"""Leakage equivalence: batching amortizes cost, not information.

The ISSUE-level security contract for batched enclave calls: for every
call mode, the adversary's scan-batch reconstruction must recover the
*identical* per-row verdict sequence whether a predicate ran row-at-a-time
or chunked, and batched index/sort comparisons must reveal the same
ordering information as single compares. Only the *shape* of the
boundary observations may differ (fewer, larger events).
"""

import pytest

from repro.client.driver import connect
from repro.crypto.aead import CellCipher
from repro.enclave.runtime import Enclave
from repro.enclave.worker import CallMode
from repro.security.adversary import StrongAdversary
from repro.security.leakage import like_scan_predicate_bits, reconstruct_order
from repro.sqlengine.server import SqlServer
from repro.sqlengine.values import deserialize_value
from tests.conftest import ALGO

NAMES = ["apple", "apricot", "banana", "cherry", "citrus", "date"]

ALL_MODES = [CallMode.SYNCHRONOUS, CallMode.QUEUED]


def build_system(enclave_binary, host_machine, hgs, registry, attestation_policy,
                 enclave_cmk, enclave_cek, mode, batch_size):
    adversary = StrongAdversary()
    server = SqlServer(
        enclave=Enclave(enclave_binary),
        host_machine=host_machine,
        hgs=hgs,
        lock_timeout_s=0.3,
        enclave_call_mode=mode,
        eval_batch_size=batch_size,
    )
    adversary.attach(server)
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn = connect(server, registry, attestation_policy=attestation_policy)
    conn.execute_ddl(
        "CREATE TABLE L (k int PRIMARY KEY, "
        f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    for k, name in enumerate(NAMES):
        conn.execute("INSERT INTO L (k, name) VALUES (@k, @n)", {"k": k, "n": name})
    return adversary, server, conn


class TestScanVerdictEquivalence:
    @pytest.mark.parametrize("mode", ALL_MODES, ids=[m.value for m in ALL_MODES])
    def test_per_row_verdicts_identical(
        self, mode, enclave_binary, host_machine, hgs, registry,
        attestation_policy, enclave_cmk, enclave_cek,
    ):
        observed = {}
        for batch_size in (1, 64):
            adversary, server, conn = build_system(
                enclave_binary, host_machine, hgs, registry, attestation_policy,
                enclave_cmk, enclave_cek, mode, batch_size,
            )
            result = conn.execute("SELECT k FROM L WHERE name LIKE @p", {"p": "ap%"})
            flat = [
                bit
                for batch in like_scan_predicate_bits(adversary)
                for bit in batch
            ]
            observed[batch_size] = (sorted(row[0] for row in result.rows), flat)
            if server.gateway is not None:
                server.gateway.shutdown()
        # Same query answer, and the adversary reconstructs the exact same
        # per-row verdict sequence from the batched trace.
        assert observed[1] == observed[64]
        assert observed[64][1].count(True) == 2  # apple, apricot

    @pytest.mark.parametrize("mode", ALL_MODES, ids=[m.value for m in ALL_MODES])
    def test_batching_changes_only_the_event_shape(
        self, mode, enclave_binary, host_machine, hgs, registry,
        attestation_policy, enclave_cmk, enclave_cek,
    ):
        adversary, server, conn = build_system(
            enclave_binary, host_machine, hgs, registry, attestation_policy,
            enclave_cmk, enclave_cek, mode, 64,
        )
        conn.execute("SELECT k FROM L WHERE name LIKE @p", {"p": "ap%"})
        evals = [e for e in adversary.boundary_events if e.ecall == "eval"]
        batches = [e for e in adversary.boundary_events if e.ecall == "eval_batch"]
        # The scan shipped one chunk, not one ecall per row ...
        assert len(batches) == 1
        assert len(evals) == 0
        # ... yet every per-row verdict is still individually visible.
        assert len(adversary.observed_eval_results()) == len(NAMES)
        if server.gateway is not None:
            server.gateway.shutdown()


class TestOrderReconstructionEquivalence:
    def test_batched_index_build_leaks_same_total_order(
        self, enclave_binary, host_machine, hgs, registry, attestation_policy,
        enclave_cmk, enclave_cek, cek_material,
    ):
        # The batched node probe compares the key against every separator
        # of a node in one compare_batch ecall. The adversary's order
        # reconstruction over the expanded per-pair outcomes must recover
        # the same (true) total order as the binary-search trace did.
        adversary, server, conn = build_system(
            enclave_binary, host_machine, hgs, registry, attestation_policy,
            enclave_cmk, enclave_cek, CallMode.SYNCHRONOUS, 64,
        )
        conn.execute_ddl("CREATE NONCLUSTERED INDEX L_NAME ON L(name)")
        reconstruction = reconstruct_order(adversary, "TestCEK")
        assert reconstruction.comparisons_used > 0
        cipher = CellCipher(cek_material)
        recovered = [
            deserialize_value(cipher.decrypt(env))
            for env in reconstruction.ordered_envelopes
        ]
        assert recovered == [n for n in sorted(NAMES) if n in recovered]
        if server.gateway is not None:
            server.gateway.shutdown()
