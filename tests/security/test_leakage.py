"""Figure 5 leakage rows, realized as measured attacks."""

import pytest

from repro.client.driver import connect
from repro.crypto.aead import CellCipher, EncryptionScheme
from repro.security.adversary import StrongAdversary
from repro.security.leakage import (
    FIGURE5_ROWS,
    det_frequency_distribution,
    encryption_oracle_access,
    like_scan_predicate_bits,
    prefix_match_proximity,
    reconstruct_order,
)
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.values import serialize_value
from tests.conftest import ALGO


class TestDetLeakage:
    def test_frequency_distribution_recovered(self, cek_material):
        # Row 1 of Figure 5: DET comparisons leak the frequency histogram.
        cipher = CellCipher(cek_material)
        values = ["a"] * 5 + ["b"] * 3 + ["c"] * 1
        cells = [
            Ciphertext(cipher.encrypt(serialize_value(v), EncryptionScheme.DETERMINISTIC))
            for v in values
        ]
        assert det_frequency_distribution(cells) == [5, 3, 1]

    def test_rnd_leaks_no_frequencies(self, cek_material):
        # Contrast: RND cells are all distinct ciphertexts.
        cipher = CellCipher(cek_material)
        cells = [
            Ciphertext(cipher.encrypt(serialize_value("same"), EncryptionScheme.RANDOMIZED))
            for __ in range(9)
        ]
        assert det_frequency_distribution(cells) == [1] * 9


@pytest.fixture()
def rnd_system(server, registry, attestation_policy, enclave_cmk, enclave_cek):
    adversary = StrongAdversary()
    adversary.attach(server)
    server.catalog.create_cmk(enclave_cmk)
    server.catalog.create_cek(enclave_cek)
    conn = connect(server, registry, attestation_policy=attestation_policy)
    conn.execute_ddl(
        "CREATE TABLE L (k int PRIMARY KEY, "
        f"name varchar(20) ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = TestCEK, "
        f"ENCRYPTION_TYPE = Randomized, ALGORITHM = '{ALGO}'))"
    )
    names = ["apple", "apricot", "banana", "cherry", "citrus", "date"]
    for k, name in enumerate(names):
        conn.execute("INSERT INTO L (k, name) VALUES (@k, @n)", {"k": k, "n": name})
    return adversary, conn, names


class TestRndOrderingLeakage:
    def test_index_build_reveals_total_order(self, rnd_system, server, cek_material):
        # Row 2 of Figure 5: the sort of an index build leaks the ordering.
        adversary, conn, names = rnd_system
        conn.execute_ddl("CREATE NONCLUSTERED INDEX L_NAME ON L(name)")
        reconstruction = reconstruct_order(adversary, "TestCEK")
        assert reconstruction.comparisons_used > 0

        # Decrypt (with the key the adversary does NOT have) to check the
        # attack recovered the true order.
        cipher = CellCipher(cek_material)
        recovered = [
            serialize_value_to_str(cipher.decrypt(env))
            for env in reconstruction.ordered_envelopes
        ]
        in_index = [n for n in sorted(names) if n in recovered]
        assert recovered == in_index

    def test_prefix_match_leaks_proximity(self, rnd_system, server, cek_material):
        # Row 4: prefix matches reveal a contiguous run sharing a prefix.
        adversary, conn, names = rnd_system
        conn.execute_ddl("CREATE NONCLUSTERED INDEX L_NAME ON L(name)")
        order = reconstruct_order(adversary, "TestCEK")

        cipher = CellCipher(cek_material)
        matched = {
            env
            for env in order.ordered_envelopes
            if serialize_value_to_str(cipher.decrypt(env)).startswith("ap")
        }
        leak = prefix_match_proximity(order.ordered_envelopes, matched)
        assert leak.matched_run_length == 2      # apple, apricot
        assert leak.run_position == 0            # and they are adjacent, first


def serialize_value_to_str(blob: bytes) -> str:
    from repro.sqlengine.values import deserialize_value

    return deserialize_value(blob)  # type: ignore[return-value]


class TestLikeScanLeakage:
    def test_scan_reveals_predicate_bits(self, rnd_system):
        # Row 3: LIKE by scan leaks one unknown-predicate bit per row.
        adversary, conn, names = rnd_system
        conn.execute("SELECT k FROM L WHERE name LIKE @p", {"p": "ap%"})
        batches = like_scan_predicate_bits(adversary)
        flat = [bit for batch in batches for bit in batch]
        assert flat.count(True) == 2
        assert flat.count(False) == len(names) - 2


class TestEncryptionOracle:
    def test_oracle_gated_on_authorization(self, rnd_system, server):
        # Row 5: encryption oracle only with client authorization.
        adversary, conn, __ = rnd_system
        assert encryption_oracle_access(adversary)["authorized_uses"] == 0
        conn.execute_ddl(
            "ALTER TABLE L ALTER COLUMN name varchar(20)", authorize_enclave=True
        )
        assert encryption_oracle_access(adversary)["authorized_uses"] > 0


class TestFigure5Table:
    def test_all_rows_present(self):
        operations = [op for op, __ in FIGURE5_ROWS]
        assert operations == [
            "Comparison (DET)",
            "Comparison (RND)",
            "LIKE predicate using scans",
            "LIKE predicate using an index (i.e. prefix matches)",
            "DDL to encrypt data",
        ]
