"""The SGX attestation platform — the same enclave, a different root of trust."""

import dataclasses

import pytest

from repro.attestation.sgx import (
    SgxAttestationService,
    SgxMachine,
    SgxPolicy,
    server_attest_sgx,
    verify_sgx_attestation_and_derive_secret,
)
from repro.crypto.dh import DiffieHellman
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.channel import CekPackage, seal_package
from repro.errors import AttestationError


@pytest.fixture()
def sgx_machine():
    return SgxMachine.provision()


@pytest.fixture()
def sgx_service(sgx_machine):
    service = SgxAttestationService()
    service.register_cpu(sgx_machine.cpu_key.public)
    return service


@pytest.fixture()
def sgx_policy(enclave_binary):
    return SgxPolicy(trusted_mr_signers=frozenset({enclave_binary.author_id}))


class TestHappyPath:
    def test_secret_established_and_usable(self, enclave, sgx_machine, sgx_service,
                                           sgx_policy, cek_material):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        secret = verify_sgx_attestation_and_derive_secret(
            info, client_dh, sgx_service.signing_public_key, sgx_policy
        )
        # The enclave holds the same secret — the sealed channel works as
        # on the VBS path; the enclave itself never changed.
        enclave.install_package(
            info.session_id,
            seal_package(secret, CekPackage(nonce=0, ceks=(("TestCEK", cek_material),))),
        )
        assert "TestCEK" in enclave.installed_ceks()

    def test_mrenclave_policy_alternative(self, enclave, sgx_machine, sgx_service,
                                          enclave_binary):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        policy = SgxPolicy(trusted_mr_enclaves=frozenset({enclave_binary.binary_hash}))
        verify_sgx_attestation_and_derive_secret(
            info, client_dh, sgx_service.signing_public_key, policy
        )


class TestChainAttacks:
    def test_rogue_cpu_rejected_by_service(self, enclave, sgx_service, sgx_policy):
        rogue_machine = SgxMachine.provision()  # CPU key not registered
        client_dh = DiffieHellman()
        info = server_attest_sgx(rogue_machine, sgx_service, enclave, client_dh.public_key)
        assert not info.verification_report.ok
        with pytest.raises(AttestationError, match="genuine"):
            verify_sgx_attestation_and_derive_secret(
                info, client_dh, sgx_service.signing_public_key, sgx_policy
            )

    def test_forged_verification_report_rejected(self, enclave, sgx_machine,
                                                 sgx_service, sgx_policy):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        rogue_service = SgxAttestationService()
        with pytest.raises(AttestationError, match="signed"):
            verify_sgx_attestation_and_derive_secret(
                info, client_dh, rogue_service.signing_public_key, sgx_policy
            )

    def test_untrusted_mr_signer_rejected(self, enclave, sgx_machine, sgx_service):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        policy = SgxPolicy(trusted_mr_signers=frozenset({b"\x00" * 32}))
        with pytest.raises(AttestationError, match="MRSIGNER"):
            verify_sgx_attestation_and_derive_secret(
                info, client_dh, sgx_service.signing_public_key, policy
            )

    def test_min_svn_enforced(self, enclave, sgx_machine, sgx_service, enclave_binary):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        policy = SgxPolicy(
            trusted_mr_signers=frozenset({enclave_binary.author_id}), min_isv_svn=99
        )
        with pytest.raises(AttestationError, match="SVN"):
            verify_sgx_attestation_and_derive_secret(
                info, client_dh, sgx_service.signing_public_key, policy
            )

    def test_mitm_key_substitution_breaks_report_data(self, enclave, sgx_machine,
                                                      sgx_service, sgx_policy):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        rogue = RsaKeyPair.generate(1024)
        tampered = dataclasses.replace(info, enclave_rsa_public=rogue.public)
        with pytest.raises(AttestationError, match="report data"):
            verify_sgx_attestation_and_derive_secret(
                tampered, client_dh, sgx_service.signing_public_key, sgx_policy
            )

    def test_mitm_dh_substitution_breaks_report_data(self, enclave, sgx_machine,
                                                     sgx_service, sgx_policy):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        mitm = DiffieHellman()
        tampered = dataclasses.replace(info, enclave_dh_public=mitm.public_key)
        with pytest.raises(AttestationError, match="report data"):
            verify_sgx_attestation_and_derive_secret(
                tampered, client_dh, sgx_service.signing_public_key, sgx_policy
            )

    def test_tampered_quote_signature_rejected(self, enclave, sgx_machine, sgx_service,
                                               sgx_policy):
        client_dh = DiffieHellman()
        info = server_attest_sgx(sgx_machine, sgx_service, enclave, client_dh.public_key)
        bad_quote = dataclasses.replace(
            info.verification_report.quote, signature=b"\x00" * 128
        )
        # A re-verified tampered quote fails at the service.
        assert not sgx_service.verify_quote(bad_quote).ok
