"""The Host Guardian Service: whitelist + health certificates."""

import dataclasses

import pytest

from repro.attestation.hgs import HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.errors import AttestationError


class TestAttest:
    def test_registered_host_gets_certificate(self, host_machine):
        hgs = HostGuardianService()
        hgs.register_host(host_machine.boot_and_measure())
        cert = hgs.attest(
            host_machine.boot_and_measure(), host_machine.host_signing_key.public
        )
        assert cert.verify(hgs.signing_public_key)
        assert cert.host_signing_public == host_machine.host_signing_key.public

    def test_unregistered_host_rejected(self, host_machine):
        hgs = HostGuardianService()
        with pytest.raises(AttestationError):
            hgs.attest(host_machine.boot_and_measure(), host_machine.host_signing_key.public)

    def test_unregister(self, host_machine):
        hgs = HostGuardianService()
        log = host_machine.boot_and_measure()
        hgs.register_host(log)
        hgs.unregister_host(log)
        with pytest.raises(AttestationError):
            hgs.attest(log, host_machine.host_signing_key.public)

    def test_certificate_from_other_hgs_fails_verification(self, host_machine):
        hgs_a = HostGuardianService()
        hgs_b = HostGuardianService()
        hgs_a.register_host(host_machine.boot_and_measure())
        cert = hgs_a.attest(
            host_machine.boot_and_measure(), host_machine.host_signing_key.public
        )
        assert not cert.verify(hgs_b.signing_public_key)

    def test_tampered_certificate_rejected(self, host_machine):
        hgs = HostGuardianService()
        hgs.register_host(host_machine.boot_and_measure())
        cert = hgs.attest(
            host_machine.boot_and_measure(), host_machine.host_signing_key.public
        )
        from repro.crypto.rsa import RsaKeyPair

        rogue = RsaKeyPair.generate(512)
        tampered = dataclasses.replace(cert, host_signing_public=rogue.public)
        assert not tampered.verify(hgs.signing_public_key)

    def test_call_accounting(self, host_machine):
        hgs = HostGuardianService()
        hgs.register_host(host_machine.boot_and_measure())
        before = hgs.attest_calls
        hgs.attest(host_machine.boot_and_measure(), host_machine.host_signing_key.public)
        assert hgs.attest_calls == before + 1
