"""TPM / TCG-log measurement simulation."""

from repro.attestation.tpm import HostMachine, TcgLog, TcgLogEntry


class TestMeasurement:
    def test_boot_is_deterministic(self):
        host = HostMachine()
        a = host.boot_and_measure()
        b = host.boot_and_measure()
        assert a.digest_until_hypervisor() == b.digest_until_hypervisor()

    def test_hypervisor_change_changes_digest(self):
        a = HostMachine().boot_and_measure()
        b = HostMachine(hypervisor_image=b"other").boot_and_measure()
        assert a.digest_until_hypervisor() != b.digest_until_hypervisor()

    def test_kernel_change_does_not_change_vbs_digest(self):
        # Only the boot sequence up to the hypervisor matters for VBS.
        a = HostMachine(kernel_image=b"k1").boot_and_measure()
        b = HostMachine(kernel_image=b"k2").boot_and_measure()
        assert a.digest_until_hypervisor() == b.digest_until_hypervisor()
        assert a.full_digest() != b.full_digest()

    def test_firmware_change_changes_digest(self):
        a = HostMachine(firmware_image=b"f1").boot_and_measure()
        b = HostMachine(firmware_image=b"f2").boot_and_measure()
        assert a.digest_until_hypervisor() != b.digest_until_hypervisor()

    def test_log_entry_measures_image(self):
        e1 = TcgLogEntry.measure("firmware", b"image-a")
        e2 = TcgLogEntry.measure("firmware", b"image-b")
        assert e1.measurement != e2.measurement
        assert len(e1.measurement) == 32

    def test_log_order_matters(self):
        entries = (
            TcgLogEntry.measure("firmware", b"a"),
            TcgLogEntry.measure("hypervisor", b"b"),
        )
        swapped = (entries[1], entries[0])
        assert TcgLog(entries).full_digest() != TcgLog(swapped).full_digest()
