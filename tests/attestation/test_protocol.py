"""The attestation chain of trust — each link verified and attacked."""

import dataclasses

import pytest

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.protocol import (
    AttestationInfo,
    server_attest,
    verify_attestation_and_derive_secret,
)
from repro.attestation.report import SignedReport
from repro.attestation.tpm import HostMachine
from repro.crypto.dh import DiffieHellman
from repro.crypto.rsa import RsaKeyPair
from repro.enclave.runtime import Enclave, EnclaveBinary
from repro.errors import AttestationError


@pytest.fixture()
def attested(enclave, host_machine, hgs):
    client_dh = DiffieHellman()
    info = server_attest(host_machine, hgs, enclave, client_dh.public_key)
    return client_dh, info


class TestHappyPath:
    def test_shared_secret_established(self, attested, hgs, attestation_policy, enclave):
        client_dh, info = attested
        secret = verify_attestation_and_derive_secret(
            info, client_dh, hgs.signing_public_key, attestation_policy
        )
        assert len(secret) == 32
        # The enclave already holds the same secret: installing a package
        # sealed under it must succeed.
        from repro.enclave.channel import CekPackage, seal_package

        enclave.install_package(
            info.session_id, seal_package(secret, CekPackage(nonce=0))
        )

    def test_binary_hash_policy_alternative(self, attested, hgs, enclave_binary):
        client_dh, info = attested
        policy = AttestationPolicy(
            extra_trusted_binary_hashes=frozenset({enclave_binary.binary_hash})
        )
        verify_attestation_and_derive_secret(
            info, client_dh, hgs.signing_public_key, policy
        )


class TestChainAttacks:
    def test_unregistered_host_fails_hgs(self, enclave):
        rogue_host = HostMachine(hypervisor_image=b"rogue-hypervisor")
        hgs = HostGuardianService()  # empty whitelist
        with pytest.raises(AttestationError, match="whitelist|TCG"):
            server_attest(rogue_host, hgs, enclave, DiffieHellman().public_key)

    def test_tampered_hypervisor_fails_whitelist(self, host_machine, enclave):
        hgs = HostGuardianService()
        hgs.register_host(host_machine.boot_and_measure())
        compromised = HostMachine(
            hypervisor_image=b"evil-hypervisor",
            host_signing_key=host_machine.host_signing_key,
        )
        with pytest.raises(AttestationError):
            server_attest(compromised, hgs, enclave, DiffieHellman().public_key)

    def test_tampered_kernel_still_attests(self, host_machine, enclave, hgs):
        # VBS trusts only up to the hypervisor; a modified host kernel
        # does not change the whitelisted measurement (Section 4.2).
        patched = HostMachine(
            kernel_image=b"patched-kernel",
            host_signing_key=host_machine.host_signing_key,
        )
        info = server_attest(patched, hgs, enclave, DiffieHellman().public_key)
        assert info.health_certificate.verify(hgs.signing_public_key)

    def test_forged_health_certificate_rejected(self, attested, attestation_policy):
        client_dh, info = attested
        rogue_hgs = HostGuardianService()
        with pytest.raises(AttestationError, match="HGS"):
            verify_attestation_and_derive_secret(
                info, client_dh, rogue_hgs.signing_public_key, attestation_policy
            )

    def test_report_not_signed_by_attested_host(self, attested, hgs, attestation_policy):
        client_dh, info = attested
        rogue_key = RsaKeyPair.generate(512)
        forged = SignedReport.create(info.signed_report.report, rogue_key)
        tampered = dataclasses.replace(info, signed_report=forged)
        with pytest.raises(AttestationError, match="attested host"):
            verify_attestation_and_derive_secret(
                tampered, client_dh, hgs.signing_public_key, attestation_policy
            )

    def test_untrusted_author_rejected(self, host_machine, hgs):
        rogue_author = RsaKeyPair.generate(512)
        rogue_enclave = Enclave(EnclaveBinary.build(rogue_author))
        client_dh = DiffieHellman()
        info = server_attest(host_machine, hgs, rogue_enclave, client_dh.public_key)
        policy = AttestationPolicy(trusted_author_ids=frozenset({b"\x00" * 32}))
        with pytest.raises(AttestationError, match="author"):
            verify_attestation_and_derive_secret(
                info, client_dh, hgs.signing_public_key, policy
            )

    def test_old_enclave_version_rejected(self, attested, hgs, enclave_binary):
        # The client-enforced security-update mechanism: bump the minimum.
        client_dh, info = attested
        policy = AttestationPolicy(
            trusted_author_ids=frozenset({enclave_binary.author_id}),
            min_enclave_version=99,
        )
        with pytest.raises(AttestationError, match="version"):
            verify_attestation_and_derive_secret(
                info, client_dh, hgs.signing_public_key, policy
            )

    def test_old_hypervisor_version_rejected(self, attested, hgs, enclave_binary):
        client_dh, info = attested
        policy = AttestationPolicy(
            trusted_author_ids=frozenset({enclave_binary.author_id}),
            min_hypervisor_version=99,
        )
        with pytest.raises(AttestationError, match="hypervisor"):
            verify_attestation_and_derive_secret(
                info, client_dh, hgs.signing_public_key, policy
            )

    def test_swapped_enclave_public_key_rejected(self, attested, hgs, attestation_policy):
        client_dh, info = attested
        rogue = RsaKeyPair.generate(512)
        tampered = dataclasses.replace(info, enclave_rsa_public=rogue.public)
        with pytest.raises(AttestationError, match="public key"):
            verify_attestation_and_derive_secret(
                tampered, client_dh, hgs.signing_public_key, attestation_policy
            )

    def test_mitm_dh_substitution_rejected(self, attested, hgs, attestation_policy):
        # SQL (the man in the middle) substitutes its own DH public key.
        client_dh, info = attested
        mitm_dh = DiffieHellman()
        tampered = dataclasses.replace(info, enclave_dh_public=mitm_dh.public_key)
        with pytest.raises(AttestationError, match="DH"):
            verify_attestation_and_derive_secret(
                tampered, client_dh, hgs.signing_public_key, attestation_policy
            )
