"""Driver-side caches in isolation, including their thread-safety.

The check-then-act races fixed in ``client/caches.py`` and the driver's
state lock are pinned here: ``CekCache.get`` looks an entry up and then
deletes it on expiry (two threads expiring the same entry raced on the
``del``), and ``Connection._attest`` checked ``self._attestation is None``
before negotiating (two threads could each run a full handshake and leak
an enclave session)."""

import threading

from repro.client.caches import AttestationSession, CekCache


class TestCekCache:
    def test_hit_and_miss_accounting(self):
        cache = CekCache(ttl_s=100)
        assert cache.get("K") is None
        cache.put("K", b"material")
        assert cache.get("K") == b"material"
        assert cache.hits == 1 and cache.misses == 1

    def test_ttl_expiry(self):
        clock = [0.0]
        cache = CekCache(ttl_s=10, clock=lambda: clock[0])
        cache.put("K", b"m")
        clock[0] = 5.0
        assert cache.get("K") == b"m"
        clock[0] = 11.0
        assert cache.get("K") is None

    def test_invalidate_single(self):
        cache = CekCache()
        cache.put("A", b"a")
        cache.put("B", b"b")
        cache.invalidate("A")
        assert cache.get("A") is None
        assert cache.get("B") == b"b"

    def test_invalidate_all(self):
        cache = CekCache()
        cache.put("A", b"a")
        cache.invalidate()
        assert cache.get("A") is None

    def test_put_refreshes_ttl(self):
        clock = [0.0]
        cache = CekCache(ttl_s=10, clock=lambda: clock[0])
        cache.put("K", b"m")
        clock[0] = 8.0
        cache.put("K", b"m2")
        clock[0] = 15.0
        assert cache.get("K") == b"m2"


class TestCekCacheRaces:
    def test_two_threads_expiring_same_entry_do_not_crash(self):
        """Regression: get() is check-then-act — lookup, then ``del`` on
        expiry. Unlocked, two threads could both pass the lookup and the
        second ``del`` raised KeyError. A ticking fake clock keeps every
        entry expired so each get() takes the deletion path."""
        clock = [0.0]
        cache = CekCache(ttl_s=0.5, clock=lambda: clock[0])
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def hammer() -> None:
            barrier.wait()
            try:
                for __ in range(300):
                    clock[0] += 1.0           # every stored entry is expired
                    cache.put("K", b"m")
                    clock[0] += 1.0
                    cache.get("K")
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Accounting stayed coherent: every get was a hit or a miss.
        assert cache.hits + cache.misses >= 600

    def test_concurrent_put_get_invalidate(self):
        cache = CekCache(ttl_s=100)
        errors: list[BaseException] = []
        barrier = threading.Barrier(3)

        def run(action) -> None:
            barrier.wait()
            try:
                for i in range(300):
                    action(i)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(lambda i: cache.put(f"K{i % 5}", b"m"),)),
            threading.Thread(target=run, args=(lambda i: cache.get(f"K{i % 5}"),)),
            threading.Thread(target=run, args=(lambda i: cache.invalidate(f"K{i % 5}"),)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestAttestationSession:
    def test_nonce_counter_monotone(self):
        session = AttestationSession(enclave_session_id=1, shared_secret=bytes(32))
        assert session.nonces.next() == 0
        assert session.nonces.next() == 1

    def test_tracks_installed_ceks(self):
        session = AttestationSession(enclave_session_id=1, shared_secret=bytes(32))
        session.installed_ceks.add("K")
        assert "K" in session.installed_ceks


class TestConnectionAttestationRace:
    def test_two_threads_attest_once(
        self, server, registry, attestation_policy, enclave_cmk, enclave_cek
    ):
        """Two threads racing into ``_attest`` on a fresh connection must
        negotiate exactly one enclave session — the connection's state
        lock serializes the check-then-act on ``self._attestation``."""
        from repro.client.driver import connect

        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn = connect(server, registry, attestation_policy=attestation_policy)

        started_before = server.enclave.counters.sessions_started
        barrier = threading.Barrier(2)
        sessions: list[object] = []
        errors: list[BaseException] = []

        def attest() -> None:
            barrier.wait()
            try:
                sessions.append(conn._attest())
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=attest) for __ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert sessions[0] is sessions[1]
        assert server.enclave.counters.sessions_started == started_before + 1
