"""Driver-side caches in isolation."""

from repro.client.caches import AttestationSession, CekCache


class TestCekCache:
    def test_hit_and_miss_accounting(self):
        cache = CekCache(ttl_s=100)
        assert cache.get("K") is None
        cache.put("K", b"material")
        assert cache.get("K") == b"material"
        assert cache.hits == 1 and cache.misses == 1

    def test_ttl_expiry(self):
        clock = [0.0]
        cache = CekCache(ttl_s=10, clock=lambda: clock[0])
        cache.put("K", b"m")
        clock[0] = 5.0
        assert cache.get("K") == b"m"
        clock[0] = 11.0
        assert cache.get("K") is None

    def test_invalidate_single(self):
        cache = CekCache()
        cache.put("A", b"a")
        cache.put("B", b"b")
        cache.invalidate("A")
        assert cache.get("A") is None
        assert cache.get("B") == b"b"

    def test_invalidate_all(self):
        cache = CekCache()
        cache.put("A", b"a")
        cache.invalidate()
        assert cache.get("A") is None

    def test_put_refreshes_ttl(self):
        clock = [0.0]
        cache = CekCache(ttl_s=10, clock=lambda: clock[0])
        cache.put("K", b"m")
        clock[0] = 8.0
        cache.put("K", b"m2")
        clock[0] = 15.0
        assert cache.get("K") == b"m2"


class TestAttestationSession:
    def test_nonce_counter_monotone(self):
        session = AttestationSession(enclave_session_id=1, shared_secret=bytes(32))
        assert session.nonces.next() == 0
        assert session.nonces.next() == 1

    def test_tracks_installed_ceks(self):
        session = AttestationSession(enclave_session_id=1, shared_secret=bytes(32))
        session.installed_ceks.add("K")
        assert "K" in session.installed_ceks
