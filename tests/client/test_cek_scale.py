"""Fleet-scale CEK handling: the paper's one-CEK-per-tenant deployment.

At ~10k tenants a client process cannot pin every tenant's plaintext key
material forever, so the CEK cache carries an LRU bound; attestation is
single-flight (one handshake per connection no matter how many threads
race it); and a CEK that was evicted and must be re-shipped to the
enclave travels under a fresh nonce — a replayed copy of the install
package is rejected by the enclave's nonce tracker, not applied twice.
"""

from __future__ import annotations

import threading

from repro.client.caches import CekCache
from repro.crypto.aead import generate_cek_material
from repro.faults import DuplicateMessage, OnNth, get_fault_registry
from repro.keys.cek import ColumnEncryptionKey

ALGO = "AEAD_AES_256_CBC_HMAC_SHA_256"

FLEET = 10_000
BOUND = 512


class TestCekCacheLruAtFleetScale:
    def test_ten_thousand_tenants_stay_within_the_bound(self):
        cache = CekCache(ttl_s=3600.0, max_entries=BOUND)
        base_evictions = cache.evictions
        material = b"m" * 32
        for i in range(FLEET):
            cache.put(f"Tenant{i:05d}CEK", material)
        assert len(cache) == BOUND
        assert cache.evictions - base_evictions == FLEET - BOUND
        # Exactly the most recent BOUND tenants are resident.
        assert f"Tenant{FLEET - 1:05d}CEK" in cache
        assert f"Tenant{FLEET - BOUND:05d}CEK" in cache
        assert f"Tenant{FLEET - BOUND - 1:05d}CEK" not in cache

    def test_eviction_is_by_recency_of_use_not_insertion(self):
        cache = CekCache(ttl_s=3600.0, max_entries=4)
        for i in range(4):
            cache.put(f"K{i}", b"m" * 32)
        # K0 is the oldest *inserted*, but a hit refreshes it...
        assert cache.get("K0") is not None
        cache.put("K4", b"m" * 32)
        # ...so the cold K1 is evicted instead.
        assert "K0" in cache and "K4" in cache
        assert "K1" not in cache

    def test_hot_tenant_survives_a_cold_fleet_scan(self):
        cache = CekCache(ttl_s=3600.0, max_entries=8)
        cache.put("HotCEK", b"h" * 32)
        for i in range(1000):
            cache.put(f"Cold{i}CEK", b"c" * 32)
            assert cache.get("HotCEK") is not None  # every touch refreshes
        assert len(cache) == 8

    def test_reinsert_does_not_evict(self):
        cache = CekCache(ttl_s=3600.0, max_entries=2)
        base = cache.evictions
        cache.put("A", b"a" * 32)
        cache.put("B", b"b" * 32)
        cache.put("A", b"a" * 32)  # refresh, not growth
        assert len(cache) == 2
        assert cache.evictions == base


def provision_fleet(server, enclave_cmk, registry, count: int) -> list[str]:
    vault = registry.get("AZURE_KEY_VAULT_PROVIDER")
    names = []
    for i in range(count):
        name = f"Fleet{i:03d}CEK"
        cek, __ = ColumnEncryptionKey.create(
            name, enclave_cmk, vault, key_material=generate_cek_material()
        )
        server.catalog.create_cek(cek)
        names.append(name)
    return names


class TestDriverUnderCachePressure:
    N_CEKS = 24
    BOUND = 4

    def _fleet_tables(self, stack, names):
        for i, name in enumerate(names):
            stack.conn.execute_ddl(
                f"CREATE TABLE F{i}(id int PRIMARY KEY, value int ENCRYPTED WITH "
                f"(COLUMN_ENCRYPTION_KEY = {name}, ENCRYPTION_TYPE = Randomized, "
                f"ALGORITHM = '{ALGO}'))"
            )
            stack.conn.execute(
                f"INSERT INTO F{i} (id, value) VALUES (@id, @v)",
                {"id": 1, "v": i * 11},
            )

    def test_every_tenant_readable_through_a_tiny_cache(
        self, rotation_stack_factory, enclave_cmk, registry
    ):
        stack = rotation_stack_factory(cek_names=())
        names = provision_fleet(stack.server, enclave_cmk, registry, self.N_CEKS)
        self._fleet_tables(stack, names)

        conn = stack.fresh_conn(cek_cache_max_entries=self.BOUND)
        base_evictions = conn.cek_cache.evictions
        base_provider = conn.stats.key_provider_calls
        for sweep in range(2):
            for i in range(self.N_CEKS):
                rows = conn.execute(f"SELECT id, value FROM F{i}").rows
                assert rows == [(1, i * 11)]
        assert len(conn.cek_cache) <= self.BOUND
        # Two cold sweeps over 24 tenants through a 4-entry cache: nearly
        # every access is a miss that unwraps (a provider round-trip) and
        # evicts somebody else.
        assert conn.cek_cache.evictions - base_evictions >= self.N_CEKS
        assert conn.stats.key_provider_calls - base_provider >= self.N_CEKS

    def test_unbounded_cache_pays_the_provider_once_per_tenant(
        self, rotation_stack_factory, enclave_cmk, registry
    ):
        stack = rotation_stack_factory(cek_names=())
        names = provision_fleet(stack.server, enclave_cmk, registry, self.N_CEKS)
        self._fleet_tables(stack, names)

        conn = stack.fresh_conn()
        base = conn.stats.key_provider_calls
        for sweep in range(3):
            for i in range(self.N_CEKS):
                conn.execute(f"SELECT id, value FROM F{i}")
        assert conn.stats.key_provider_calls - base == self.N_CEKS


class TestSingleFlightAttestation:
    def test_racing_threads_share_one_handshake(self, rotation_stack_factory):
        stack = rotation_stack_factory()
        stack.conn.execute_ddl(
            "CREATE TABLE T(id int PRIMARY KEY, value int ENCRYPTED WITH "
            "(COLUMN_ENCRYPTION_KEY = RotOldCEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}'))"
        )
        stack.conn.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 7}
        )

        conn = stack.fresh_conn()
        handshakes = []
        real_attest = stack.server.attest

        def counting_attest(client_dh_public):
            handshakes.append(threading.get_ident())
            return real_attest(client_dh_public)

        stack.server.attest = counting_attest
        try:
            barrier = threading.Barrier(8)
            failures: list[BaseException] = []

            def worker(worker_id: int):
                try:
                    barrier.wait()
                    for __ in range(5):
                        # Range predicate on the RND column: the plan needs
                        # the enclave, so the describe wants a session. The
                        # query texts differ per thread, so the describe
                        # cache cannot be what deduplicates the handshake.
                        rows = conn.execute(
                            "SELECT id FROM T WHERE value >= @v "
                            f"AND id <= {worker_id + 1}",
                            {"v": 0},
                        ).rows
                        assert rows == [(1,)]
                except BaseException as exc:  # surfaced below
                    failures.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            stack.server.attest = real_attest
        assert failures == []
        assert len(handshakes) == 1


class TestReplayProtectedReinstall:
    def test_duplicated_install_package_is_rejected_and_harmless(
        self, rotation_stack_factory
    ):
        """A fresh session's CEK install package delivered twice: the
        enclave's nonce tracker rejects the replayed copy, the driver
        treats the rejection as success, and queries work."""
        faults = get_fault_registry()
        stack = rotation_stack_factory()
        stack.conn.execute_ddl(
            "CREATE TABLE T(id int PRIMARY KEY, value int ENCRYPTED WITH "
            "(COLUMN_ENCRYPTION_KEY = RotOldCEK, ENCRYPTION_TYPE = Randomized, "
            f"ALGORITHM = '{ALGO}'))"
        )
        stack.conn.execute(
            "INSERT INTO T (id, value) VALUES (@id, @v)", {"id": 1, "v": 7}
        )

        conn = stack.fresh_conn(cek_cache_max_entries=1)
        armed = faults.arm("enclave.channel.send", OnNth(1), DuplicateMessage())
        try:
            rows = conn.execute("SELECT id, value FROM T").rows
        finally:
            faults.disarm(armed)
        assert rows == [(1, 7)]
        # The replay changed nothing server-side: later traffic (new nonce
        # ranges, fresh sessions) proceeds normally.
        assert stack.fresh_conn().execute("SELECT value FROM T").rows == [(7,)]
