"""The AE-aware driver: transparency, security controls, caches."""

import pytest

from repro.client.driver import connect
from repro.errors import DriverError, SecurityViolation
from repro.sqlengine.cells import Ciphertext
from tests.conftest import ALGO, make_encrypted_table


class TestTransparency:
    def test_plaintext_in_plaintext_out(self, encrypted_table):
        result = encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": 30})
        assert result.rows == [(3, 30)]

    def test_server_never_sees_plaintext_param(self, encrypted_table, server):
        # Tap the session: the wire value for @v must be ciphertext.
        seen = {}
        session = encrypted_table.session
        original = session.execute

        def spy(query_text, params=None):
            seen.update(params or {})
            return original(query_text, params)

        session.execute = spy
        encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": 50})
        assert isinstance(seen["v"], Ciphertext)

    def test_stored_cells_are_ciphertext(self, encrypted_table, server):
        for __, row in server.engine.scan("T"):
            assert isinstance(row[1], Ciphertext)

    def test_results_decrypted_for_application(self, encrypted_table):
        result = encrypted_table.execute("SELECT value FROM T WHERE id = @i", {"i": 4})
        assert result.rows == [(40,)]

    def test_null_parameter_stays_null(self, ae_connection):
        make_encrypted_table(ae_connection, name="N")
        ae_connection.execute("INSERT INTO N (id, value) VALUES (@i, @v)", {"i": 1, "v": None})
        result = ae_connection.execute("SELECT value FROM N WHERE id = @i", {"i": 1})
        assert result.rows == [(None,)]

    def test_plain_connection_skips_describe(self, plain_server, registry):
        conn = connect(plain_server, registry, column_encryption=False)
        conn.execute_ddl("CREATE TABLE p (a int)")
        before = plain_server.describe_calls
        conn.execute("INSERT INTO p (a) VALUES (@a)", {"a": 1})
        assert plain_server.describe_calls == before


class TestSecurityControls:
    def test_forced_encryption_catches_lying_server(self, encrypted_table):
        # The server claims @i is plaintext (it is — id is unencrypted);
        # an application that *requires* it encrypted must refuse to send.
        with pytest.raises(SecurityViolation, match="forced"):
            encrypted_table.execute(
                "SELECT * FROM T WHERE id = @i", {"i": 1}, force_encryption={"i"}
            )

    def test_forced_encryption_passes_when_encrypted(self, encrypted_table):
        encrypted_table.execute(
            "SELECT * FROM T WHERE value = @v", {"v": 10}, force_encryption={"v"}
        )

    def test_untrusted_cmk_path_rejected(self, server, registry, attestation_policy,
                                         enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn = connect(
            server,
            registry,
            attestation_policy=attestation_policy,
            trusted_cmk_key_paths=("https://vault.azure.net/keys/only-this-one",),
        )
        make_encrypted_table(conn)
        with pytest.raises(SecurityViolation, match="trusted"):
            conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 2})

    def test_tampered_cmk_flag_rejected(self, server, registry, attestation_policy,
                                        plain_cmk, plain_cek):
        # SQL Server flips the enclave flag on an enclave-disabled CMK; the
        # driver must detect the bad signature before releasing CEKs.
        import dataclasses

        evil_cmk = dataclasses.replace(plain_cmk, allow_enclave_computations=True)
        server.catalog.create_cmk(evil_cmk)
        server.catalog.create_cek(plain_cek)
        conn = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(conn, cek="PlainCEK", scheme="Randomized")
        with pytest.raises(SecurityViolation):
            conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 2})

    def test_enclave_disabled_cek_never_shipped(self, server, registry,
                                                attestation_policy, plain_cmk, plain_cek,
                                                enclave_cmk, enclave_cek, enclave):
        # DET works without the enclave; the CEK must never be installed.
        server.catalog.create_cmk(plain_cmk)
        server.catalog.create_cek(plain_cek)
        conn = connect(server, registry, attestation_policy=attestation_policy)
        make_encrypted_table(conn, cek="PlainCEK", scheme="Deterministic")
        conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 2})
        conn.execute("SELECT * FROM T WHERE value = @v", {"v": 2})
        assert "PlainCEK" not in enclave.installed_ceks()


class TestCaches:
    def test_describe_cached_across_executions(self, encrypted_table, server):
        q = "SELECT * FROM T WHERE value = @v"
        encrypted_table.execute(q, {"v": 10})
        before = encrypted_table.stats.describe_roundtrips
        encrypted_table.execute(q, {"v": 20})
        encrypted_table.execute(q, {"v": 30})
        assert encrypted_table.stats.describe_roundtrips == before

    def test_describe_not_cached_when_disabled(self, server, registry,
                                               attestation_policy, enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn = connect(
            server, registry, attestation_policy=attestation_policy,
            cache_describe_results=False,
        )
        make_encrypted_table(conn)
        q = "SELECT * FROM T WHERE id = @i"
        conn.execute(q, {"i": 1})
        before = conn.stats.describe_roundtrips
        conn.execute(q, {"i": 2})
        assert conn.stats.describe_roundtrips == before + 1

    def test_cek_cached_avoids_provider_calls(self, encrypted_table):
        q = "SELECT * FROM T WHERE value = @v"
        encrypted_table.execute(q, {"v": 10})
        before = encrypted_table.stats.key_provider_calls
        encrypted_table.execute(q, {"v": 20})
        assert encrypted_table.stats.key_provider_calls == before

    def test_cek_cache_ttl_expiry(self, encrypted_table):
        encrypted_table.cek_cache.ttl_s = -1.0  # everything expired
        encrypted_table.cek_cache.invalidate()
        q = "SELECT * FROM T WHERE value = @v"
        before = encrypted_table.stats.key_provider_calls
        encrypted_table.execute(q, {"v": 10})
        assert encrypted_table.stats.key_provider_calls > before

    def test_attestation_cached_once(self, encrypted_table, server):
        before = server.hgs.attest_calls if server.hgs else 0
        encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": 10})
        encrypted_table.execute("SELECT id FROM T WHERE value > @v", {"v": 10})
        assert server.hgs.attest_calls <= before + 1

    def test_cek_installed_once_per_session(self, encrypted_table, server):
        encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": 10})
        before = encrypted_table.stats.package_roundtrips
        encrypted_table.execute("SELECT id FROM T WHERE value > @v", {"v": 10})
        assert encrypted_table.stats.package_roundtrips == before


class TestErrors:
    def test_missing_param_value(self, encrypted_table):
        with pytest.raises(DriverError):
            encrypted_table.execute("SELECT * FROM T WHERE value = @v", {})

    def test_enclave_query_without_policy(self, server, registry, enclave_cmk, enclave_cek):
        server.catalog.create_cmk(enclave_cmk)
        server.catalog.create_cek(enclave_cek)
        conn = connect(server, registry)  # no attestation policy
        make_encrypted_table(conn)
        # Inserting needs no enclave (driver-side encryption only)...
        conn.execute("INSERT INTO T (id, value) VALUES (@i, @v)", {"i": 1, "v": 2})
        # ...but an equality predicate over RND does, and must fail without
        # an attestation policy to verify the enclave with.
        with pytest.raises(DriverError, match="attestation"):
            conn.execute("SELECT * FROM T WHERE value = @v", {"v": 2})

    def test_param_type_validated_client_side(self, encrypted_table):
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            encrypted_table.execute("SELECT * FROM T WHERE value = @v", {"v": "not-int"})
