"""SARIF 2.1.0 export: structure, suppression semantics, and round-trip
agreement with the engine's own report."""

from __future__ import annotations

import json

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisEngine
from repro.analysis.sarif import SARIF_VERSION, to_sarif, write_sarif


@pytest.fixture(scope="module")
def flow_bad_run(fixtures_dir):
    from repro.analysis.rules import ALL_RULES

    config = AnalysisConfig(
        root=fixtures_dir / "flow_bad",
        packages=("fpkg",),
        taint_packages=("fpkg",),
    )
    engine = AnalysisEngine(config, rules=ALL_RULES)
    return engine.run(), ALL_RULES


def test_sarif_structure(flow_bad_run):
    report, rules = flow_bad_run
    log = to_sarif(report, rules)
    assert log["version"] == SARIF_VERSION
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.analysis"
    assert [r["id"] for r in driver["rules"]] == [r.name for r in rules]
    assert all(r["shortDescription"]["text"] for r in driver["rules"])


def test_new_findings_are_error_level(flow_bad_run):
    report, rules = flow_bad_run
    assert report.new  # the fixture is deliberately dirty
    results = to_sarif(report, rules)["runs"][0]["results"]
    errors = [r for r in results if r["level"] == "error"]
    assert len(errors) == len(report.new)
    assert all("suppressions" not in r for r in errors)


def test_round_trip_agrees_with_report(flow_bad_run, tmp_path):
    report, rules = flow_bad_run
    out = tmp_path / "out.sarif"
    write_sarif(out, report, rules)
    log = json.loads(out.read_text(encoding="utf-8"))
    results = log["runs"][0]["results"]

    sarif_fps = {r["partialFingerprints"]["reproAnalysis/v1"] for r in results}
    report_fps = {f.fingerprint for f in report.new + report.suppressed}
    assert sarif_fps == report_fps

    by_fp = {r["partialFingerprints"]["reproAnalysis/v1"]: r for r in results}
    for finding in report.new:
        result = by_fp[finding.fingerprint]
        assert result["ruleId"] == finding.rule
        assert result["message"]["text"] == finding.message
        location = result["locations"][0]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == finding.path
        assert physical["region"]["startLine"] >= 1
        assert (
            location["logicalLocations"][0]["fullyQualifiedName"]
            == finding.symbol
        )


def test_baselined_findings_carry_suppressions(tmp_path, capsys):
    # real tree via the CLI: the two baselined taint findings must appear
    # as suppressed notes, not errors
    from repro.analysis.cli import main

    out = tmp_path / "real.sarif"
    assert main(["--strict", "--sarif", str(out)]) == 0
    log = json.loads(out.read_text(encoding="utf-8"))
    results = log["runs"][0]["results"]
    suppressed = [r for r in results if r.get("suppressions")]
    assert suppressed and suppressed == results  # strict-clean: all baselined
    for result in suppressed:
        assert result["level"] == "note"
        assert result["suppressions"][0]["kind"] == "external"
