"""The analyzer against this repository's real source tree, and the
runtime side of the shared ecall-surface registry."""

from __future__ import annotations

import pytest

from repro.enclave import ECALL_SURFACE, Enclave, EnclaveCallGateway
from repro.enclave.runtime import EnclaveError


def test_strict_run_is_clean(capsys):
    from repro.analysis.cli import main

    assert main(["--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    # per-rule summary names every family
    for family in (
        "trust-boundary", "plaintext-taint", "wire-egress", "lock-order",
        "latch-safety", "site-metric", "wire-opcode", "protocol-typestate",
    ):
        assert f"{family}=0" in out


def test_list_rules(capsys):
    from repro.analysis.cli import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for family in (
        "trust-boundary", "plaintext-taint", "wire-egress", "lock-order",
        "latch-safety", "site-metric", "wire-opcode", "protocol-typestate",
    ):
        assert family in out


def test_declared_ecalls_and_observables_exist(enclave):
    for entry in ECALL_SURFACE.ecalls | ECALL_SURFACE.observable:
        assert hasattr(enclave, entry), f"ECALL_SURFACE declares missing {entry!r}"


def test_declared_gateway_surface_exists(enclave):
    gateway = EnclaveCallGateway(enclave, n_threads=1)
    try:
        for entry in ECALL_SURFACE.gateway:
            assert hasattr(gateway, entry), f"gateway surface declares missing {entry!r}"
    finally:
        gateway.shutdown()


def test_declared_importables_exist():
    import repro.enclave as facade

    for name in ECALL_SURFACE.importable:
        assert hasattr(facade, name), f"importable {name!r} missing from facade"


def test_observe_rejects_undeclared_crossing(enclave):
    with pytest.raises(EnclaveError, match="not a declared ecall"):
        enclave._observe("peek_at_keys", (), None)


def test_observe_accepts_declared_crossing(enclave):
    seen = []
    enclave.add_boundary_observer(lambda name, ins, out: seen.append(name))
    enclave._observe("eval", (), None)
    assert seen == ["eval"]
