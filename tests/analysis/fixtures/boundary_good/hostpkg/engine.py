"""Clean host module: facade imports of importable names, declared
ecalls/observables only, construction-time binding. Must produce zero
trust-boundary findings."""

from encl import CallMode, Enclave


class Host:
    def __init__(self, enclave):
        self.enclave = enclave
        self.mode = CallMode

    def route(self, gateway, row):
        verdict = self.enclave.eval("prog", row)
        report = self.enclave.measure()
        gateway.eval_batch([row])
        return verdict, report, Enclave
