"""Analyzer fixture package: host code that stays on the sanctioned surface."""
