"""Exception-safe latch idioms: with-statement or immediate try/finally."""


class Store:
    def with_statement(self, page_id):
        with self.page_lock:
            return self.load_page(page_id)

    def acquire_try_finally(self, page_id):
        self.page_lock.acquire()
        try:
            return self.load_page(page_id)
        finally:
            self.page_lock.release()

    def timeout_acquire(self, page_id):
        got = self.page_lock.acquire(timeout=0.5)
        try:
            if not got:
                return None
            return self.load_page(page_id)
        finally:
            if got:
                self.page_lock.release()

    def lock_manager_calls_are_not_latches(self, txn_id, key):
        # a *lock manager* acquire (queued, timed out, deadlock-detected)
        # is not a bare latch: receiver name is not lock-shaped
        self.locks.acquire(txn_id, key)
        self.locks.release(txn_id, key)
