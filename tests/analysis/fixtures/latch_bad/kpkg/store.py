"""Latches that leak on exception paths. Parsed, never run."""


class Store:
    def unreleased_on_raise(self, page_id):
        # an exception in load_page() leaves the latch held forever
        self.page_lock.acquire()
        page = self.load_page(page_id)
        self.page_lock.release()
        return page

    def gap_before_try(self, page_id):
        self.page_lock.acquire()
        page = self.load_page(page_id)  # can raise before the try begins
        try:
            return self.pin(page)
        finally:
            self.page_lock.release()

    def conditional_release(self, flush):
        self.state_lock.acquire()
        if flush:
            self.flush_all()
        self.state_lock.release()
