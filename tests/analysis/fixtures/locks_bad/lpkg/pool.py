"""Equal-rank cycle: free→dirty in one method, dirty→free in another.
Neither edge is an inversion (same declared pattern), but together they
deadlock — only cycle detection catches this."""


class Pool:
    def promote(self):
        with self._free_lock:
            with self._dirty_lock:
                pass

    def demote(self):
        with self._dirty_lock:
            with self._free_lock:
                pass
