"""A lock participating in nesting that matches no declared-order pattern."""


class Rogue:
    def wander(self):
        with self._table_lock:
            with self._mystery_lock:
                pass
