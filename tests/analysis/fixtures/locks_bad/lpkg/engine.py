"""Inversion via one-level call propagation: commit holds the inner page
lock while the alias-resolved ``Wal.flush`` takes the outer table lock."""


class Engine:
    def commit(self):
        with self._page_lock:
            self._wal.flush()
