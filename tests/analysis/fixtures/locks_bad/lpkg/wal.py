"""Callee that takes the OUTER-rank table lock; inverted when called
under the page lock (see engine.py)."""


class Wal:
    def flush(self):
        with self._table_lock:
            pass
