"""Direct nested-with inversion: page (inner rank) held while taking
table (outer rank)."""


class Coordinator:
    def backwards(self):
        with self._page_lock:
            with self._table_lock:
                pass
