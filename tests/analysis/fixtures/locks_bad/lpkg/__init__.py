"""Analyzer fixture package: lock-order inversions, a cycle, an undeclared lock."""
