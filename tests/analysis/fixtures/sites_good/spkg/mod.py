"""Registered + used + tested fault site, conforming metric literals.
Must produce zero site-metric findings."""


def install(register_fault_site):
    register_fault_site("disk.write_ok", "one page written")


def hot_path(fault_point, registry):
    fault_point("disk.write_ok")
    writes = registry.counter("disk.pages_written")
    writes.inc()


def instrumented(record_event):
    record_event("wal.flush", flushed_lsn=1)


class DiskStats:
    FIELDS = {"writes": "disk.pages_written"}
