"""Analyzer fixture package: consistent fault sites and metric names."""
