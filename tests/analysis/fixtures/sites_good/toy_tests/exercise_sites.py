"""Corpus file: quotes the registered site so the coverage check passes."""

ARMED = "disk.write_ok"
