"""Sanctioned shapes: the same call structure as the violating fixture,
but every value is laundered through re-encryption before egress."""


def unwrap_sealed(crypto, cell):
    # decrypt then immediately re-encrypt: the sanctioned pipeline
    return crypto.encrypt_cell(crypto.decrypt(cell))


def emit(channel, payload):
    channel.send_frame(payload)
