"""Clean flows: helper calls, dataclasses, and wire sends are all fine
as long as only ciphertext (or conceded verdicts) reaches egress."""

from fpkg.helpers import emit, unwrap_sealed


def send_ciphertext(crypto, cell, channel):
    sealed = unwrap_sealed(crypto, cell)
    emit(channel, sealed)


def compare_verdict(crypto, cell, logger):
    # comparison results are conceded leakage — logging a verdict is fine
    match = crypto.decrypt(cell) == 7
    logger.info(match)


def reencrypt_before_send(crypto, cell, channel):
    value = crypto.decrypt(cell)
    channel.send_frame(crypto.encrypt_cell(value))
