"""Dispatcher with a duplicate arm, no catch-all raise, and no error
marshalling path."""

from ppkg.messages import Close, Exec, ExecReply, Open, OpenReply, Ping, Pong


class Server:
    def dispatch(self, request, sessions):
        if isinstance(request, Ping):
            return Pong()
        if isinstance(request, Open):
            return OpenReply()
        if isinstance(request, Close):
            sessions.pop(request, None)
            return Pong()
        if isinstance(request, Exec):
            return ExecReply()
        if isinstance(request, Ping):
            # dead arm: shadowed by the first Ping check
            return Pong()
        return None
