"""Protocol fixture with deliberate coverage holes. Parsed, never run."""


class Ping:
    OP = "ping"


class Pong:
    OP = "pong"


class Open:
    OP = "open"


class OpenReply:
    OP = "open_reply"


class Close:
    OP = "close"


class Exec:
    OP = "exec"


class ExecReply:
    OP = "exec_reply"


class Orphaned:
    # never dispatched, never constructed: a client sending it hangs
    OP = "orphaned"


class DupA:
    OP = "dup"


class DupB:
    # second claimant of the same opcode
    OP = "dup"


# stale acknowledgment: no such error class exists
NONRECONSTRUCTIBLE_ERRORS = ("GoneError",)
