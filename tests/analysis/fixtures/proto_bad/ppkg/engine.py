"""2PC transitions with the write-ahead contract broken."""


class Engine:
    def prepare(self, txn, gtid):
        # no LogOp.PREPARE append at all
        txn.state = TxnState.PREPARED
        self.prepared[gtid] = txn

    def commit_prepared(self, gtid):
        txn = self.prepared.pop(gtid)
        # state flips before the COMMIT record is durable
        txn.state = TxnState.COMMITTED
        self.wal.append(txn.txn_id, LogOp.COMMIT, table=gtid)
        return True

    def abort_silent(self, txn):
        # no ABORT record anywhere: recovery would resurrect the txn
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn.txn_id)

    def recover(self):
        for txn in self.indoubt():
            # recovery replays records instead of writing them: exempt
            txn.state = TxnState.PREPARED


class Coordinator:
    def two_phase_commit(self, branches, gtid):
        for branch in branches:
            branch.prepare_transaction(gtid)
        for branch in branches:
            # fan-out before the decision is durable
            branch.commit_prepared(gtid)
        self.decisions.record(gtid)
