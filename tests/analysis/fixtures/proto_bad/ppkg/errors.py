"""Error hierarchy with unacknowledged marshalling degradation."""


class ProtoError(Exception):
    pass


class PlainError(ProtoError):
    # no __init__: Exception(*args) reconstructs fine
    pass


class BadArity(ProtoError):
    # two required args: cls(message) raises TypeError, degrades silently
    def __init__(self, code, message):
        self.code = code
        super().__init__(message)


class SiteError(ProtoError):
    # one required arg, but it is NOT the message: cls(message) silently
    # stuffs the message into the site field — distortion, not refusal
    def __init__(self, site, message=None):
        self.site = site
        super().__init__(message or site)
