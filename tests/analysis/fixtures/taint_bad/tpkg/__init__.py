"""Analyzer fixture package: host code leaking decrypted plaintext."""
