"""Deliberate plaintext leaks, one per sink kind. Parsed by the
analyzer's test suite, never imported."""


def leak_return(crypto, cell):
    plain = crypto.decrypt(cell)
    return plain


def leak_log(crypto, cell):
    value = crypto.decrypt_cell(cell)
    print("cell:", value)


def leak_metric(crypto, cell, rows_counter):
    value = crypto.decrypt(cell)
    rows_counter.inc(value)


def leak_fstring(crypto, cell, logger):
    value = deserialize_value(crypto.decrypt(cell))
    logger.info(f"decrypted {value}")
