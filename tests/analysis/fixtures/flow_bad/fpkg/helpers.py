"""Helpers that move plaintext around — each one is invisible to a
per-function analysis and load-bearing for the interprocedural one."""


def unwrap(crypto, cell):
    # returns a source-tainted value: callers inherit the taint
    return crypto.decrypt(cell)


def emit(channel, payload):
    # parameter 1 reaches a wire sink: callers handing it plaintext leak
    channel.send_frame(payload)


def relay(channel, payload):
    # two hops: relay -> emit -> send_frame (fixpoint must chain summaries)
    emit(channel, payload)
