from dataclasses import dataclass


@dataclass
class Packet:
    """Constructing this from a tainted argument taints the instance."""

    payload: object
    tag: str = ""
