"""Interprocedural leaks: every flow here crosses at least one function
boundary, so the PR 4 per-function engine sees nothing. Parsed by the
analyzer's test suite, never imported."""

from fpkg.helpers import relay, unwrap
from fpkg.records import Packet


def leak_via_helper_return(crypto, cell, logger):
    # taint-through-helper: unwrap() returns decrypt() plaintext
    value = unwrap(crypto, cell)
    logger.info(value)


def leak_via_helper_sink(crypto, cell, channel):
    # decrypt -> helper chain -> frame send (wire-sink-via)
    value = crypto.decrypt(cell)
    relay(channel, value)


def leak_via_dataclass(crypto, cell, channel):
    # taint-through-dataclass: construction packs the plaintext field
    packet = Packet(payload=crypto.decrypt(cell))
    channel.send_frame(packet)


def leak_via_container(crypto, cell):
    rows = []
    rows.append(crypto.decrypt(cell))
    return rows


def leak_via_error_reply(crypto, cell):
    reason = crypto.decrypt(cell)
    ErrorReply(str(reason))
