"""Corpus file that does NOT mention disk.never_tested."""

ARMED = "disk.some_other_site"
