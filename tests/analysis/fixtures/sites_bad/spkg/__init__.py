"""Analyzer fixture package: every site/metric consistency violation."""
