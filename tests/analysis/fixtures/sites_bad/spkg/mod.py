"""One deliberate violation per site-metric check: dynamic site name,
unregistered fault_point, registered-but-untested site, bad metric name
(call and FIELDS map), and a counter/gauge kind conflict."""


def install(register_fault_site, dynamic_name):
    register_fault_site("disk.never_tested", "registered but untested")
    register_fault_site(dynamic_name, "dynamic")


def hot_path(fault_point, registry):
    fault_point("disk.unregistered")
    registry.counter("BadMetricName")
    registry.counter("disk.flips")
    registry.gauge("disk.flips")


def instrumented(record_event, computed_kind):
    record_event(computed_kind)             # dynamic event kind
    record_event("BadEventName")            # violates naming convention
    record_event("made.up_kind")            # not in the registered kinds


class DiskStats:
    FIELDS = {"writes": "Disk.PagesWritten"}
