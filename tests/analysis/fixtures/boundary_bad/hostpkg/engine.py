"""Deliberate trust-boundary violations. Parsed by the analyzer's test
suite, never imported — ``encl`` does not exist as a real package."""

from encl.runtime import Enclave
from encl import seal_secret


def poke(enclave, gateway):
    enclave._cek_store.clear()
    channel = enclave.sqlos
    gateway.drain()
    return channel, Enclave, seal_secret
