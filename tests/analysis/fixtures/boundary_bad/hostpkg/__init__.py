"""Analyzer fixture package: host code that violates the trust boundary."""
