"""Direct nesting in declared order (table above page). Zero findings."""


class Coordinator:
    def transfer(self):
        with self._table_lock:
            with self._page_lock:
                pass
