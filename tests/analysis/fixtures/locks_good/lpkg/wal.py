"""Callee acquiring an inner-rank lock; reached via alias propagation."""


class Wal:
    def flush(self):
        with self._page_lock:
            pass
