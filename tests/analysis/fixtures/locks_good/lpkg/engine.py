"""Held call resolved through the receiver-alias table: commit holds the
outer table lock while ``Wal.flush`` takes the inner page lock — declared
order, so zero findings."""


class Engine:
    def commit(self):
        with self._table_lock:
            self._wal.flush()
