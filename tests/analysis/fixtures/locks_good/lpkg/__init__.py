"""Analyzer fixture package: lock nesting consistent with the declared order."""
