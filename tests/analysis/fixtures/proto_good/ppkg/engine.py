"""2PC transitions honouring the write-ahead contract."""


class Engine:
    def prepare(self, txn, gtid):
        self.wal.append(txn.txn_id, LogOp.PREPARE, table=gtid)
        self.wal.flush()
        txn.state = TxnState.PREPARED
        self.prepared[gtid] = txn

    def commit_prepared(self, gtid):
        txn = self.prepared.pop(gtid)
        self.wal.append(txn.txn_id, LogOp.COMMIT, table=gtid)
        self.wal.flush()
        txn.state = TxnState.COMMITTED
        return True

    def abort_prepared(self, gtid):
        txn = self.prepared.pop(gtid)
        txn.state = TxnState.ABORTED
        # presumed abort: record order is free, but the record must exist
        self.wal.append(txn.txn_id, LogOp.ABORT, table=gtid)
        return True

    def recover(self):
        for txn in self.indoubt():
            txn.state = TxnState.PREPARED


class Coordinator:
    def two_phase_commit(self, branches, gtid):
        prepared = []
        try:
            for branch in branches:
                branch.prepare_transaction(gtid)
                prepared.append(branch)
        except Exception:
            for branch in prepared:
                branch.abort_prepared(gtid)
            raise
        self.decisions.record(gtid)
        for branch in branches:
            branch.commit_prepared(gtid)
