"""Total protocol: every opcode has one class, every class is routed."""


class Ping:
    OP = "ping"


class Pong:
    OP = "pong"


class Open:
    OP = "open"


class OpenReply:
    OP = "open_reply"


class Close:
    OP = "close"


class Exec:
    OP = "exec"


class ExecReply:
    OP = "exec_reply"


class Audit:
    OP = "audit"


class AuditReply:
    OP = "audit_reply"


class ErrorReply:
    OP = "error"


def error_reply_for(exc):
    return ErrorReply()


# WideError genuinely takes two args (see errors.py) — acknowledged here
NONRECONSTRUCTIBLE_ERRORS = ("WideError",)
