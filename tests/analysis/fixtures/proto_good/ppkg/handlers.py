"""A total dispatcher: one arm per request, catch-all raise, error path."""

from ppkg.messages import (
    Audit,
    AuditReply,
    Close,
    Exec,
    ExecReply,
    Open,
    OpenReply,
    Ping,
    Pong,
    error_reply_for,
)


class Server:
    def serve(self, channel, request, sessions):
        try:
            reply = self.dispatch(request, sessions)
        except Exception as exc:
            reply = error_reply_for(exc)
        channel.send(reply)

    def dispatch(self, request, sessions):
        if isinstance(request, Ping):
            return Pong()
        if isinstance(request, Open):
            return OpenReply()
        if isinstance(request, Close):
            sessions.pop(request, None)
            return Pong()
        if isinstance(request, Exec):
            return ExecReply()
        if isinstance(request, Audit):
            return AuditReply()
        raise ValueError(f"unhandled message {type(request).__name__!r}")
