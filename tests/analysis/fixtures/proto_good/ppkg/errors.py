"""Error hierarchy where every marshalling gap is closed or acknowledged."""


class ProtoError(Exception):
    pass


class PlainError(ProtoError):
    pass


class MessageError(ProtoError):
    # single required arg named message: cls(message) is faithful
    def __init__(self, message):
        super().__init__(message)


class SiteError(ProtoError):
    # non-message constructor, but an explicit wire rebuild path
    def __init__(self, site, message=None):
        self.site = site
        super().__init__(message or site)

    @classmethod
    def from_wire(cls, message):
        return cls("<remote>", message)


class WideError(ProtoError):
    # two required args — acknowledged in NONRECONSTRUCTIBLE_ERRORS
    def __init__(self, code, message):
        self.code = code
        super().__init__(message)
