"""Analyzer fixture package: sanctioned handling of decrypted values."""
