"""Sanctioned egress patterns the taint rule must NOT flag: re-encryption
launders, comparison verdicts are conceded leakage, and untainted log
arguments are fine. Must produce zero plaintext-taint findings."""


def reencrypt(crypto, cell):
    plain = crypto.decrypt(cell)
    return crypto.encrypt_cell(plain)


def verdict(crypto, left, right):
    return crypto.decrypt(left) == crypto.decrypt(right)


def log_metadata(crypto, cell, logger):
    plain = crypto.decrypt(cell)
    logger.info("decrypted one cell of %d bytes", len(cell))
    return crypto.encrypt_cell(plain)
