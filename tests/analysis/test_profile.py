"""Profiling and the CI perf budget: one parse, shared flow structures,
per-phase timings, --profile output, --budget-seconds ratchet."""

from __future__ import annotations

import pytest

from repro.analysis.cli import main
from repro.analysis.config import default_config
from repro.analysis.engine import AnalysisEngine
from repro.analysis.model import ProjectModel
from repro.analysis.rules import ALL_RULES

#: generous CI ceiling — the full battery runs in ~1s; the budget exists
#: to catch an accidental quadratic blow-up, not to race the scheduler.
CI_BUDGET_SECONDS = 60.0


@pytest.fixture(scope="module")
def report():
    return AnalysisEngine(default_config(), ALL_RULES).run()


def test_timings_cover_every_phase(report):
    assert list(report.timings)[:2] == ["model", "taint-flow"]
    assert list(report.timings)[2:] == [rule.name for rule in ALL_RULES]
    assert all(seconds >= 0.0 for seconds in report.timings.values())
    assert report.total_seconds == pytest.approx(sum(report.timings.values()))


def test_full_battery_fits_the_ci_budget(report):
    assert report.total_seconds < CI_BUDGET_SECONDS


def test_shared_model_and_flow_are_memoized():
    # the engine parses each file once: a second run against the same
    # prebuilt model must not rebuild call graph or taint summaries
    config = default_config()
    model = ProjectModel.build(config.root, config.packages)

    from repro.analysis.callgraph import get_callgraph
    from repro.analysis.taintflow import get_taintflow

    graph_a = get_callgraph(model, config)
    flow_a = get_taintflow(model, config)
    assert get_callgraph(model, config) is graph_a
    assert get_taintflow(model, config) is flow_a


def test_profile_flag_prints_phase_breakdown(capsys):
    assert main(["--strict", "--profile"]) == 0
    out = capsys.readouterr().out
    for phase in ("model", "taint-flow", "total"):
        assert f"profile {phase:16s}" in out
    for rule in ALL_RULES:
        assert f"profile {rule.name:16s}" in out


def test_budget_flag_fails_when_exceeded(capsys):
    assert main(["--strict", "--budget-seconds", "0.000001"]) == 1
    err = capsys.readouterr().err
    assert "exceeds" in err


def test_budget_flag_passes_within_budget():
    assert main(["--strict", "--budget-seconds", str(CI_BUDGET_SECONDS)]) == 0
