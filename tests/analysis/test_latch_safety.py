"""Latch exception-safety rule: every bare acquire is released on all
paths (with-statement or immediate try/finally), every release lives in
a finally block."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig


def config(root, **kwargs) -> AnalysisConfig:
    return AnalysisConfig(root=root, packages=("kpkg",), **kwargs)


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.latch_safety import LatchSafetyRule

    return LatchSafetyRule()


def test_violating_fixture_flags_every_leak_shape(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "latch_bad"))
    by_symbol = {}
    for f in findings:
        by_symbol.setdefault(f.symbol, set()).add(f.key)
    # release present but not exception-safe: both ends flagged
    assert by_symbol["Store.unreleased_on_raise"] == {
        "bare-acquire:self.page_lock",
        "release-outside-finally:self.page_lock",
    }
    # a raising statement between acquire and try leaks the latch
    assert by_symbol["Store.gap_before_try"] == {"bare-acquire:self.page_lock"}
    assert by_symbol["Store.conditional_release"] == {
        "bare-acquire:self.state_lock",
        "release-outside-finally:self.state_lock",
    }
    assert all(f.rule == "latch-safety" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "latch_good")) == []


def test_exempt_modules_are_skipped(rule, run_rule, fixtures_dir):
    cfg = config(fixtures_dir / "latch_bad", latch_exempt=("kpkg.store",))
    assert run_rule(rule, cfg) == []


def test_real_tree_is_clean(rule, run_rule):
    from repro.analysis.config import default_config

    assert run_rule(rule, default_config()) == []
