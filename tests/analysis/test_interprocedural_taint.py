"""Interprocedural taint: flows through helper returns, helper sinks,
dataclass construction and container packing — all invisible to the old
per-function engine.

The ``flow_bad`` package is the acceptance fixture from the issue: a
decrypt routed through a helper into a frame send must be flagged by the
summary-based engine AND provably missed when ``interprocedural=False``
pins the old behaviour.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.config import AnalysisConfig, TaintConfig
from repro.analysis.model import ProjectModel
from repro.analysis.taintflow import get_taintflow


def keys_of(findings) -> set:
    return {f.key for f in findings}


def config(root, **taint_kwargs) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        packages=("fpkg",),
        taint_packages=("fpkg",),
        taint=TaintConfig(**taint_kwargs),
    )


@pytest.fixture(scope="module")
def taint_rule():
    from repro.analysis.rules.plaintext_taint import PlaintextTaintRule

    return PlaintextTaintRule()


@pytest.fixture(scope="module")
def egress_rule():
    from repro.analysis.rules.wire_egress import WireEgressRule

    return WireEgressRule()


class TestSummaries:
    def test_helper_return_summary(self, fixtures_dir):
        cfg = config(fixtures_dir / "flow_bad")
        model = ProjectModel.build(cfg.root, cfg.packages)
        flow = get_taintflow(model, cfg)
        unwrap = flow.summaries["fpkg.helpers:unwrap"]
        assert unwrap.returns_source

    def test_helper_sink_summary(self, fixtures_dir):
        cfg = config(fixtures_dir / "flow_bad")
        model = ProjectModel.build(cfg.root, cfg.packages)
        flow = get_taintflow(model, cfg)
        # emit(channel, payload): payload flows to a wire sink; relay
        # inherits it transitively through the fixpoint.
        emit_params = {p for p, _, _ in flow.summaries["fpkg.helpers:emit"].param_sinks}
        relay_params = {p for p, _, _ in flow.summaries["fpkg.helpers:relay"].param_sinks}
        assert 1 in emit_params
        assert 1 in relay_params

    def test_sanitizer_kills_summary(self, fixtures_dir):
        cfg = config(fixtures_dir / "flow_good")
        model = ProjectModel.build(cfg.root, cfg.packages)
        flow = get_taintflow(model, cfg)
        # re-encryption launders: the helper contributes no signature at
        # all (only non-trivial summaries are stored)
        sealed = flow.summaries.get("fpkg.helpers:unwrap_sealed")
        assert sealed is None or not sealed.returns_source


class TestPlaintextTaintInterprocedural:
    def test_flags_flows_through_helpers(self, taint_rule, run_rule, fixtures_dir):
        findings = run_rule(taint_rule, config(fixtures_dir / "flow_bad"))
        by_symbol = {f.symbol: f.key for f in findings}
        # decrypt hidden behind helpers.unwrap, logged by the caller
        assert by_symbol["leak_via_helper_return"] == "log-sink:info"
        # container packing: rows.append(decrypt(...)) then return rows
        assert by_symbol["leak_via_container"] == "return-plaintext"
        # the helper itself returns plaintext across a boundary
        assert by_symbol["unwrap"] == "return-plaintext"

    def test_clean_fixture_is_quiet(self, taint_rule, run_rule, fixtures_dir):
        assert run_rule(taint_rule, config(fixtures_dir / "flow_good")) == []


class TestOldEngineComparison:
    """The acceptance test: same fixture, both engine generations."""

    def test_new_engine_catches_decrypt_helper_framesend(
        self, egress_rule, run_rule, fixtures_dir
    ):
        findings = run_rule(egress_rule, config(fixtures_dir / "flow_bad"))
        keys = keys_of(findings)
        assert "wire-sink-via:relay" in keys  # decrypt -> relay -> emit -> send_frame

    def test_old_engine_misses_the_same_flow(
        self, egress_rule, run_rule, fixtures_dir
    ):
        cfg = config(fixtures_dir / "flow_bad", interprocedural=False)
        keys = keys_of(run_rule(egress_rule, cfg))
        # Intra-procedural view: ``relay`` is an unresolved black box, the
        # decrypt value disappears into it, nothing is flagged.
        assert "wire-sink-via:relay" not in keys

    def test_interprocedural_flag_is_frozen_config(self):
        assert dataclasses.fields(TaintConfig)  # frozen dataclass, not ad hoc
        with pytest.raises(dataclasses.FrozenInstanceError):
            TaintConfig().interprocedural = False
