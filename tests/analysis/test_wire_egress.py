"""Wire-egress rule: plaintext must never reach a frame/transport send,
an ErrorReply construction, or a log/trace sink in another function."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig, TaintConfig


def config(root) -> AnalysisConfig:
    return AnalysisConfig(root=root, packages=("fpkg",), taint_packages=("fpkg",))


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.wire_egress import WireEgressRule

    return WireEgressRule()


def test_violating_fixture_flags_every_egress_shape(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "flow_bad"))
    by_symbol = {f.symbol: f.key for f in findings}
    # direct helper-sink chain: decrypt -> relay(...) -> emit -> send_frame
    assert by_symbol["leak_via_helper_sink"] == "wire-sink-via:relay"
    # dataclass smuggling: Packet(payload=decrypt(...)) then send_frame(pkt)
    assert by_symbol["leak_via_dataclass"] == "wire-sink:send_frame"
    # plaintext folded into an ErrorReply leaves in an error frame
    assert by_symbol["leak_via_error_reply"] == "error-reply-sink:ErrorReply"
    assert all(f.rule == "wire-egress" for f in findings)


def test_clean_fixture_is_quiet(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "flow_good")) == []


def test_reencryption_before_send_is_sanctioned(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "flow_good"))
    assert not any(f.symbol == "reencrypt_before_send" for f in findings)


def test_rule_gated_on_taint_packages(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(
        root=fixtures_dir / "flow_bad", packages=("fpkg",), taint_packages=()
    )
    assert run_rule(rule, cfg) == []


def test_custom_wire_sinks_extend_the_family(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(
        root=fixtures_dir / "flow_bad",
        packages=("fpkg",),
        taint_packages=("fpkg",),
        taint=TaintConfig(wire_sinks=()),
    )
    keys = {f.key for f in run_rule(rule, cfg)}
    # with no configured wire sinks, only the ErrorReply finding remains
    assert "wire-sink:send_frame" not in keys
