"""Call graph construction and the conservative resolution ladder."""

from __future__ import annotations

import pytest

from repro.analysis.callgraph import get_callgraph
from repro.analysis.config import default_config
from repro.analysis.model import ProjectModel


@pytest.fixture(scope="module")
def graph():
    config = default_config()
    model = ProjectModel.build(config.root, config.packages)
    return get_callgraph(model, config)


def test_every_project_function_is_registered(graph):
    assert "repro.sqlengine.engine:StorageEngine.prepare" in graph.functions
    assert "repro.net.messages:error_reply_for" in graph.functions
    entry = graph.functions["repro.net.messages:error_reply_for"]
    assert entry.params[0] == "exc"


def test_self_method_edges_resolve(graph):
    # WireServer._serve_connection calls self._dispatch
    caller = graph.functions["repro.net.wireserver:WireServer._serve_connection"]
    assert "repro.net.wireserver:WireServer._dispatch" in caller.callees


def test_import_binding_edges_resolve(graph):
    # router.py does ``from repro.net.messages import decode_message``
    caller = graph.functions["repro.net.router:RouterSession.execute_fast"]
    assert "repro.net.messages:decode_message" in caller.callees


def test_receiver_alias_edges_resolve(graph):
    # ``self.wal.append`` resolves through the lock-order alias table
    caller = graph.functions["repro.sqlengine.engine:StorageEngine.prepare"]
    assert "repro.sqlengine.storage.wal:WriteAheadLog.append" in caller.callees


def test_callers_are_the_reverse_of_callees(graph):
    callee = graph.functions["repro.net.wireserver:WireServer._dispatch"]
    assert "repro.net.wireserver:WireServer._serve_connection" in callee.callers


def test_builtin_colliding_names_do_not_fallback(graph):
    # Unqualified ``get``/``append``/``items`` must never resolve through
    # the unique-name fallback: they collide with container methods.
    for entry in graph.functions.values():
        for callee_fid in entry.callees:
            assert ":" in callee_fid


def test_class_constructions_are_indexed(graph):
    assert "repro.net.messages:ErrorReply" in graph.classes
