"""Shared helpers for the analyzer's own test suite.

Each rule family gets a pair of fixture packages under ``fixtures/``
(one deliberately violating, one clean); tests build bespoke
:class:`~repro.analysis.config.AnalysisConfig` objects pointing at those
roots — the default (real-tree) configuration is exercised separately in
``test_real_tree.py`` and ``test_injection.py``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisEngine

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture(scope="session")
def run_rule():
    """run_rule(rule, config) -> list of findings from that rule alone."""

    def _run(rule, config):
        return AnalysisEngine(config, rules=(rule,)).run().new

    return _run


def keys_of(findings) -> set:
    return {f.key for f in findings}
