"""Trust-boundary rule: positive (violating fixture) and negative
(clean fixture) coverage against a miniature ecall surface."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig
from repro.enclave import EcallSurface

SURFACE = EcallSurface(
    ecalls=frozenset({"eval", "compare"}),
    observable=frozenset({"measure"}),
    gateway=frozenset({"eval_batch"}),
    importable=frozenset({"Enclave", "CallMode"}),
)


def config(root) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        packages=("hostpkg",),
        host_packages=("hostpkg",),
        enclave_package="encl",
        surface=SURFACE,
    )


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.trust_boundary import TrustBoundaryRule

    return TrustBoundaryRule()


def test_violating_fixture_flags_every_reach(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "boundary_bad"))
    keys = {f.key for f in findings}
    assert "import:encl.runtime.Enclave" in keys          # submodule import
    assert "import:encl.seal_secret" in keys              # non-importable facade name
    assert "private:enclave._cek_store" in keys           # private state reach
    assert "off-surface:enclave.sqlos" in keys            # undeclared enclave attr
    assert "off-surface:gateway.drain" in keys            # undeclared gateway attr
    assert all(f.rule == "trust-boundary" for f in findings)
    assert all(f.path == "hostpkg/engine.py" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "boundary_good")) == []


def test_enclave_package_itself_is_exempt(rule, run_rule, fixtures_dir):
    # Same violating tree, but declared as the enclave package rather
    # than a host package: internal access is its prerogative.
    cfg = AnalysisConfig(
        root=fixtures_dir / "boundary_bad",
        packages=("hostpkg",),
        host_packages=(),
        enclave_package="hostpkg",
        surface=SURFACE,
    )
    assert run_rule(rule, cfg) == []
