"""Acceptance check from the issue: injecting any single violation into
a copy of ``src/repro`` makes ``--strict`` exit non-zero with a finding
from the correct rule family, under the *default* configuration.

The tree is copied once per module; each test drops in (or appends) one
violation, runs the CLI against the copy, and restores the tree.
"""

from __future__ import annotations

import shutil
import textwrap

import pytest

from repro.analysis.cli import main
from repro.analysis.config import repo_root


@pytest.fixture(scope="module")
def tree_copy(tmp_path_factory):
    root = tmp_path_factory.mktemp("injected") / "src"
    root.mkdir()
    shutil.copytree(repo_root() / "src" / "repro", root / "repro")
    return root


def run_strict(root) -> int:
    return main(["--root", str(root), "--strict"])


def test_unmodified_copy_is_clean(tree_copy):
    assert run_strict(tree_copy) == 0


def assert_family_fires(capsys, tree_copy, family, marker):
    assert run_strict(tree_copy) == 1
    out = capsys.readouterr().out
    hits = [line for line in out.splitlines() if f"[{family}]" in line]
    assert hits, f"no {family} finding reported:\n{out}"
    assert any(marker in line for line in hits)


def test_boundary_violation_fires(tree_copy, capsys):
    evil = tree_copy / "repro" / "sqlengine" / "evil_boundary.py"
    evil.write_text(
        "from repro.enclave.runtime import Enclave\n"
        "\n"
        "def peek(enclave):\n"
        "    return enclave._sessions\n"
    )
    try:
        assert_family_fires(capsys, tree_copy, "trust-boundary", "evil_boundary.py")
    finally:
        evil.unlink()


def test_taint_violation_fires(tree_copy, capsys):
    evil = tree_copy / "repro" / "sqlengine" / "evil_taint.py"
    evil.write_text(
        "def leak(crypto, cell):\n"
        "    value = crypto.decrypt(cell)\n"
        "    print('plaintext:', value)\n"
        "    return value\n"
    )
    try:
        assert_family_fires(capsys, tree_copy, "plaintext-taint", "evil_taint.py")
    finally:
        evil.unlink()


def test_lock_order_violation_fires(tree_copy, capsys):
    # Append to bufferpool.py so the lock id lands in a *declared* rank:
    # bufferpool (inner) held while taking the lock manager's (outermost)
    # lock through the "locks" receiver alias — an inversion.
    bufferpool = tree_copy / "repro" / "sqlengine" / "storage" / "bufferpool.py"
    original = bufferpool.read_text()
    bufferpool.write_text(original + textwrap.dedent("""

        class EvilPool:
            def invert(self):
                with self._page_lock:
                    with self.locks._queue_lock:
                        pass
    """))
    try:
        assert_family_fires(capsys, tree_copy, "lock-order", "inversion")
    finally:
        bufferpool.write_text(original)


def test_site_violation_fires(tree_copy, capsys):
    evil = tree_copy / "repro" / "sqlengine" / "evil_sites.py"
    evil.write_text(
        "def hot(fault_point):\n"
        "    fault_point('totally.bogus_site')\n"
    )
    try:
        assert_family_fires(capsys, tree_copy, "site-metric", "totally.bogus_site")
    finally:
        evil.unlink()


def test_wire_egress_violation_fires(tree_copy, capsys):
    # the interprocedural case: the decrypt and the frame send live in
    # different functions, so only the summary-based engine can see it
    evil = tree_copy / "repro" / "net" / "evil_egress.py"
    evil.write_text(
        "def emit(channel, payload):\n"
        "    channel.send_frame(payload)\n"
        "\n"
        "def leak(crypto, cell, channel):\n"
        "    emit(channel, crypto.decrypt(cell))\n"
    )
    try:
        assert_family_fires(capsys, tree_copy, "wire-egress", "evil_egress.py")
    finally:
        evil.unlink()


def test_protocol_typestate_violation_fires(tree_copy, capsys):
    # an error subclass reconstruct_error cannot rebuild, not acknowledged
    # in NONRECONSTRUCTIBLE_ERRORS
    errors = tree_copy / "repro" / "errors.py"
    original = errors.read_text()
    errors.write_text(original + textwrap.dedent("""

        class EvilWideError(ReproError):
            def __init__(self, code, message):
                self.code = code
                super().__init__(message)
    """))
    try:
        assert_family_fires(capsys, tree_copy, "protocol-typestate", "EvilWideError")
    finally:
        errors.write_text(original)


def test_latch_safety_violation_fires(tree_copy, capsys):
    evil = tree_copy / "repro" / "sqlengine" / "evil_latch.py"
    evil.write_text(
        "class EvilCache:\n"
        "    def touch(self, key):\n"
        "        self.state_lock.acquire()\n"
        "        value = self.compute(key)\n"
        "        self.state_lock.release()\n"
        "        return value\n"
    )
    try:
        assert_family_fires(capsys, tree_copy, "latch-safety", "state_lock")
    finally:
        evil.unlink()
