"""Baseline mechanism: suppression by line-free fingerprint, stale-entry
expiry, and the strict-mode exit codes that make it a ratchet."""

from __future__ import annotations

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisEngine


def taint_config(root, baseline_path=None) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        packages=("tpkg",),
        taint_packages=("tpkg",),
        baseline_path=baseline_path,
    )


def run(config):
    from repro.analysis.rules.plaintext_taint import PlaintextTaintRule

    return AnalysisEngine(config, rules=(PlaintextTaintRule(),)).run()


FINGERPRINT = "plaintext-taint|tpkg/pipeline.py|leak_return|return-plaintext"


def test_baselined_finding_is_suppressed(fixtures_dir, tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(f"{FINGERPRINT}  # fixture: grandfathered on purpose\n")
    report = run(taint_config(fixtures_dir / "taint_bad", baseline))
    assert FINGERPRINT in {f.fingerprint for f in report.suppressed}
    assert FINGERPRINT not in {f.fingerprint for f in report.new}
    assert report.new  # the other leaks still fail the build
    assert report.stale_baseline == []


def test_stale_entry_is_reported(fixtures_dir, tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "# comment lines and blanks are ignored\n\n"
        f"{FINGERPRINT}  # still valid\n"
        "plaintext-taint|tpkg/gone.py|vanished|return-plaintext  # code was deleted\n"
    )
    report = run(taint_config(fixtures_dir / "taint_bad", baseline))
    assert [e.fingerprint for e in report.stale_baseline] == [
        "plaintext-taint|tpkg/gone.py|vanished|return-plaintext"
    ]


def test_missing_baseline_file_is_empty(fixtures_dir, tmp_path):
    report = run(taint_config(fixtures_dir / "taint_bad", tmp_path / "nope.txt"))
    assert report.suppressed == [] and report.stale_baseline == []
    assert report.new


def test_cli_strict_fails_on_stale_entry(tmp_path, capsys):
    # Real tree + real baseline passes (see test_real_tree); the same
    # baseline with one dead entry appended must flip --strict to 1.
    from repro.analysis.cli import main
    from repro.analysis.config import repo_root

    real = (repo_root() / "analysis-baseline.txt").read_text()
    doctored = tmp_path / "baseline.txt"
    doctored.write_text(real + "lock-order|repro/nope.py|gone|cycle:x->y  # dead\n")
    assert main(["--strict", "--baseline", str(doctored)]) == 1
    out = capsys.readouterr().out
    assert "stale baseline entry" in out
