"""Site-metric rule: every consistency check fires on the violating
fixture, the clean fixture stays quiet, and the analyzer's metric-name
regex cannot drift from the runtime registry's."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig


def config(root) -> AnalysisConfig:
    return AnalysisConfig(
        root=root, packages=("spkg",), tests_root=root / "toy_tests"
    )


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.consistency import SiteMetricConsistencyRule

    return SiteMetricConsistencyRule()


def test_violating_fixture_flags_every_check(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "sites_bad"))
    keys = {f.key for f in findings}
    assert "dynamic-site:register_fault_site" in keys
    assert "unregistered-site:disk.unregistered" in keys
    assert "untested-site:disk.never_tested" in keys
    assert "metric-name:BadMetricName" in keys
    assert "metric-name:Disk.PagesWritten" in keys      # FIELDS map value
    assert "metric-kind-conflict:disk.flips" in keys
    assert all(f.rule == "site-metric" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "sites_good")) == []


def test_missing_tests_root_disables_coverage_check(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(root=fixtures_dir / "sites_bad", packages=("spkg",))
    keys = {f.key for f in run_rule(rule, cfg)}
    assert not any(k.startswith("untested-site:") for k in keys)
    assert "unregistered-site:disk.unregistered" in keys  # static checks remain


def test_metric_regex_identical_to_runtime_registry():
    from repro.analysis.rules.consistency import METRIC_NAME_RE as analyzer_re
    from repro.obs.metrics import METRIC_NAME_RE as runtime_re

    assert analyzer_re.pattern == runtime_re.pattern
