"""Site-metric rule: every consistency check fires on the violating
fixture, the clean fixture stays quiet, and the analyzer's metric-name
regex cannot drift from the runtime registry's."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig


def config(root) -> AnalysisConfig:
    return AnalysisConfig(
        root=root, packages=("spkg",), tests_root=root / "toy_tests",
        event_kinds=("stmt.begin", "wal.flush"),
    )


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.consistency import SiteMetricConsistencyRule

    return SiteMetricConsistencyRule()


def test_violating_fixture_flags_every_check(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "sites_bad"))
    keys = {f.key for f in findings}
    assert "dynamic-site:register_fault_site" in keys
    assert "unregistered-site:disk.unregistered" in keys
    assert "untested-site:disk.never_tested" in keys
    assert "metric-name:BadMetricName" in keys
    assert "metric-name:Disk.PagesWritten" in keys      # FIELDS map value
    assert "metric-kind-conflict:disk.flips" in keys
    assert "dynamic-event:record_event" in keys
    assert "event-name:BadEventName" in keys
    assert "unregistered-event:made.up_kind" in keys
    assert all(f.rule == "site-metric" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "sites_good")) == []


def test_missing_tests_root_disables_coverage_check(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(root=fixtures_dir / "sites_bad", packages=("spkg",))
    keys = {f.key for f in run_rule(rule, cfg)}
    assert not any(k.startswith("untested-site:") for k in keys)
    assert "unregistered-site:disk.unregistered" in keys  # static checks remain


def test_empty_event_kinds_disables_registration_check(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(
        root=fixtures_dir / "sites_bad", packages=("spkg",)
    )
    keys = {f.key for f in run_rule(rule, cfg)}
    assert not any(k.startswith("unregistered-event:") for k in keys)
    assert "event-name:BadEventName" in keys     # naming always enforced
    assert "dynamic-event:record_event" in keys


def test_default_config_registers_the_runtime_event_kinds():
    from repro.analysis.config import default_config
    from repro.obs.flightrec import EVENT_KINDS

    assert set(default_config().event_kinds) == set(EVENT_KINDS)


def test_metric_regex_identical_to_runtime_registry():
    from repro.analysis.rules.consistency import METRIC_NAME_RE as analyzer_re
    from repro.obs.flightrec import EVENT_NAME_RE as event_re
    from repro.obs.metrics import METRIC_NAME_RE as runtime_re

    assert analyzer_re.pattern == runtime_re.pattern
    # Event kinds share the convention: one regex, no drift.
    assert event_re.pattern == runtime_re.pattern
