"""Protocol-typestate rule: opcode coverage, dispatch totality, 2PC
write-ahead ordering, coordinator durability, and total error
marshalling — on fixtures and on the real tree."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig, ProtocolConfig

GOOD_OPCODES = (
    "ping", "pong", "open", "open_reply", "close",
    "exec", "exec_reply", "audit", "audit_reply", "error",
)
BAD_OPCODES = (
    "ping", "pong", "open", "open_reply", "close",
    "exec", "exec_reply", "orphaned", "dup",
    "ghost",  # registered but has no message dataclass
)


def config(root, opcode_names) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        packages=("ppkg",),
        opcode_names=opcode_names,
        protocol=ProtocolConfig(
            handler_modules=("ppkg.handlers",),
            messages_module="ppkg.messages",
            errors_module="ppkg.errors",
            error_base="ProtoError",
            engine_modules=("ppkg.engine",),
        ),
    )


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.protocol_typestate import ProtocolTypestateRule

    return ProtocolTypestateRule()


@pytest.fixture(scope="module")
def bad_findings(rule, run_rule, fixtures_dir):
    return run_rule(rule, config(fixtures_dir / "proto_bad", BAD_OPCODES))


class TestOpcodeCoverage:
    def test_duplicate_opcode_claim(self, bad_findings):
        keys = {f.key for f in bad_findings}
        assert "duplicate-message:dup" in keys

    def test_registered_opcode_without_message(self, bad_findings):
        keys = {f.key for f in bad_findings}
        assert "opcode-without-message:ghost" in keys

    def test_unrouted_message_classes(self, bad_findings):
        unrouted = {f.symbol for f in bad_findings if f.key.startswith("unrouted")}
        assert unrouted == {"Orphaned", "DupA", "DupB"}

    def test_duplicate_dispatch_arm_is_dead_code(self, bad_findings):
        assert any(f.key == "duplicate-handler:Ping" for f in bad_findings)

    def test_dispatcher_must_end_in_raise(self, bad_findings):
        falls = [f for f in bad_findings if f.key == "handler-falls-through"]
        assert [f.symbol for f in falls] == ["Server.dispatch"]

    def test_handler_module_must_marshal_errors(self, bad_findings):
        assert any(f.key == "missing-error-path" for f in bad_findings)


class TestTwoPhaseCommitOrdering:
    def test_prepare_without_wal_append(self, bad_findings):
        hits = [f for f in bad_findings if f.key == "state-before-log:PREPARED"]
        assert [f.symbol for f in hits] == ["Engine.prepare"]

    def test_commit_state_before_commit_record(self, bad_findings):
        hits = [f for f in bad_findings if f.key == "state-before-log:COMMITTED"]
        assert [f.symbol for f in hits] == ["Engine.commit_prepared"]

    def test_abort_without_any_record(self, bad_findings):
        hits = [f for f in bad_findings if f.key == "state-without-log:ABORTED"]
        assert [f.symbol for f in hits] == ["Engine.abort_silent"]

    def test_recovery_functions_are_exempt(self, bad_findings):
        assert not any(f.symbol == "Engine.recover" for f in bad_findings)

    def test_coordinator_commit_before_durable_decision(self, bad_findings):
        hits = [f for f in bad_findings if f.key == "commit-before-decision"]
        assert [f.symbol for f in hits] == ["Coordinator.two_phase_commit"]

    def test_coordinator_without_abort_path(self, bad_findings):
        keys = {f.key for f in bad_findings}
        assert "prepare-without-abort-path" in keys


class TestErrorMarshalling:
    def test_two_required_args_degrade(self, bad_findings):
        keys = {f.key for f in bad_findings}
        assert "unmarshallable-error:BadArity" in keys

    def test_single_nonmessage_arg_distorts(self, bad_findings):
        # SiteError(site, message=None): cls(message) silently stuffs the
        # whole message into the site field — distortion, flagged
        keys = {f.key for f in bad_findings}
        assert "unmarshallable-error:SiteError" in keys

    def test_stale_registry_entries_rot(self, bad_findings):
        keys = {f.key for f in bad_findings}
        assert "stale-unmarshallable:GoneError" in keys


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "proto_good", GOOD_OPCODES))
    assert findings == []


def test_bad_fixture_has_no_extra_findings(bad_findings):
    expected = {
        "duplicate-message:dup", "opcode-without-message:ghost",
        "unrouted-opcode:orphaned", "unrouted-opcode:dup",
        "duplicate-handler:Ping", "handler-falls-through",
        "missing-error-path",
        "state-before-log:PREPARED", "state-before-log:COMMITTED",
        "state-without-log:ABORTED",
        "commit-before-decision", "prepare-without-abort-path",
        "unmarshallable-error:BadArity", "unmarshallable-error:SiteError",
        "stale-unmarshallable:GoneError",
    }
    assert {f.key for f in bad_findings} == expected


class TestRealTree:
    """The repository's own wire protocol satisfies every contract."""

    @pytest.fixture(scope="class")
    def real_findings(self, rule, run_rule):
        from repro.analysis.config import default_config

        return run_rule(rule, default_config())

    def test_real_tree_is_clean(self, real_findings):
        assert real_findings == []

    def test_every_registry_opcode_has_a_message(self):
        import repro.net.messages as messages
        from repro.net.opcodes import OPCODES

        by_op = {
            cls.OP
            for cls in vars(messages).values()
            if isinstance(cls, type) and hasattr(cls, "OP")
        }
        assert set(OPCODES) == by_op

    def test_every_error_subclass_is_reconstructible_or_registered(self):
        import repro.errors as errors_mod
        from repro.errors import RemoteError, ReproError
        from repro.net.messages import (
            NONRECONSTRUCTIBLE_ERRORS,
            error_reply_for,
            reconstruct_error,
        )

        for name in dir(errors_mod):
            cls = getattr(errors_mod, name)
            if not (isinstance(cls, type) and issubclass(cls, ReproError)):
                continue
            if cls is ReproError or name in NONRECONSTRUCTIBLE_ERRORS:
                continue
            try:
                exc = cls("probe message")
            except TypeError:
                pytest.fail(f"{name} is unregistered yet not message-constructible")
            rebuilt = reconstruct_error(error_reply_for(exc))
            assert type(rebuilt) is cls, name
            assert not isinstance(rebuilt, RemoteError)

    def test_fault_site_survives_the_wire(self):
        # the genuine bug this family surfaced: cls(message) used to stuff
        # the whole message text into FaultInjected.site
        from repro.errors import TransientFault
        from repro.net.messages import error_reply_for, reconstruct_error

        original = TransientFault("net.send_frame")
        rebuilt = reconstruct_error(error_reply_for(original))
        assert type(rebuilt) is TransientFault
        assert rebuilt.site == "net.send_frame"
        assert str(rebuilt) == str(original)

    def test_custom_fault_message_keeps_text_marks_site_remote(self):
        from repro.errors import FatalFault
        from repro.net.messages import error_reply_for, reconstruct_error

        original = FatalFault("disk.write", "device vanished")
        rebuilt = reconstruct_error(error_reply_for(original))
        assert type(rebuilt) is FatalFault
        assert str(rebuilt) == "device vanished"
        assert rebuilt.site == "<remote>"

    def test_registry_is_append_only_and_current(self):
        from repro.net.messages import NONRECONSTRUCTIBLE_ERRORS

        assert NONRECONSTRUCTIBLE_ERRORS == ("RemoteError",)
