"""Lock-order rule: inversion (direct and via alias-resolved call),
equal-rank cycle, undeclared lock — and zero findings on declared-order
nesting including call propagation."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig, LockOrderConfig

ORDER = (
    "lpkg.*._table_lock",   # outermost
    "lpkg.*.Pool.*",
    "lpkg.*._page_lock",    # innermost
)


def config(root) -> AnalysisConfig:
    return AnalysisConfig(
        root=root,
        packages=("lpkg",),
        lock_order=LockOrderConfig(
            order=ORDER,
            receiver_aliases={"_wal": "lpkg.wal.Wal"},
        ),
    )


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.lock_order import LockOrderRule

    return LockOrderRule()


def test_violating_fixture(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "locks_bad"))
    keys = {f.key for f in findings}
    assert (
        "inversion:lpkg.inversion.Coordinator._page_lock"
        "->lpkg.inversion.Coordinator._table_lock"
    ) in keys
    # inversion reached only through the alias-resolved held call
    assert (
        "inversion:lpkg.engine.Engine._page_lock->lpkg.wal.Wal._table_lock"
    ) in keys
    assert "undeclared:lpkg.rogue.Rogue._mystery_lock" in keys
    assert any(key.startswith("cycle:lpkg.pool.Pool.") for key in keys)
    assert all(f.rule == "lock-order" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "locks_good")) == []


def test_cycle_is_not_an_inversion(rule, run_rule, fixtures_dir):
    # The Pool cycle's two edges are equal-rank, so the only finding
    # mentioning Pool must be the cycle, not an inversion.
    findings = run_rule(rule, config(fixtures_dir / "locks_bad"))
    pool_keys = {f.key for f in findings if "Pool" in f.key}
    assert pool_keys and all(k.startswith("cycle:") for k in pool_keys)
