"""Plaintext-taint rule: every sink kind fires on the violating fixture;
sanctioned egress (re-encryption, comparison verdicts) stays quiet."""

from __future__ import annotations

import pytest

from repro.analysis.config import AnalysisConfig


def config(root) -> AnalysisConfig:
    return AnalysisConfig(root=root, packages=("tpkg",), taint_packages=("tpkg",))


@pytest.fixture(scope="module")
def rule():
    from repro.analysis.rules.plaintext_taint import PlaintextTaintRule

    return PlaintextTaintRule()


def test_violating_fixture_flags_every_sink(rule, run_rule, fixtures_dir):
    findings = run_rule(rule, config(fixtures_dir / "taint_bad"))
    by_symbol = {f.symbol: f.key for f in findings}
    assert by_symbol["leak_return"] == "return-plaintext"
    assert by_symbol["leak_log"] == "log-sink:print"
    assert by_symbol["leak_metric"] == "metric-sink:inc"
    # propagator chain: decrypt -> deserialize_value -> f-string -> logger
    assert by_symbol["leak_fstring"] == "log-sink:info"
    assert all(f.rule == "plaintext-taint" for f in findings)


def test_clean_fixture_has_no_findings(rule, run_rule, fixtures_dir):
    assert run_rule(rule, config(fixtures_dir / "taint_good")) == []


def test_rule_only_covers_taint_packages(rule, run_rule, fixtures_dir):
    cfg = AnalysisConfig(
        root=fixtures_dir / "taint_bad", packages=("tpkg",), taint_packages=()
    )
    assert run_rule(rule, cfg) == []
