#!/usr/bin/env python
"""Run the trust-boundary / taint / lock-order / site-metric analyzer.

Equivalent to ``python -m repro.analysis``; exists so CI and humans have
a discoverable entry point next to the other repo checks.

Usage:  PYTHONPATH=src python scripts/check_invariants.py --strict [-v]
"""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
