#!/usr/bin/env python
"""Thin shim: the metrics lint now lives in the analysis framework.

* Static naming checks (every metric-name literal, StatsView FIELDS maps,
  kind conflicts) run in the ``site-metric`` rule family of
  ``python -m repro.analysis``.
* The dynamic check (boot the full stack, then validate the live
  registry) moved to :mod:`repro.analysis.dynamic_metrics`; this script
  just invokes it so existing CI entry points keep working.

Usage:  PYTHONPATH=src python scripts/check_metrics.py [-v]
"""

import sys

from repro.analysis.dynamic_metrics import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
