"""Driver-side caches (Section 4.1).

The paper calls out two caches, both shared across the client process:

* the **CEK cache** — decrypted CEK material, so repeated queries don't
  pay a key-provider round-trip (which for Azure Key Vault is a network
  call); entries live for a client-controlled duration;
* the **attestation / shared-secret cache** — the outcome of the
  attestation protocol, so the handshake doesn't rerun per query.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.enclave import NonceCounter
from repro.obs.metrics import StatsView


class _CekCacheStats(StatsView):
    """Per-cache view over the global driver cache counters."""

    FIELDS = {
        "hits": "driver.cek_cache_hits",
        "misses": "driver.cek_cache_misses",
    }


class CekCache:
    """Decrypted CEK material with a client-controlled TTL.

    ``hits``/``misses`` keep their historical attribute API but are now
    views over the ``driver.cek_cache_*`` registry counters.
    """

    def __init__(self, ttl_s: float = 7200.0, clock=time.monotonic):
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: dict[str, tuple[bytes, float]] = {}
        self._stats = _CekCacheStats()
        # get() is check-then-act (lookup, then delete on expiry): without
        # the lock, two threads expiring the same entry race on the del.
        self._lock = threading.RLock()

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    def get(self, cek_name: str) -> bytes | None:
        with self._lock:
            entry = self._entries.get(cek_name)
            if entry is None:
                self._stats.inc("misses")
                return None
            material, stored_at = entry
            if self._clock() - stored_at > self.ttl_s:
                del self._entries[cek_name]
                self._stats.inc("misses")
                return None
            self._stats.inc("hits")
            return material

    def put(self, cek_name: str, material: bytes) -> None:
        with self._lock:
            self._entries[cek_name] = (material, self._clock())

    def invalidate(self, cek_name: str | None = None) -> None:
        with self._lock:
            if cek_name is None:
                self._entries.clear()
            else:
                self._entries.pop(cek_name, None)


@dataclass
class AttestationSession:
    """A cached attestation outcome: the shared secret plus session state."""

    enclave_session_id: int
    shared_secret: bytes
    nonces: NonceCounter = field(default_factory=NonceCounter)
    installed_ceks: set[str] = field(default_factory=set)
    authorized_query_hashes: set[bytes] = field(default_factory=set)
