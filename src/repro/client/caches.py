"""Driver-side caches (Section 4.1).

The paper calls out two caches, both shared across the client process:

* the **CEK cache** — decrypted CEK material, so repeated queries don't
  pay a key-provider round-trip (which for Azure Key Vault is a network
  call); entries live for a client-controlled duration;
* the **attestation / shared-secret cache** — the outcome of the
  attestation protocol, so the handshake doesn't rerun per query.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.enclave import NonceCounter
from repro.obs.metrics import StatsView


class _CekCacheStats(StatsView):
    """Per-cache view over the global driver cache counters."""

    FIELDS = {
        "hits": "driver.cek_cache_hits",
        "misses": "driver.cek_cache_misses",
        "evictions": "driver.cek_cache_evictions",
    }


class CekCache:
    """Decrypted CEK material with a client-controlled TTL and LRU bound.

    ``max_entries`` caps resident key material: at fleet scale (one CEK
    per tenant, ~10k tenants) an unbounded cache would pin every tenant's
    plaintext key in client memory forever. The least-recently-*used*
    entry is evicted first — insertion order alone would evict a hot key
    under a cold scan.

    ``hits``/``misses``/``evictions`` keep their historical attribute API
    but are now views over the ``driver.cek_cache_*`` registry counters.
    """

    def __init__(
        self,
        ttl_s: float = 7200.0,
        clock=time.monotonic,
        max_entries: int | None = None,
    ):
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self._clock = clock
        # Insertion-ordered; a hit reinserts its key so the dict's order is
        # recency-of-use and eviction can pop the front.
        self._entries: dict[str, tuple[bytes, float]] = {}
        self._stats = _CekCacheStats()
        # get() is check-then-act (lookup, then delete on expiry): without
        # the lock, two threads expiring the same entry race on the del.
        self._lock = threading.RLock()

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    @property
    def evictions(self) -> int:
        return self._stats.evictions

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, cek_name: str) -> bool:
        with self._lock:
            return cek_name in self._entries

    def get(self, cek_name: str) -> bytes | None:
        with self._lock:
            entry = self._entries.get(cek_name)
            if entry is None:
                self._stats.inc("misses")
                return None
            material, stored_at = entry
            if self._clock() - stored_at > self.ttl_s:
                del self._entries[cek_name]
                self._stats.inc("misses")
                return None
            # Move to the back: most recently used.
            del self._entries[cek_name]
            self._entries[cek_name] = entry
            self._stats.inc("hits")
            return material

    def put(self, cek_name: str, material: bytes) -> None:
        with self._lock:
            self._entries.pop(cek_name, None)
            self._entries[cek_name] = (material, self._clock())
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    evicted = next(iter(self._entries))
                    del self._entries[evicted]
                    self._stats.inc("evictions")

    def invalidate(self, cek_name: str | None = None) -> None:
        with self._lock:
            if cek_name is None:
                self._entries.clear()
            else:
                self._entries.pop(cek_name, None)


@dataclass
class AttestationSession:
    """A cached attestation outcome: the shared secret plus session state."""

    enclave_session_id: int
    shared_secret: bytes
    nonces: NonceCounter = field(default_factory=NonceCounter)
    installed_ceks: set[str] = field(default_factory=set)
    authorized_query_hashes: set[bytes] = field(default_factory=set)
