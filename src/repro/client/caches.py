"""Driver-side caches (Section 4.1).

The paper calls out two caches, both shared across the client process:

* the **CEK cache** — decrypted CEK material, so repeated queries don't
  pay a key-provider round-trip (which for Azure Key Vault is a network
  call); entries live for a client-controlled duration;
* the **attestation / shared-secret cache** — the outcome of the
  attestation protocol, so the handshake doesn't rerun per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.enclave.nonce import NonceCounter


class CekCache:
    """Decrypted CEK material with a client-controlled TTL."""

    def __init__(self, ttl_s: float = 7200.0, clock=time.monotonic):
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: dict[str, tuple[bytes, float]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, cek_name: str) -> bytes | None:
        entry = self._entries.get(cek_name)
        if entry is None:
            self.misses += 1
            return None
        material, stored_at = entry
        if self._clock() - stored_at > self.ttl_s:
            del self._entries[cek_name]
            self.misses += 1
            return None
        self.hits += 1
        return material

    def put(self, cek_name: str, material: bytes) -> None:
        self._entries[cek_name] = (material, self._clock())

    def invalidate(self, cek_name: str | None = None) -> None:
        if cek_name is None:
            self._entries.clear()
        else:
            self._entries.pop(cek_name, None)


@dataclass
class AttestationSession:
    """A cached attestation outcome: the shared secret plus session state."""

    enclave_session_id: int
    shared_secret: bytes
    nonces: NonceCounter = field(default_factory=NonceCounter)
    installed_ceks: set[str] = field(default_factory=set)
    authorized_query_hashes: set[bytes] = field(default_factory=set)
