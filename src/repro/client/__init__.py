"""The AE-aware client driver."""

from repro.client.caches import AttestationSession, CekCache
from repro.client.driver import Connection, ConnectionOptions, DriverStats, connect

__all__ = [
    "AttestationSession",
    "CekCache",
    "Connection",
    "ConnectionOptions",
    "DriverStats",
    "connect",
]
