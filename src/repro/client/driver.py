"""The AE-aware client driver (Sections 2.5, 4.1).

The application issues parameterized queries with *plaintext* parameters
and receives *plaintext* results; everything cryptographic is transparent:

1. On first execution of a query, the driver calls
   ``sp_describe_parameter_encryption`` (one extra round-trip — the cost
   Figure 8's SQL-PT-AEConn configuration measures) and caches the result.
2. Parameters whose deduced type is encrypted are encrypted client-side
   with the right CEK and scheme. CEK material comes from the key provider
   via the CMK (verified against the client's trusted key paths and the
   CMK metadata signature — the two anti-tampering controls of Section 4.1).
3. If the query needs enclave computation, the driver verifies attestation
   (once, cached), derives the shared secret, and ships the needed CEKs in
   a sealed, nonce-protected package.
4. Results with encrypted columns are decrypted before being handed back.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.attestation.hgs import AttestationPolicy
from repro.attestation.protocol import verify_attestation_and_derive_secret
from repro.crypto.aead import CellCipher
from repro.crypto.dh import DiffieHellman
from repro.enclave import CekPackage, seal_package
from repro.errors import DriverError, ReplayError, SecurityViolation, TransientFault
from repro.faults.actions import DropMessageDirective, DuplicateMessageDirective
from repro.faults.classify import is_transient
from repro.faults.registry import fault_point, register_fault_site
from repro.keys.providers import KeyProviderRegistry
from repro.client.caches import AttestationSession, CekCache
from repro.obs.metrics import StatsView
from repro.obs.querystats import (
    DriverStatsCollector,
    format_explain_analyze,
    format_explain_stats,
)
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.exec.executor import QueryResult
from repro.sqlengine.server import CekMetadata, DescribeResult, SqlServer
from repro.sqlengine.types import EncryptionInfo
from repro.sqlengine.values import deserialize_value, serialize_value

register_fault_site(
    "driver.describe_parameter_encryption",
    "the sp_describe_parameter_encryption round-trip (Section 4.1)",
)
register_fault_site(
    "enclave.channel.send",
    "a sealed CEK package leaving the driver; drop/duplicate capable",
)

_T = TypeVar("_T")


class DriverStats(StatsView):
    """Round-trip and cache accounting (feeds the performance model).

    Per-connection view over the ``driver.*`` registry counters; the
    attribute API is unchanged from the old plain-int dataclass."""

    FIELDS = {
        "executes": "driver.executes",
        "describe_roundtrips": "driver.describe_roundtrips",
        "execute_roundtrips": "driver.execute_roundtrips",
        "package_roundtrips": "driver.package_roundtrips",
        "key_provider_calls": "driver.key_provider_calls",
        "params_encrypted": "driver.params_encrypted",
        "results_decrypted": "driver.results_decrypted",
        "retries": "driver.retries",
    }

    @property
    def total_roundtrips(self) -> int:
        return self.describe_roundtrips + self.execute_roundtrips + self.package_roundtrips


@dataclass
class ConnectionOptions:
    """The connection-string surface of the AE driver."""

    # The AE connection-string property: absent ⇒ plain connection, the
    # driver never calls sp_describe_parameter_encryption (Section 4.1).
    column_encryption: bool = True
    # Client control: restrict CMK key paths to a trusted list.
    trusted_cmk_key_paths: tuple[str, ...] | None = None
    # Cache describe results to avoid the extra round-trip per execution.
    cache_describe_results: bool = True
    cek_cache_ttl_s: float = 7200.0
    # LRU bound on resident decrypted CEK material; ``None`` = unbounded.
    # Fleet-scale clients (one CEK per tenant) must set this.
    cek_cache_max_entries: int | None = None
    # Bounded exponential-backoff retry for transient failures of the
    # idempotent control-plane round-trips (describe, attest, CEK package
    # delivery). ``retry_max_attempts`` counts total tries, not re-tries.
    retry_max_attempts: int = 4
    retry_backoff_base_s: float = 0.001
    retry_backoff_cap_s: float = 0.05
    # Simulated network round-trip time, slept once per driver↔server
    # round-trip. In-process calls have no wire latency, which makes every
    # configuration CPU-bound; a nonzero RTT restores the regime the paper
    # measures (client latency dominated by round-trips), which is what
    # the measured Figure 8 bench needs to show client scaling.
    simulated_rtt_s: float = 0.0


class Connection:
    """A client connection to one SQL Server instance."""

    def __init__(
        self,
        server: SqlServer,
        registry: KeyProviderRegistry,
        options: ConnectionOptions | None = None,
        attestation_policy: AttestationPolicy | None = None,
    ):
        self.server = server
        self.session = server.connect()
        self.registry = registry
        self.options = options or ConnectionOptions()
        self.attestation_policy = attestation_policy
        self.stats = DriverStats()
        self.cek_cache = CekCache(
            ttl_s=self.options.cek_cache_ttl_s,
            max_entries=self.options.cek_cache_max_entries,
        )
        self._describe_cache: dict[str, DescribeResult] = {}
        self._attestation: AttestationSession | None = None
        # Guards the check-then-act on the describe cache and the
        # attestation session: two threads sharing a connection must not
        # negotiate two enclave sessions (the second would orphan the
        # first's installed CEKs).
        self._state_lock = threading.RLock()

    # ------------------------------------------------------------------ public

    def close(self) -> None:
        """Close the server session and release its slot."""
        self.session.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _roundtrip_delay(self) -> None:
        if self.options.simulated_rtt_s > 0:
            time.sleep(self.options.simulated_rtt_s)

    def execute(
        self,
        query_text: str,
        params: dict[str, object] | None = None,
        force_encryption: frozenset[str] | set[str] = frozenset(),
    ) -> QueryResult:
        """Execute a parameterized statement transparently.

        ``force_encryption`` names parameters the application *requires* to
        be encrypted — the Section 4.1 defense against a server that lies
        about a column being plaintext.
        """
        params = params or {}
        self.stats.inc("executes")
        collector = DriverStatsCollector()
        try:
            if not self.options.column_encryption:
                # Plain connection: no describe round-trip, params pass through.
                self.stats.inc("execute_roundtrips")
                self._roundtrip_delay()
                result = self.session.execute(query_text, params)
                collector.apply(result.stats)
                return result

            describe = self._describe(query_text)
            self._check_forced(describe, force_encryption)

            wire_params: dict[str, object] = dict(params)
            for description in describe.parameters:
                enc = description.column_type.encryption
                if enc is None:
                    continue
                name = description.name
                key = self._param_key(params, name)
                plaintext = params[key]
                if plaintext is None:
                    wire_params[key] = None
                    continue
                description.column_type.sql_type.validate(plaintext)
                material = self._cek_material(enc.cek_name, describe)
                cipher = CellCipher(material)
                wire_params[key] = Ciphertext(
                    cipher.encrypt(serialize_value(plaintext), enc.scheme)
                )
                self.stats.inc("params_encrypted")

            if describe.uses_enclave:
                self._ensure_enclave_keys(describe)

            self.stats.inc("execute_roundtrips")
            self._roundtrip_delay()
            result = self.session.execute(query_text, wire_params)
            result = self._decrypt_result(result)
        except BaseException:
            collector.cancel()
            raise
        collector.apply(result.stats)
        return result

    def explain_stats(
        self, query_text: str, params: dict[str, object] | None = None
    ) -> str:
        """Run a statement and pretty-print its :class:`QueryStats`."""
        result = self.execute(query_text, params)
        if result.stats is None:
            return "EXPLAIN STATS\n  <no stats collected>"
        return format_explain_stats(result.stats)

    def explain_analyze(
        self, query_text: str, params: dict[str, object] | None = None
    ) -> str:
        """Run a statement and render its timeline + contention profile."""
        result = self.execute(query_text, params)
        if result.stats is None:
            return "EXPLAIN ANALYZE\n  <no stats collected>"
        return format_explain_analyze(result.stats)

    def execute_ddl(self, query_text: str, authorize_enclave: bool = False) -> QueryResult:
        """Run DDL; with ``authorize_enclave`` the driver signs the query
        text so the enclave's Encrypt/Recrypt oracle accepts it (the secure
        compilation check of Section 3.2).

        The CEKs referenced by the DDL must already be installed (the
        driver ships them along with the authorization, like a query would)
        — we ship every CEK the client can decrypt that appears in the
        statement text, which is what the tooling does.
        """
        needed_for_index = self._index_ddl_enclave_ceks(query_text)
        if needed_for_index:
            # Building a range index over RND columns runs enclave
            # comparisons — the client must have supplied the keys, exactly
            # as for a query (Section 3.1.2).
            self.install_enclave_ceks(needed_for_index)
        if authorize_enclave:
            needed = [
                cek.name
                for cek in self.server.catalog.ceks()
                if cek.name in query_text or self._column_cek_in(query_text, cek.name)
            ]
            self.authorize_enclave_query(query_text, needed)
        self.stats.inc("execute_roundtrips")
        self._roundtrip_delay()
        result = self.session.execute(query_text)
        # DDL can change encryption metadata (rotation, initial encryption);
        # cached describe results and CEK material may now be stale.
        self.invalidate_metadata_caches()
        return result

    def invalidate_metadata_caches(self) -> None:
        """Drop cached describe results (e.g. after DDL or key rotation)."""
        with self._state_lock:
            self._describe_cache.clear()

    def install_enclave_ceks(self, cek_names: list[str]) -> None:
        """Ship the named CEKs to the enclave over the secure channel."""
        session = self._attest()
        missing: list[tuple[str, bytes]] = []
        for name in cek_names:
            if name not in session.installed_ceks:
                metadata = self.server.fetch_cek_metadata(name)
                for cmk in metadata.cmks:
                    if not cmk.allow_enclave_computations:
                        raise SecurityViolation(
                            f"CMK {cmk.name!r} does not allow enclave computations"
                        )
                missing.append((name, self._unwrap_cek(metadata)))
        if not missing:
            return
        package = CekPackage(nonce=session.nonces.next(), ceks=tuple(missing))
        self._send_package(session, package)
        for name, __ in missing:
            session.installed_ceks.add(name)

    def authorize_enclave_query(self, query_text: str, cek_names: list[str]) -> None:
        """Attest and authorize ``query_text`` for the enclave's DDL oracle.

        Ships any not-yet-installed CEKs from ``cek_names`` together with
        the query-text hash, exactly as :meth:`execute_ddl` would — but
        without executing anything. The online key-lifecycle tooling uses
        this: rotation batches run through admin verbs, not DDL execution,
        yet the enclave still gates its Recrypt oracle on an authorized
        query hash (Section 3.2).
        """
        digest = hashlib.sha256(query_text.encode("utf-8")).digest()
        session = self._attest()
        ceks: list[tuple[str, bytes]] = []
        for name in cek_names:
            if name not in session.installed_ceks:
                metadata = self.server.fetch_cek_metadata(name)
                ceks.append((name, self._unwrap_cek(metadata)))
        package = CekPackage(
            nonce=session.nonces.next(),
            ceks=tuple(ceks),
            authorized_query_hashes=(digest,),
        )
        self._send_package(session, package)
        for name, __ in ceks:
            session.installed_ceks.add(name)

    def _index_ddl_enclave_ceks(self, query_text: str) -> list[str]:
        """CEKs an index-creation DDL would need inside the enclave."""
        try:
            from repro.crypto.aead import EncryptionScheme
            from repro.sqlengine.sqlparser import parse
            from repro.sqlengine.sqlparser import ast as _ast

            stmt = parse(query_text)
            if not isinstance(stmt, _ast.CreateIndexStmt):
                return []
            table = self.server.catalog.table(stmt.table)
            needed: list[str] = []
            for column_name in stmt.columns:
                enc = table.column(column_name).column_type.encryption
                if (
                    enc is not None
                    and enc.scheme is EncryptionScheme.RANDOMIZED
                    and enc.enclave_enabled
                    and enc.cek_name not in needed
                ):
                    needed.append(enc.cek_name)
            return needed
        except Exception:
            return []

    # ----------------------------------------------------------------- internals

    def _with_retries(self, op: str, fn: Callable[[], _T]) -> _T:
        """Run ``fn``, retrying classified-transient failures with bounded
        exponential backoff. Only idempotent control-plane operations go
        through here — DML is never silently re-executed."""
        attempts = 0
        while True:
            try:
                return fn()
            except Exception as exc:
                attempts += 1
                if not is_transient(exc) or attempts >= self.options.retry_max_attempts:
                    raise
                self.stats.inc("retries")
                delay = min(
                    self.options.retry_backoff_cap_s,
                    self.options.retry_backoff_base_s * (2 ** (attempts - 1)),
                )
                time.sleep(delay)

    def _send_package(self, session: AttestationSession, package: CekPackage) -> None:
        """Ship one sealed CEK package, with transient-drop retry.

        The fault point fires *before* delivery, so a retried send never
        re-uses a nonce the enclave already consumed. A duplicated message
        is delivered twice; the enclave's nonce range tracker rejects the
        second copy (Section 4.2) and the driver treats that rejection as
        the success it is.
        """

        def send_once() -> None:
            directive = fault_point("enclave.channel.send", nonce=package.nonce)
            if isinstance(directive, DropMessageDirective):
                raise TransientFault(
                    "enclave.channel.send", "sealed CEK package dropped in transit"
                )
            sealed = seal_package(session.shared_secret, package)
            self.server.forward_enclave_package(session.enclave_session_id, sealed)
            if isinstance(directive, DuplicateMessageDirective):
                try:
                    self.server.forward_enclave_package(
                        session.enclave_session_id, sealed
                    )
                except ReplayError:
                    pass  # the replayed nonce was rejected — the designed outcome

        self._with_retries("package", send_once)
        self.stats.inc("package_roundtrips")
        self._roundtrip_delay()

    def _param_key(self, params: dict[str, object], name: str) -> str:
        for key in params:
            if key.lower() == name.lower():
                return key
        raise DriverError(f"missing value for parameter @{name}")

    def _describe(self, query_text: str) -> DescribeResult:
        # The whole lookup-or-describe runs under the state lock: a second
        # thread racing the same text waits and takes the cache hit instead
        # of issuing a duplicate describe (and, worse, a duplicate
        # attestation session).
        with self._state_lock:
            cached = self._describe_cache.get(query_text)
            if cached is not None:
                return cached

            def describe_once() -> DescribeResult:
                # Only offer a DH public key when this connection is configured
                # for enclave attestation and no shared secret is cached yet.
                # The DH key pair is fresh per attempt: a retried attestation
                # always negotiates a new session.
                needs_dh = self._attestation is None and self.attestation_policy is not None
                client_dh = DiffieHellman() if needs_dh else None
                fault_point("driver.describe_parameter_encryption", query=query_text)
                describe = self.server.describe_parameter_encryption(
                    query_text,
                    client_dh_public=client_dh.public_key if client_dh is not None else None,
                )
                self.stats.inc("describe_roundtrips")
                self._roundtrip_delay()
                if describe.attestation is not None and self._attestation is None:
                    secret = self._verify_attestation(describe, client_dh)
                    self._attestation = AttestationSession(
                        enclave_session_id=describe.attestation.session_id,
                        shared_secret=secret,
                    )
                return describe

            describe = self._with_retries("describe", describe_once)
            if self.options.cache_describe_results:
                self._describe_cache[query_text] = describe
            return describe

    def _verify_attestation(self, describe: DescribeResult, client_dh: DiffieHellman) -> bytes:
        if self.attestation_policy is None:
            raise DriverError(
                "query requires enclave computations but no attestation policy "
                "was configured on this connection"
            )
        if self.server.hgs is None:
            raise DriverError("server has no HGS to verify attestation against")
        return verify_attestation_and_derive_secret(
            describe.attestation,
            client_dh,
            self.server.hgs.signing_public_key,
            self.attestation_policy,
        )

    def _attest(self) -> AttestationSession:
        with self._state_lock:
            if self._attestation is not None:
                return self._attestation
            if self.attestation_policy is None:
                raise DriverError("no attestation policy configured")

            def attest_once() -> AttestationSession:
                # Fresh DH pair per attempt: a retried attestation negotiates a
                # brand-new enclave session rather than resuming a half-built one.
                client_dh = DiffieHellman()
                info = self.server.attest(client_dh.public_key)
                self.stats.inc("describe_roundtrips")
                self._roundtrip_delay()
                if self.server.hgs is None:
                    raise DriverError("server has no HGS to verify attestation against")
                secret = verify_attestation_and_derive_secret(
                    info, client_dh, self.server.hgs.signing_public_key, self.attestation_policy
                )
                return AttestationSession(
                    enclave_session_id=info.session_id, shared_secret=secret
                )

            self._attestation = self._with_retries("attest", attest_once)
            return self._attestation

    def _check_forced(self, describe: DescribeResult, forced: frozenset[str] | set[str]) -> None:
        described = {p.name.lower(): p for p in describe.parameters}
        for name in forced:
            description = described.get(name.lower())
            if description is None or description.column_type.encryption is None:
                raise SecurityViolation(
                    f"application forced parameter @{name} to be encrypted, but "
                    "the server claims it is plaintext — refusing to send it"
                )

    def _check_cmk_trusted(self, metadata: CekMetadata) -> None:
        for cmk in metadata.cmks:
            if self.options.trusted_cmk_key_paths is not None:
                if cmk.key_path not in self.options.trusted_cmk_key_paths:
                    raise SecurityViolation(
                        f"CMK key path {cmk.key_path!r} is not in the trusted list"
                    )
            cmk.require_valid(self.registry)

    def _cek_material(self, cek_name: str, describe: DescribeResult | None = None) -> bytes:
        cached = self.cek_cache.get(cek_name)
        if cached is not None:
            return cached
        metadata = None
        if describe is not None:
            metadata = describe.parameter_ceks.get(cek_name)
            if metadata is None:
                for candidate in describe.enclave_ceks:
                    if candidate.cek.name == cek_name:
                        metadata = candidate
                        break
        if metadata is None:
            metadata = self.server.fetch_cek_metadata(cek_name)
        material = self._unwrap_cek(metadata)
        self.cek_cache.put(cek_name, material)
        return material

    def unwrap_cek(self, metadata: CekMetadata) -> bytes:
        """Unwrap CEK material client-side (trusted-path checks included).

        Public surface for the provisioning tools: CMK rotation re-wraps
        existing material, so the tooling legitimately needs the client's
        unwrap path — with its key-path trust list and signature checks —
        rather than a raw provider call.
        """
        return self._unwrap_cek(metadata)

    def _unwrap_cek(self, metadata: CekMetadata) -> bytes:
        self._check_cmk_trusted(metadata)
        errors: list[str] = []
        for cmk in metadata.cmks:
            value = metadata.cek.value_for_cmk(cmk.name)
            try:
                self.stats.inc("key_provider_calls")
                return value.decrypt(cmk, self.registry)
            except Exception as exc:  # try the other CMK (mid-rotation)
                errors.append(str(exc))
        raise DriverError(
            f"could not unwrap CEK {metadata.cek.name!r} under any CMK: {'; '.join(errors)}"
        )

    def _ensure_enclave_keys(self, describe: DescribeResult) -> None:
        session = self._attestation or self._attest()
        missing: list[tuple[str, bytes]] = []
        for metadata in describe.enclave_ceks:
            # The driver checks the CMK signature before releasing a CEK to
            # the enclave: an enclave-disabled CMK must never have its CEKs
            # shipped there, even if SQL claims otherwise (Section 2.2).
            self._check_cmk_trusted(metadata)
            for cmk in metadata.cmks:
                if not cmk.allow_enclave_computations:
                    raise SecurityViolation(
                        f"CMK {cmk.name!r} does not allow enclave computations; "
                        f"refusing to send CEK {metadata.cek.name!r} to the enclave"
                    )
            if metadata.cek.name not in session.installed_ceks:
                missing.append((metadata.cek.name, self._cek_material(metadata.cek.name, describe)))
        if not missing:
            return
        package = CekPackage(nonce=session.nonces.next(), ceks=tuple(missing))
        self._send_package(session, package)
        for name, __ in missing:
            session.installed_ceks.add(name)

    def _decrypt_result(self, result: QueryResult) -> QueryResult:
        encrypted_columns = [
            (i, column.column_type.encryption)
            for i, column in enumerate(result.columns)
            if column.column_type.encryption is not None
        ]
        if not encrypted_columns:
            return result
        ciphers: dict[str, CellCipher] = {}
        for __, enc in encrypted_columns:
            if enc.cek_name not in ciphers:
                ciphers[enc.cek_name] = CellCipher(self._cek_material(enc.cek_name))
        rotation_partners: dict[str, str | None] | None = None
        out_rows: list[tuple] = []
        for row in result.rows:
            cells = list(row)
            for i, enc in encrypted_columns:
                cell = cells[i]
                if cell is None:
                    continue
                if not isinstance(cell, Ciphertext):
                    # Mid initial-encryption the column is already declared
                    # encrypted but unswept rows are still plaintext; pass
                    # them through only while that job is demonstrably live.
                    if rotation_partners is None:
                        rotation_partners = self._rotation_partners()
                    if self._encrypting_live(enc.cek_name, rotation_partners):
                        continue
                    raise DriverError(
                        f"result column {result.columns[i].name!r} should be "
                        "ciphertext but is not"
                    )
                cipher = ciphers[enc.cek_name]
                if not cipher.verify(cell.envelope):
                    # Rows the rotation sweep has not reached yet (or, for a
                    # stale describe cache, rows it already converted) carry
                    # the rotation partner's CEK — resolve it per cell by
                    # MAC probe against the active lifecycle jobs.
                    if rotation_partners is None:
                        rotation_partners = self._rotation_partners()
                    partner = rotation_partners.get(enc.cek_name)
                    if partner:
                        cipher = ciphers.get(partner) or CellCipher(
                            self._cek_material(partner)
                        )
                        ciphers[partner] = cipher
                cells[i] = deserialize_value(cipher.decrypt(cell.envelope))
                self.stats.inc("results_decrypted")
            out_rows.append(tuple(cells))
        result.rows = out_rows
        return result

    def _rotation_partners(self) -> dict[str, str | None]:
        """Map each CEK involved in an active rotation to its partner.

        Covers both directions of the mixed-version window: a fresh
        describe (column already flipped to the new CEK) reading unswept
        old-key rows, and a stale describe (old CEK) reading rows the
        sweep already converted. Servers without the rotation surface
        (older wire peers) simply yield no partners.
        """
        partners: dict[str, str | None] = {}
        states_fn = getattr(self.server, "rotation_states", None)
        if states_fn is None:
            return partners
        for state in states_fn():
            if not state.active:
                continue
            if state.old_cek:
                partners[state.new_cek] = state.old_cek
                partners[state.old_cek] = state.new_cek
            else:  # initial encryption: no old key, only plaintext behind
                partners.setdefault(state.new_cek, None)
        return partners

    @staticmethod
    def _encrypting_live(cek_name: str, partners: dict[str, str | None]) -> bool:
        return cek_name in partners and partners[cek_name] is None

    def _column_cek_in(self, query_text: str, cek_name: str) -> bool:
        """Does this DDL's target column currently use ``cek_name``?

        Rotations reference the *old* CEK only implicitly (through the
        column), so the driver resolves it from the catalog metadata.
        """
        try:
            from repro.sqlengine.sqlparser import parse
            from repro.sqlengine.sqlparser import ast as _ast

            stmt = parse(query_text)
            if isinstance(stmt, _ast.AlterColumnStmt):
                column = self.server.catalog.table(stmt.table).column(stmt.column)
                enc = column.column_type.encryption
                return enc is not None and enc.cek_name == cek_name
        except Exception:
            return False
        return False

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> None:
        self.stats.inc("execute_roundtrips")
        self._roundtrip_delay()
        self.session.execute("BEGIN TRANSACTION")

    def commit(self) -> None:
        self.stats.inc("execute_roundtrips")
        self._roundtrip_delay()
        self.session.execute("COMMIT")

    def rollback(self) -> None:
        self.stats.inc("execute_roundtrips")
        self._roundtrip_delay()
        self.session.execute("ROLLBACK")


def connect(
    server: SqlServer,
    registry: KeyProviderRegistry,
    column_encryption: bool = True,
    attestation_policy: AttestationPolicy | None = None,
    **option_kwargs,
) -> Connection:
    """Open a connection; ``column_encryption`` mirrors the AE connection-
    string property."""
    options = ConnectionOptions(column_encryption=column_encryption, **option_kwargs)
    return Connection(
        server, registry, options=options, attestation_policy=attestation_policy
    )
