"""Exception hierarchy for the Always Encrypted reproduction.

Every layer of the stack raises a subclass of :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations

import re


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """Raised when a cryptographic operation fails or an input is invalid."""


class IntegrityError(CryptoError):
    """Raised when an HMAC / signature check fails (tampered ciphertext)."""


class KeyError_(ReproError):
    """Raised for key-hierarchy problems (missing CEK/CMK, bad signature)."""


class KeyProviderError(KeyError_):
    """Raised when a key provider cannot serve a request for a key path."""


class AttestationError(ReproError):
    """Raised when the attestation chain of trust cannot be verified."""


class EnclaveError(ReproError):
    """Raised for failures inside or at the boundary of the enclave."""


class ReplayError(EnclaveError):
    """Raised when the enclave detects a replayed nonce on a CEK install."""


class KeysUnavailableError(EnclaveError):
    """Raised when an operation needs a CEK the client has not installed.

    Recovery turns this into a *deferred transaction* (Section 4.5): the
    client only sends keys when running queries, so crash recovery of an
    encrypted index may find the enclave keyless.
    """


class FaultInjected(ReproError):
    """Base class for errors raised by the deterministic fault injector.

    Raised only at registered fault sites (:mod:`repro.faults`) when a test
    has armed a fault there; production code paths never construct these.
    """

    def __init__(self, site: str, message: str | None = None):
        self.site = site
        super().__init__(message or f"injected fault at {site!r}")

    @classmethod
    def from_wire(cls, message: str) -> "FaultInjected":
        """Rebuild from a marshalled error message, recovering the fault
        site when the message is the default format above. The wire only
        carries the message string, so a custom-message fault keeps its
        text but its site is marked as remote — not silently replaced by
        the whole message, which is what ``cls(message)`` would do.
        """
        match = re.fullmatch(r"injected fault at '([^']*)'", message)
        if match:
            return cls(match.group(1))
        return cls("<remote>", message)


class TransientFault(FaultInjected):
    """An injected failure the caller may safely retry (dropped channel
    message, flaky describe round-trip). The driver's error classifier
    maps this to bounded exponential-backoff retry."""


class FatalFault(FaultInjected):
    """An injected failure that must surface to the caller as an error —
    retrying cannot help (corrupted state, configuration problem)."""


class ForcedCrash(FaultInjected):
    """An injected process crash: all volatile state is gone.

    The crash-torture harness catches this, calls ``engine.crash()``, and
    runs recovery; anything else treating it as an ordinary error is a bug.
    """


class SqlError(ReproError):
    """Base class for SQL engine errors."""


class ParseError(SqlError):
    """Raised when a SQL statement cannot be tokenized or parsed."""


class BindError(SqlError):
    """Raised when names cannot be resolved against the catalog."""


class TypeDeductionError(SqlError):
    """Raised when encryption type constraints are unsatisfiable.

    This corresponds to operations the paper disallows, e.g. comparing a
    randomized-encrypted column without an enclave-enabled key, or mixing
    columns encrypted with different CEKs in one comparison.
    """


class ExecutionError(SqlError):
    """Raised when a query plan fails during execution."""


class ConstraintError(SqlError):
    """Raised on primary-key / uniqueness violations."""


class ServerBusyError(SqlError):
    """Raised when the server's ``max_sessions`` limit is reached."""


class TransactionError(SqlError):
    """Raised for transaction lifecycle misuse (commit twice, etc.)."""


class LockTimeoutError(TransactionError):
    """Raised when a lock cannot be acquired within the deadline."""


class RecoveryError(SqlError):
    """Raised when crash recovery cannot proceed."""


class StaleRestoreError(RecoveryError):
    """Raised when recovery detects a rolled-back (stale but internally
    consistent) database — the freshness violation authenticated encryption
    alone cannot catch.

    Every ciphertext in a restored old snapshot still verifies; only the
    enclave-held monotonic anchor (epoch counter + WAL hash chain + page
    version digests, :mod:`repro.enclave.anchor`) knows the disk is from
    the past. The server quarantines itself after raising this: queries
    are refused until the operator explicitly accepts the restored state.
    """


class PageCorruptError(SqlError):
    """Raised when a page image fails its checksum (torn/partial write).

    Recovery treats a corrupt page as lost and recreates its contents by
    physical redo from the WAL (Section 4.5: redo is physical and keyless).
    """


class WireError(ReproError):
    """Base class for byte-level wire protocol failures (:mod:`repro.net`)."""


class TruncatedFrameError(WireError):
    """Raised when a frame ends before its declared length (torn stream)."""


class CorruptFrameError(WireError):
    """Raised when a frame fails its magic or CRC check (bit rot, tamper)."""


class UnknownOpcodeError(WireError):
    """Raised when a frame carries an opcode byte the registry does not know."""


class VersionMismatchError(WireError):
    """Raised when a frame's protocol version differs from this endpoint's."""


class RemoteError(ReproError):
    """A server-side error whose concrete type could not be reconstructed
    client-side; carries the original type name for diagnostics."""

    def __init__(self, error_type: str, message: str):
        self.error_type = error_type
        super().__init__(f"{error_type}: {message}")


class DriverError(ReproError):
    """Raised by the client driver for protocol or configuration problems."""


class SecurityViolation(ReproError):
    """Raised when a client-side security control rejects server output.

    Examples: CMK key path outside the trusted list, parameter the
    application forced to be encrypted reported as plaintext, CMK metadata
    signature mismatch.
    """
