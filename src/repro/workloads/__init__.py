"""Benchmark workloads."""
