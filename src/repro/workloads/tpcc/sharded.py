"""Sharded TPC-C: N engine processes behind the wire router.

This is the multi-process companion to :func:`~repro.workloads.tpcc.driver.
build_system`: each shard is a full :class:`SqlServer` (its own WAL,
buffer pool, lock manager, enclave + HGS under RND, and its own
:class:`FreshnessAnchor` trust root) served by a :class:`WireServer`,
partitioned by warehouse. A :class:`~repro.net.router.Router` — its own
process in the measured configuration — fronts them all, so the unmodified
AE driver connects to one address and cannot tell the deployments apart.

Two deployment shapes share all setup logic:

* :func:`start_sharded_system` — real OS processes (``fork``), the
  configuration the sharded Figure 8 benchmark measures. Each shard
  process escapes the parent's GIL, which is the entire point.
* :func:`start_sharded_inprocess` — every shard and the router as threads
  in this process. Used by tests that need to reach into a shard's engine
  (fault arming, crash/recover torture) which a process boundary hides.

Setup order mirrors the single-process builder, with two sharding twists:

1. CMK/CEK provisioning and table DDL go **through the router** — DDL
   broadcasts, and because ``CREATE COLUMN ENCRYPTION KEY`` embeds the
   ciphertext bytes, every shard stores the *identical* CEK.
2. Index DDL under RND goes to **each shard directly**: ``CUSTOMER_NC1``
   covers randomized columns, so building it needs the client's CEK
   inside that shard's enclave — each shard gets its own attested AE
   connection for the build. (The attestation policy trusts the union of
   the shards' enclave author ids, reported at shard start.)

Every client from :meth:`ShardedTpccSystem.new_client` is pinned to a
home warehouse: its control plane, enclave session, and all its
statements land on ``shard_of(home)``, the deployment the paper's
partitioned-OLTP regime assumes. Cross-shard transactions (2PC) are
exercised by the dedicated torture tests, not the steady-state mix.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field

from repro.client.driver import Connection, connect
from repro.keys import KeyProviderRegistry, default_registry
from repro.net.remote import RemoteServer
from repro.net.router import CommitDecisionLog, Router
from repro.net.wireserver import WireServer
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk
from repro.workloads.tpcc.config import EncryptionMode, TpccConfig
from repro.workloads.tpcc.driver import CEK_NAME, CMK_NAME, CMK_PATH
from repro.workloads.tpcc.generator import TpccLoader
from repro.workloads.tpcc.invariants import check_invariants
from repro.workloads.tpcc.schema import (
    create_index_statements,
    create_table_statements,
)
from repro.workloads.tpcc.transactions import TpccTransactions

__all__ = [
    "ShardedTpccSystem",
    "build_shard_server",
    "start_sharded_inprocess",
    "start_sharded_system",
]


@dataclass
class _AuditShim:
    """The ``system`` duck-type :func:`check_invariants` wants, shard-local."""

    connection: Connection
    config: TpccConfig
    server: SqlServer


def _shard_audit(server: SqlServer, config: TpccConfig) -> list[str]:
    """Audit one shard's slice of the database at quiesce.

    Every invariant is per-warehouse (or per-row referential), so each
    check closes over data the shard actually owns; the plaintext audit
    connection never touches an encrypted column.
    """
    conn = connect(server, default_registry(), column_encryption=False)
    try:
        return check_invariants(_AuditShim(conn, config, server))
    finally:
        conn.close()


def build_shard_server(
    config: TpccConfig,
    worker_threads: int = 4,
    lock_timeout_s: float = 5.0,
    freshness_anchor: bool = False,
) -> tuple[SqlServer, bytes | None]:
    """One shard's engine: server (+ enclave/HGS under RND) + trust anchor.

    Returns ``(server, enclave_author_id)`` — the author id feeds the
    client's attestation policy, which trusts the union over shards.
    """
    from repro.attestation.hgs import HostGuardianService
    from repro.attestation.tpm import HostMachine
    from repro.crypto.rsa import RsaKeyPair
    from repro.enclave import Enclave, EnclaveBinary

    enclave = None
    host = None
    hgs = None
    author_id = None
    if config.mode is EncryptionMode.RND:
        author = RsaKeyPair.generate(1024)
        binary = EnclaveBinary.build(author)
        enclave = Enclave(binary)
        host = HostMachine()
        hgs = HostGuardianService()
        hgs.register_host(host.boot_and_measure())
        author_id = binary.author_id

    freshness = None
    if freshness_anchor:
        from repro.attestation.tpm import TpmNvAnchor
        from repro.sqlengine.storage.freshness import (
            EnclaveAnchorBackend,
            FreshnessAnchor,
        )

        backend = EnclaveAnchorBackend(enclave) if enclave is not None else TpmNvAnchor()
        freshness = FreshnessAnchor(backend)

    server = SqlServer(
        enclave=enclave,
        host_machine=host,
        hgs=hgs,
        enclave_threads=config.enclave_threads,
        lock_timeout_s=lock_timeout_s,
        eval_batch_size=config.eval_batch_size,
        worker_threads=worker_threads,
        freshness=freshness,
    )
    return server, author_id


def _shard_process_main(
    shard_idx: int,
    n_shards: int,
    config: TpccConfig,
    worker_threads: int,
    lock_timeout_s: float,
    freshness_anchor: bool,
    pipe,
) -> None:
    """Entry point of one shard OS process: build, serve, wait for shutdown."""
    server, author_id = build_shard_server(
        config,
        worker_threads=worker_threads,
        lock_timeout_s=lock_timeout_s,
        freshness_anchor=freshness_anchor,
    )
    wire = WireServer(
        server,
        name=f"shard{shard_idx}",
        shard_count=n_shards,
        audit_hook=lambda: _shard_audit(server, config),
    ).start()
    pipe.send((wire.port, author_id))
    pipe.close()
    # AdminShutdown flips the stopping event; park until then.
    wire._stopping.wait()
    wire.stop()


def _router_process_main(shard_addresses, decision_log_path, pipe) -> None:
    """Entry point of the router OS process (stateless but for the log)."""
    router = Router(
        shard_addresses,
        decision_log=CommitDecisionLog(decision_log_path),
    ).start()
    pipe.send(router.port)
    pipe.close()
    router._stopping.wait()
    router.stop()


@dataclass
class ShardedTpccSystem:
    """A running sharded deployment, from the client's side of the wire.

    ``shard_admins`` are direct (router-bypassing) connections to each
    shard, used for crash/recover/audit orchestration; ``processes`` is
    empty for the in-process shape.
    """

    config: TpccConfig
    n_shards: int
    router_address: tuple[str, int]
    shard_addresses: list[tuple[str, int]]
    registry: KeyProviderRegistry
    connection: Connection                     # setup/loader connection (via router)
    remote: RemoteServer                       # its underlying wire stub
    attestation_policy: object | None = None
    processes: list = field(default_factory=list)
    inprocess: dict = field(default_factory=dict)   # name -> WireServer/Router
    _clients: list[Connection] = field(default_factory=list)

    # ------------------------------------------------------------------ clients

    def shard_admin(self, shard_idx: int) -> RemoteServer:
        return RemoteServer(*self.shard_addresses[shard_idx])

    def new_client(
        self,
        seed: int,
        simulated_rtt_s: float = 0.0,
        home_warehouse: int | None = None,
    ) -> TpccTransactions:
        """One pinned client stream: its own socket(s), home-warehouse affinity."""
        if home_warehouse is None:
            home_warehouse = seed % self.config.warehouses + 1
        remote = RemoteServer(*self.router_address, affinity=home_warehouse)
        connection = connect(
            remote,
            self.registry,
            column_encryption=self.config.ae_connection,
            attestation_policy=self.attestation_policy,
            simulated_rtt_s=simulated_rtt_s,
        )
        self._clients.append(connection)
        return TpccTransactions(
            connection=connection,
            config=self.config,
            rng=random.Random(seed),
            home_warehouse=home_warehouse,
        )

    def audit(self) -> list[str]:
        """Run every shard's invariant audit (must be quiesced)."""
        violations: list[str] = []
        for idx in range(self.n_shards):
            admin = self.shard_admin(idx)
            try:
                violations.extend(f"shard{idx}: {v}" for v in admin.audit())
            finally:
                admin.close()
        return violations

    # ---------------------------------------------------------------- teardown

    def shutdown(self, timeout_s: float = 10.0) -> None:
        for conn in self._clients:
            try:
                conn.close()
            except Exception:
                pass
        try:
            self.connection.close()
        except Exception:
            pass
        try:
            self.remote.shutdown()        # stops the router
        except Exception:
            pass
        for idx in range(self.n_shards):
            try:
                self.shard_admin(idx).shutdown()
            except Exception:
                pass
        for proc in self.processes:
            proc.join(timeout=timeout_s)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout_s)
        for runner in self.inprocess.values():
            runner.stop()


def _provision_and_load(system: ShardedTpccSystem) -> None:
    """CMK/CEK + schema + data + indexes, router-first (see module doc)."""
    config = system.config
    connection = system.connection
    if config.uses_encryption:
        provider = system.registry.get("AZURE_KEY_VAULT_PROVIDER")
        cmk = provision_cmk(
            connection,
            provider,
            CMK_NAME,
            CMK_PATH,
            allow_enclave_computations=config.mode is EncryptionMode.RND,
        )
        provision_cek(connection, provider, cmk, CEK_NAME)
    for ddl in create_table_statements(config, CEK_NAME):
        connection.execute_ddl(ddl)
    TpccLoader(connection=connection, config=config).load()

    index_statements = list(create_index_statements(config))
    if config.mode is EncryptionMode.RND:
        # Each shard's enclave must hold the CEK to build indexes over
        # randomized columns: attest to every shard directly and build.
        for address in system.shard_addresses:
            shard_remote = RemoteServer(*address)
            shard_conn = connect(
                shard_remote,
                system.registry,
                column_encryption=True,
                attestation_policy=system.attestation_policy,
            )
            try:
                for ddl in index_statements:
                    shard_conn.execute_ddl(ddl)
            finally:
                shard_conn.close()
                shard_remote.close()
    else:
        for ddl in index_statements:
            connection.execute_ddl(ddl)     # broadcast


def _assemble(
    config: TpccConfig,
    n_shards: int,
    router_address: tuple[str, int],
    shard_addresses: list[tuple[str, int]],
    author_ids: list[bytes | None],
    processes: list,
    inprocess: dict,
) -> ShardedTpccSystem:
    policy = None
    if config.mode is EncryptionMode.RND:
        from repro.attestation.hgs import AttestationPolicy

        policy = AttestationPolicy(
            trusted_author_ids=frozenset(a for a in author_ids if a is not None)
        )
    registry = default_registry()
    remote = RemoteServer(*router_address, affinity=1)
    connection = connect(
        remote,
        registry,
        column_encryption=config.ae_connection,
        attestation_policy=policy,
    )
    system = ShardedTpccSystem(
        config=config,
        n_shards=n_shards,
        router_address=router_address,
        shard_addresses=shard_addresses,
        registry=registry,
        connection=connection,
        remote=remote,
        attestation_policy=policy,
        processes=processes,
        inprocess=inprocess,
    )
    _provision_and_load(system)
    return system


def start_sharded_system(
    config: TpccConfig,
    n_shards: int,
    worker_threads: int = 4,
    lock_timeout_s: float = 5.0,
    freshness_anchor: bool = False,
    decision_log_path: str | None = None,
    start_timeout_s: float = 60.0,
) -> ShardedTpccSystem:
    """N shard OS processes + one router OS process, loaded and ready."""
    ctx = multiprocessing.get_context("fork")
    processes = []
    shard_addresses: list[tuple[str, int]] = []
    author_ids: list[bytes | None] = []
    pipes = []
    for shard_idx in range(n_shards):
        parent_end, child_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_process_main,
            args=(
                shard_idx,
                n_shards,
                config,
                worker_threads,
                lock_timeout_s,
                freshness_anchor,
                child_end,
            ),
            name=f"tpcc-shard-{shard_idx}",
            daemon=True,
        )
        proc.start()
        child_end.close()
        processes.append(proc)
        pipes.append(parent_end)
    for parent_end in pipes:
        if not parent_end.poll(start_timeout_s):
            raise TimeoutError("shard process did not report its port")
        port, author_id = parent_end.recv()
        shard_addresses.append(("127.0.0.1", port))
        author_ids.append(author_id)

    parent_end, child_end = ctx.Pipe(duplex=False)
    router_proc = ctx.Process(
        target=_router_process_main,
        args=(shard_addresses, decision_log_path, child_end),
        name="tpcc-router",
        daemon=True,
    )
    router_proc.start()
    child_end.close()
    processes.append(router_proc)
    if not parent_end.poll(start_timeout_s):
        raise TimeoutError("router process did not report its port")
    router_port = parent_end.recv()

    return _assemble(
        config,
        n_shards,
        ("127.0.0.1", router_port),
        shard_addresses,
        author_ids,
        processes,
        inprocess={},
    )


def start_sharded_inprocess(
    config: TpccConfig,
    n_shards: int,
    worker_threads: int = 4,
    lock_timeout_s: float = 5.0,
    freshness_anchor: bool = False,
    decision_log_path: str | None = None,
) -> tuple[ShardedTpccSystem, list[SqlServer], Router]:
    """Same topology, all threads in this process (tests reach the engines)."""
    servers: list[SqlServer] = []
    wires: list[WireServer] = []
    author_ids: list[bytes | None] = []
    for shard_idx in range(n_shards):
        server, author_id = build_shard_server(
            config,
            worker_threads=worker_threads,
            lock_timeout_s=lock_timeout_s,
            freshness_anchor=freshness_anchor,
        )
        servers.append(server)
        author_ids.append(author_id)
        wires.append(
            WireServer(
                server,
                name=f"shard{shard_idx}",
                shard_count=n_shards,
                audit_hook=(
                    lambda s=server: _shard_audit(s, config)
                ),
            ).start()
        )
    router = Router(
        [(w.host, w.port) for w in wires],
        decision_log=CommitDecisionLog(decision_log_path),
    ).start()
    system = _assemble(
        config,
        n_shards,
        (router.host, router.port),
        [(w.host, w.port) for w in wires],
        author_ids,
        processes=[],
        inprocess={"router": router, **{f"shard{i}": w for i, w in enumerate(wires)}},
    )
    return system, servers, router


def wait_for_quiesce(system: ShardedTpccSystem, timeout_s: float = 5.0) -> None:
    """Give in-flight session teardown a moment before auditing."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if system.remote.ping():
                return
        except Exception:
            pass
        time.sleep(0.05)
