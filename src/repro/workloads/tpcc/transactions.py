"""The five TPC-C transactions, with the paper's modifications.

Section 5.3: Payment and Order-Status are modified to remove the ORDER BY
on C_FIRST (AEv2 does not support ORDER BY in the enclave) — the matching
customers are fetched with the filter predicate and the *client* sorts the
decrypted first names to pick the median customer. The only scalar
operation over encrypted data is ``C_LAST = @c_last``, used by 60% of
Payment and Order-Status transactions (the other 40% select by C_ID).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.client.driver import Connection
from repro.workloads.tpcc.config import TpccConfig
from repro.workloads.tpcc.generator import c_last_name, nurand


@dataclass
class TxnCounts:
    new_order: int = 0
    payment: int = 0
    order_status: int = 0
    delivery: int = 0
    stock_level: int = 0
    rollbacks: int = 0

    @property
    def total(self) -> int:
        return (
            self.new_order + self.payment + self.order_status
            + self.delivery + self.stock_level
        )


@dataclass
class TpccTransactions:
    """Executes TPC-C transactions through a driver connection."""

    connection: Connection
    config: TpccConfig
    rng: random.Random = field(default_factory=lambda: random.Random(7))
    counts: TxnCounts = field(default_factory=TxnCounts)
    #: Pin every transaction to one warehouse (sharded runs: the client's
    #: home warehouse, so statements route to — and the enclave session
    #: lives on — a single shard). None keeps the uniform spec behavior.
    home_warehouse: int | None = None

    # -- random helpers ---------------------------------------------------------

    def _random_warehouse(self) -> int:
        if self.home_warehouse is not None:
            return self.home_warehouse
        return self.rng.randint(1, self.config.warehouses)

    def _random_district(self) -> int:
        return self.rng.randint(1, self.config.districts_per_warehouse)

    def _random_customer_id(self) -> int:
        return nurand(self.rng, 1023, 1, self.config.customers_per_district)

    def _random_last_name(self) -> str:
        limit = min(self.config.customers_per_district, 1000) - 1
        return c_last_name(nurand(self.rng, 255, 0, max(limit, 0)))

    def _random_item(self) -> int:
        return nurand(self.rng, 8191, 1, self.config.items)

    # -- customer selection (the encrypted predicate) ------------------------------

    def _customer_by_last_name(self, conn: Connection, w_id: int, d_id: int, last: str):
        """Filter by C_LAST, decrypt, sort by C_FIRST client-side, pick the
        median — the paper's replacement for the removed ORDER BY."""
        result = conn.execute(
            "SELECT C_ID, C_FIRST, C_BALANCE, C_DISCOUNT, C_CREDIT FROM CUSTOMER "
            "WHERE C_W_ID = @w AND C_D_ID = @d AND C_LAST = @last",
            {"w": w_id, "d": d_id, "last": last},
        )
        if not result.rows:
            return None
        ordered = sorted(result.rows, key=lambda row: row[1] or "")
        return ordered[len(ordered) // 2]

    def _customer_by_id(self, conn: Connection, w_id: int, d_id: int, c_id: int):
        result = conn.execute(
            "SELECT C_ID, C_FIRST, C_BALANCE, C_DISCOUNT, C_CREDIT FROM CUSTOMER "
            "WHERE C_W_ID = @w AND C_D_ID = @d AND C_ID = @c",
            {"w": w_id, "d": d_id, "c": c_id},
        )
        return result.rows[0] if result.rows else None

    # -- the five transactions -------------------------------------------------------

    def new_order(self) -> None:
        conn = self.connection
        w_id = self._random_warehouse()
        d_id = self._random_district()
        c_id = self._random_customer_id()
        n_items = self.rng.randint(5, 15)

        conn.begin()
        try:
            conn.execute(
                "SELECT W_TAX FROM WAREHOUSE WHERE W_ID = @w", {"w": w_id}
            )
            # Atomic increment under the row lock: the assignment expression
            # is evaluated against the locked-current row, so concurrent
            # NewOrders never allocate the same order id.
            conn.execute(
                "UPDATE DISTRICT SET D_NEXT_O_ID = D_NEXT_O_ID + 1 "
                "WHERE D_W_ID = @w AND D_ID = @d",
                {"w": w_id, "d": d_id},
            )
            district = conn.execute(
                "SELECT D_TAX, D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w AND D_ID = @d",
                {"w": w_id, "d": d_id},
            )
            o_id = district.rows[0][1] - 1
            self._customer_by_id(conn, w_id, d_id, c_id)
            conn.execute(
                "INSERT INTO ORDERS (O_ID, O_D_ID, O_W_ID, O_C_ID, O_ENTRY_D, "
                "O_CARRIER_ID, O_OL_CNT, O_ALL_LOCAL) "
                "VALUES (@o, @d, @w, @c, @entry, NULL, @cnt, 1)",
                {"o": o_id, "d": d_id, "w": w_id, "c": c_id,
                 "entry": "2026-07-06 00:00:00", "cnt": n_items},
            )
            conn.execute(
                "INSERT INTO NEW_ORDER (NO_O_ID, NO_D_ID, NO_W_ID) VALUES (@o, @d, @w)",
                {"o": o_id, "d": d_id, "w": w_id},
            )
            for ol_number in range(1, n_items + 1):
                i_id = self._random_item()
                item = conn.execute(
                    "SELECT I_PRICE FROM ITEM WHERE I_ID = @i", {"i": i_id}
                )
                price = item.rows[0][0]
                stock = conn.execute(
                    "SELECT S_QUANTITY, S_DIST_01 FROM STOCK WHERE S_W_ID = @w AND S_I_ID = @i",
                    {"w": w_id, "i": i_id},
                )
                quantity = self.rng.randint(1, 10)
                s_quantity = stock.rows[0][0]
                new_quantity = (
                    s_quantity - quantity if s_quantity - quantity >= 10
                    else s_quantity - quantity + 91
                )
                # Increments, not absolute writes: under concurrency the
                # assignment expression is evaluated against the locked
                # row, so parallel NewOrders never lose an S_YTD update
                # (the invariant checker sums S_YTD against order lines).
                conn.execute(
                    "UPDATE STOCK SET S_QUANTITY = @q, S_YTD = S_YTD + @add, "
                    "S_ORDER_CNT = S_ORDER_CNT + 1 "
                    "WHERE S_W_ID = @w AND S_I_ID = @i",
                    {"q": new_quantity, "add": quantity, "w": w_id, "i": i_id},
                )
                conn.execute(
                    "INSERT INTO ORDER_LINE (OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER, "
                    "OL_I_ID, OL_SUPPLY_W_ID, OL_DELIVERY_D, OL_QUANTITY, OL_AMOUNT, "
                    "OL_DIST_INFO) VALUES (@o, @d, @w, @n, @i, @sw, NULL, @q, @amt, @info)",
                    {"o": o_id, "d": d_id, "w": w_id, "n": ol_number, "i": i_id,
                     "sw": w_id, "q": quantity,
                     "amt": round(price * quantity, 2), "info": "x" * 24},
                )
            # Spec: 1% of New-Order transactions roll back (invalid item).
            if self.rng.random() < 0.01:
                conn.rollback()
                self.counts.rollbacks += 1
            else:
                conn.commit()
            self.counts.new_order += 1
        except Exception:
            if conn.session.in_transaction:
                conn.rollback()
            raise

    def payment(self) -> None:
        conn = self.connection
        w_id = self._random_warehouse()
        d_id = self._random_district()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)

        conn.begin()
        try:
            # Read-modify-write increments, evaluated under the row lock:
            # concurrent Payments against the same warehouse/district
            # serialize on the lock and never lose an update, which is
            # what makes the money-conservation invariant
            # (W_YTD deltas == D_YTD deltas == Σ H_AMOUNT) hold.
            conn.execute(
                "UPDATE WAREHOUSE SET W_YTD = W_YTD + @amt WHERE W_ID = @w",
                {"amt": amount, "w": w_id},
            )
            conn.execute(
                "UPDATE DISTRICT SET D_YTD = D_YTD + @amt "
                "WHERE D_W_ID = @w AND D_ID = @d",
                {"amt": amount, "w": w_id, "d": d_id},
            )
            # 60% by last name (the encrypted predicate), 40% by id.
            if self.rng.random() < 0.6:
                customer = self._customer_by_last_name(
                    conn, w_id, d_id, self._random_last_name()
                )
            else:
                customer = self._customer_by_id(
                    conn, w_id, d_id, self._random_customer_id()
                )
            if customer is None:
                # No matching customer (a miss in the NURand last-name
                # space): roll the YTD increments back so they stay equal
                # to the HISTORY total, and count the abort.
                conn.rollback()
                self.counts.rollbacks += 1
                self.counts.payment += 1
                return
            c_id = customer[0]
            conn.execute(
                "UPDATE CUSTOMER SET C_BALANCE = C_BALANCE - @amt, "
                "C_YTD_PAYMENT = C_YTD_PAYMENT + @amt, "
                "C_PAYMENT_CNT = C_PAYMENT_CNT + 1 "
                "WHERE C_W_ID = @w AND C_D_ID = @d AND C_ID = @c",
                {"amt": amount, "w": w_id, "d": d_id, "c": c_id},
            )
            conn.execute(
                "INSERT INTO HISTORY (H_C_ID, H_C_D_ID, H_C_W_ID, H_D_ID, H_W_ID, "
                "H_DATE, H_AMOUNT, H_DATA) VALUES (@c, @d, @w, @d, @w, @dt, @amt, @data)",
                {"c": c_id, "d": d_id, "w": w_id,
                 "dt": "2026-07-06 00:00:00", "amt": amount, "data": "payment"},
            )
            conn.commit()
            self.counts.payment += 1
        except Exception:
            if conn.session.in_transaction:
                conn.rollback()
            raise

    def order_status(self) -> None:
        conn = self.connection
        w_id = self._random_warehouse()
        d_id = self._random_district()
        try:
            if self.rng.random() < 0.6:
                customer = self._customer_by_last_name(
                    conn, w_id, d_id, self._random_last_name()
                )
            else:
                customer = self._customer_by_id(
                    conn, w_id, d_id, self._random_customer_id()
                )
            if customer is not None:
                c_id = customer[0]
                orders = conn.execute(
                    "SELECT O_ID, O_ENTRY_D, O_CARRIER_ID FROM ORDERS "
                    "WHERE O_W_ID = @w AND O_D_ID = @d AND O_C_ID = @c",
                    {"w": w_id, "d": d_id, "c": c_id},
                )
                if orders.rows:
                    o_id = max(row[0] for row in orders.rows)
                    conn.execute(
                        "SELECT OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY, OL_AMOUNT, "
                        "OL_DELIVERY_D FROM ORDER_LINE "
                        "WHERE OL_W_ID = @w AND OL_D_ID = @d AND OL_O_ID = @o",
                        {"w": w_id, "d": d_id, "o": o_id},
                    )
            self.counts.order_status += 1
        except Exception:
            if conn.session.in_transaction:
                conn.rollback()
            raise

    def delivery(self) -> None:
        conn = self.connection
        w_id = self._random_warehouse()
        carrier = self.rng.randint(1, 10)
        conn.begin()
        try:
            for d_id in range(1, self.config.districts_per_warehouse + 1):
                pending = conn.execute(
                    "SELECT NO_O_ID FROM NEW_ORDER WHERE NO_W_ID = @w AND NO_D_ID = @d",
                    {"w": w_id, "d": d_id},
                )
                if not pending.rows:
                    continue
                o_id = min(row[0] for row in pending.rows)
                conn.execute(
                    "DELETE FROM NEW_ORDER WHERE NO_W_ID = @w AND NO_D_ID = @d AND NO_O_ID = @o",
                    {"w": w_id, "d": d_id, "o": o_id},
                )
                order = conn.execute(
                    "SELECT O_C_ID FROM ORDERS WHERE O_W_ID = @w AND O_D_ID = @d AND O_ID = @o",
                    {"w": w_id, "d": d_id, "o": o_id},
                )
                conn.execute(
                    "UPDATE ORDERS SET O_CARRIER_ID = @carrier "
                    "WHERE O_W_ID = @w AND O_D_ID = @d AND O_ID = @o",
                    {"carrier": carrier, "w": w_id, "d": d_id, "o": o_id},
                )
                total = conn.execute(
                    "SELECT SUM(OL_AMOUNT) FROM ORDER_LINE "
                    "WHERE OL_W_ID = @w AND OL_D_ID = @d AND OL_O_ID = @o",
                    {"w": w_id, "d": d_id, "o": o_id},
                )
                amount = total.rows[0][0] or 0.0
                if order.rows:
                    c_id = order.rows[0][0]
                    conn.execute(
                        "UPDATE CUSTOMER SET C_BALANCE = C_BALANCE + @amt, "
                        "C_DELIVERY_CNT = C_DELIVERY_CNT + 1 "
                        "WHERE C_W_ID = @w AND C_D_ID = @d AND C_ID = @c",
                        {"amt": amount, "w": w_id, "d": d_id, "c": c_id},
                    )
            conn.commit()
            self.counts.delivery += 1
        except Exception:
            if conn.session.in_transaction:
                conn.rollback()
            raise

    def stock_level(self) -> None:
        conn = self.connection
        w_id = self._random_warehouse()
        d_id = self._random_district()
        threshold = self.rng.randint(10, 20)
        district = conn.execute(
            "SELECT D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = @w AND D_ID = @d",
            {"w": w_id, "d": d_id},
        )
        next_o_id = district.rows[0][0]
        lines = conn.execute(
            "SELECT OL_I_ID FROM ORDER_LINE WHERE OL_W_ID = @w AND OL_D_ID = @d "
            "AND OL_O_ID >= @lo AND OL_O_ID < @hi",
            {"w": w_id, "d": d_id, "lo": max(next_o_id - 20, 1), "hi": next_o_id},
        )
        item_ids = {row[0] for row in lines.rows}
        low = 0
        for i_id in item_ids:
            stock = conn.execute(
                "SELECT S_QUANTITY FROM STOCK WHERE S_W_ID = @w AND S_I_ID = @i",
                {"w": w_id, "i": i_id},
            )
            if stock.rows and stock.rows[0][0] < threshold:
                low += 1
        self.counts.stock_level += 1

    # -- mix dispatch -------------------------------------------------------------------

    def run_one(self, kind: str) -> None:
        getattr(self, kind)()

    def run_one_with_retry(self, kind: str, max_attempts: int = 3) -> None:
        """Run a transaction, retrying on lock timeouts (deadlock victims).

        Lock-wait timeouts under concurrency are expected behaviour; the
        client rolls back and retries, as any TPC-C driver does.
        """
        from repro.errors import LockTimeoutError

        for attempt in range(max_attempts):
            try:
                self.run_one(kind)
                return
            except LockTimeoutError:
                if self.connection.session.in_transaction:
                    self.connection.rollback()
                self.counts.rollbacks += 1
                if attempt == max_attempts - 1:
                    return  # give up on this transaction instance

    def run_mix(
        self,
        n_transactions: int,
        mix: list[tuple[str, float]],
        retry_on_timeout: bool = True,
    ) -> None:
        kinds = [k for k, __ in mix]
        weights = [w for __, w in mix]
        for __ in range(n_transactions):
            kind = self.rng.choices(kinds, weights=weights, k=1)[0]
            if retry_on_timeout:
                self.run_one_with_retry(kind)
            else:
                self.run_one(kind)
