"""TPC-C data generation (population rules of the spec, scaled down).

Customer last names follow the spec's syllable construction and the
NURand non-uniform selection, so the Payment/Order-Status "lookup by last
name" path — the one that exercises encrypted-column predicates — has the
spec's skew.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.client.driver import Connection
from repro.workloads.tpcc.config import TpccConfig

SYLLABLES = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
]

_C_FOR_C_LAST = 123  # spec: a per-run constant for NURand(255, ...)


def c_last_name(number: int) -> str:
    """Spec rule: concatenate three syllables from the number's digits."""
    return (
        SYLLABLES[(number // 100) % 10]
        + SYLLABLES[(number // 10) % 10]
        + SYLLABLES[number % 10]
    )


def nurand(rng: random.Random, a: int, x: int, y: int, c: int = _C_FOR_C_LAST) -> int:
    """The spec's non-uniform random distribution."""
    return ((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1) + x


@dataclass
class TpccLoader:
    """Populates a fresh database through the (AE-aware) connection, so the
    load itself exercises parameter encryption for PII columns."""

    connection: Connection
    config: TpccConfig

    def load(self) -> None:
        rng = random.Random(self.config.seed)
        self._load_items(rng)
        for w_id in range(1, self.config.warehouses + 1):
            self._load_warehouse(rng, w_id)

    # -- pieces -----------------------------------------------------------------

    def _load_items(self, rng: random.Random) -> None:
        conn = self.connection
        for i_id in range(1, self.config.items + 1):
            conn.execute(
                "INSERT INTO ITEM (I_ID, I_IM_ID, I_NAME, I_PRICE, I_DATA) "
                "VALUES (@id, @im, @name, @price, @data)",
                {
                    "id": i_id,
                    "im": rng.randint(1, 10000),
                    "name": f"item-{i_id}",
                    "price": round(rng.uniform(1.0, 100.0), 2),
                    "data": _maybe_original(rng),
                },
            )

    def _load_warehouse(self, rng: random.Random, w_id: int) -> None:
        conn = self.connection
        conn.execute(
            "INSERT INTO WAREHOUSE (W_ID, W_NAME, W_STREET_1, W_STREET_2, W_CITY, "
            "W_STATE, W_ZIP, W_TAX, W_YTD) "
            "VALUES (@w, @name, @s1, @s2, @city, @state, @zip, @tax, @ytd)",
            {
                "w": w_id,
                "name": f"wh-{w_id}",
                "s1": _street(rng),
                "s2": _street(rng),
                "city": _city(rng),
                "state": _state(rng),
                "zip": _zip(rng),
                "tax": round(rng.uniform(0.0, 0.2), 4),
                "ytd": 300000.0,
            },
        )
        for s_i_id in range(1, self.config.items + 1):
            conn.execute(
                "INSERT INTO STOCK (S_I_ID, S_W_ID, S_QUANTITY, S_DIST_01, S_YTD, "
                "S_ORDER_CNT, S_REMOTE_CNT, S_DATA) "
                "VALUES (@i, @w, @q, @d, 0, 0, 0, @data)",
                {
                    "i": s_i_id,
                    "w": w_id,
                    "q": rng.randint(10, 100),
                    "d": _alpha(rng, 24),
                    "data": _maybe_original(rng),
                },
            )
        for d_id in range(1, self.config.districts_per_warehouse + 1):
            self._load_district(rng, w_id, d_id)

    def _load_district(self, rng: random.Random, w_id: int, d_id: int) -> None:
        conn = self.connection
        customers = self.config.customers_per_district
        conn.execute(
            "INSERT INTO DISTRICT (D_ID, D_W_ID, D_NAME, D_STREET_1, D_STREET_2, "
            "D_CITY, D_STATE, D_ZIP, D_TAX, D_YTD, D_NEXT_O_ID) "
            "VALUES (@d, @w, @name, @s1, @s2, @city, @state, @zip, @tax, 30000.0, @next)",
            {
                "d": d_id,
                "w": w_id,
                "name": f"d-{d_id}",
                "s1": _street(rng),
                "s2": _street(rng),
                "city": _city(rng),
                "state": _state(rng),
                "zip": _zip(rng),
                "tax": round(rng.uniform(0.0, 0.2), 4),
                "next": customers + 1,
            },
        )
        for c_id in range(1, customers + 1):
            # Spec: first 1000 customers cycle last names 0..999; beyond
            # that, NURand. At reduced scale the cycle covers everyone.
            last = c_last_name((c_id - 1) % 1000)
            conn.execute(
                "INSERT INTO CUSTOMER (C_ID, C_D_ID, C_W_ID, C_FIRST, C_MIDDLE, "
                "C_LAST, C_STREET_1, C_STREET_2, C_CITY, C_STATE, C_ZIP, C_PHONE, "
                "C_SINCE, C_CREDIT, C_CREDIT_LIM, C_DISCOUNT, C_BALANCE, "
                "C_YTD_PAYMENT, C_PAYMENT_CNT, C_DELIVERY_CNT, C_DATA) "
                "VALUES (@id, @d, @w, @first, 'OE', @last, @s1, @s2, @city, @state, "
                "@zip, @phone, @since, @credit, 50000.0, @disc, -10.0, 10.0, 1, 0, @data)",
                {
                    "id": c_id,
                    "d": d_id,
                    "w": w_id,
                    "first": _alpha(rng, rng.randint(8, 16)),
                    "last": last,
                    "s1": _street(rng),
                    "s2": _street(rng),
                    "city": _city(rng),
                    "state": _state(rng),
                    "zip": _zip(rng),
                    "phone": "".join(rng.choice("0123456789") for __ in range(16)),
                    "since": "2026-01-01 00:00:00",
                    "credit": "BC" if rng.random() < 0.1 else "GC",
                    "disc": round(rng.uniform(0.0, 0.5), 4),
                    "data": _alpha(rng, rng.randint(30, 100)),
                },
            )
            # One initial order per customer keeps Order-Status/Delivery
            # meaningful without full-scale history.
            o_id = c_id
            conn.execute(
                "INSERT INTO ORDERS (O_ID, O_D_ID, O_W_ID, O_C_ID, O_ENTRY_D, "
                "O_CARRIER_ID, O_OL_CNT, O_ALL_LOCAL) "
                "VALUES (@o, @d, @w, @c, @entry, @carrier, @cnt, 1)",
                {
                    "o": o_id,
                    "d": d_id,
                    "w": w_id,
                    "c": c_id,
                    "entry": "2026-01-01 00:00:00",
                    "carrier": rng.randint(1, 10) if rng.random() < 0.7 else None,
                    "cnt": 5,
                },
            )
            for ol_number in range(1, 6):
                conn.execute(
                    "INSERT INTO ORDER_LINE (OL_O_ID, OL_D_ID, OL_W_ID, OL_NUMBER, "
                    "OL_I_ID, OL_SUPPLY_W_ID, OL_DELIVERY_D, OL_QUANTITY, OL_AMOUNT, "
                    "OL_DIST_INFO) VALUES (@o, @d, @w, @n, @i, @sw, @dd, 5, @amt, @info)",
                    {
                        "o": o_id,
                        "d": d_id,
                        "w": w_id,
                        "n": ol_number,
                        "i": rng.randint(1, self.config.items),
                        "sw": w_id,
                        "dd": "2026-01-02 00:00:00",
                        "amt": round(rng.uniform(0.01, 99.99), 2),
                        "info": _alpha(rng, 24),
                    },
                )
            if c_id > customers * 2 // 3:
                conn.execute(
                    "INSERT INTO NEW_ORDER (NO_O_ID, NO_D_ID, NO_W_ID) VALUES (@o, @d, @w)",
                    {"o": o_id, "d": d_id, "w": w_id},
                )


def _alpha(rng: random.Random, length: int) -> str:
    return "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for __ in range(length))


def _street(rng: random.Random) -> str:
    return f"{rng.randint(1, 999)} {_alpha(rng, 8)} st"[:20]


def _city(rng: random.Random) -> str:
    return _alpha(rng, rng.randint(6, 12))


def _state(rng: random.Random) -> str:
    return "".join(rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ") for __ in range(2))


def _zip(rng: random.Random) -> str:
    return "".join(rng.choice("0123456789") for __ in range(4)) + "11111"


def _maybe_original(rng: random.Random) -> str:
    data = _alpha(rng, rng.randint(26, 50))
    if rng.random() < 0.1:
        pos = rng.randint(0, len(data) - 8)
        data = data[:pos] + "ORIGINAL" + data[pos + 8 :]
    return data[:50]
