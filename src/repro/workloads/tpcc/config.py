"""TPC-C configuration: scale factors and encryption modes (Section 5).

The paper's configurations:

* **SQL-PT** — no encryption, plain connection string;
* **SQL-PT-AEConn** — no encryption, AE connection string (pays the extra
  ``sp_describe_parameter_encryption`` round-trip);
* **SQL-AE-DET** — PII columns DET-encrypted with enclave-*disabled* keys;
* **SQL-AE-RND-k** — PII columns RND-encrypted with enclave-enabled keys
  and *k* enclave threads (the paper uses k ∈ {1, 4}).

The paper runs W=800; a pure-Python engine calibrates per-transaction
costs at reduced scale and feeds them into the queueing model, so the
defaults here are laptop-sized and fully configurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

# The PII columns the paper encrypts (all in CUSTOMER, one shared CEK).
PII_COLUMNS = ("C_FIRST", "C_LAST", "C_STREET_1", "C_STREET_2", "C_CITY", "C_STATE")


class EncryptionMode(enum.Enum):
    PLAINTEXT = "SQL-PT"
    PLAINTEXT_AECONN = "SQL-PT-AEConn"
    DET = "SQL-AE-DET"
    RND = "SQL-AE-RND"


@dataclass(frozen=True)
class TpccConfig:
    """One benchmark configuration."""

    warehouses: int = 2
    districts_per_warehouse: int = 2
    customers_per_district: int = 30
    items: int = 100
    mode: EncryptionMode = EncryptionMode.PLAINTEXT
    enclave_threads: int = 4
    seed: int = 42
    # The paper's Figure 8/9 system evaluates RND predicates one ecall
    # per row; batched ecalls (docs/PERF.md) are this repro's extension,
    # so the faithful calibration pins them off.
    eval_batch_size: int = 1

    @property
    def uses_encryption(self) -> bool:
        return self.mode in (EncryptionMode.DET, EncryptionMode.RND)

    @property
    def ae_connection(self) -> bool:
        return self.mode is not EncryptionMode.PLAINTEXT

    @property
    def label(self) -> str:
        if self.mode is EncryptionMode.RND:
            return f"SQL-AE-RND-{self.enclave_threads}"
        return self.mode.value


# The paper's transaction mix (standard TPC-C weights).
TRANSACTION_MIX: list[tuple[str, float]] = [
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
]
