"""TPC-C schema DDL, with the paper's encryption configuration.

Nine tables; the Section 5.3 configuration encrypts the six PII columns of
CUSTOMER under a single CEK, and creates the NONCLUSTERED (non-unique)
index ``CUSTOMER_NC1 ON CUSTOMER(C_W_ID, C_D_ID, C_LAST, C_FIRST, C_ID)``
— the paper's deviation from the spec's unique constraint, necessary
because a unique index over encrypted columns cannot be checked without
enclave round-trips on every insert.
"""

from __future__ import annotations

from repro.workloads.tpcc.config import PII_COLUMNS, EncryptionMode, TpccConfig

ALGORITHM = "AEAD_AES_256_CBC_HMAC_SHA_256"


def _enc_clause(config: TpccConfig, cek_name: str) -> str:
    if not config.uses_encryption:
        return ""
    scheme = "Deterministic" if config.mode is EncryptionMode.DET else "Randomized"
    return (
        f" ENCRYPTED WITH (COLUMN_ENCRYPTION_KEY = {cek_name}, "
        f"ENCRYPTION_TYPE = {scheme}, ALGORITHM = '{ALGORITHM}')"
    )


def create_table_statements(config: TpccConfig, cek_name: str = "TpccCEK") -> list[str]:
    """DDL for the nine TPC-C tables under the given configuration."""
    enc = _enc_clause(config, cek_name)
    return [
        """CREATE TABLE WAREHOUSE (
            W_ID int NOT NULL, W_NAME varchar(10), W_STREET_1 varchar(20),
            W_STREET_2 varchar(20), W_CITY varchar(20), W_STATE varchar(2),
            W_ZIP varchar(9), W_TAX float, W_YTD float,
            PRIMARY KEY (W_ID))""",
        """CREATE TABLE DISTRICT (
            D_ID int NOT NULL, D_W_ID int NOT NULL, D_NAME varchar(10),
            D_STREET_1 varchar(20), D_STREET_2 varchar(20), D_CITY varchar(20),
            D_STATE varchar(2), D_ZIP varchar(9), D_TAX float, D_YTD float,
            D_NEXT_O_ID int)""",
        f"""CREATE TABLE CUSTOMER (
            C_ID int NOT NULL, C_D_ID int NOT NULL, C_W_ID int NOT NULL,
            C_FIRST varchar(16){enc}, C_MIDDLE varchar(2),
            C_LAST varchar(16){enc},
            C_STREET_1 varchar(20){enc}, C_STREET_2 varchar(20){enc},
            C_CITY varchar(20){enc}, C_STATE varchar(2){enc},
            C_ZIP varchar(9), C_PHONE varchar(16), C_SINCE varchar(25),
            C_CREDIT varchar(2), C_CREDIT_LIM float, C_DISCOUNT float,
            C_BALANCE float, C_YTD_PAYMENT float, C_PAYMENT_CNT int,
            C_DELIVERY_CNT int, C_DATA varchar(500))""",
        """CREATE TABLE HISTORY (
            H_C_ID int, H_C_D_ID int, H_C_W_ID int, H_D_ID int, H_W_ID int,
            H_DATE varchar(25), H_AMOUNT float, H_DATA varchar(24))""",
        """CREATE TABLE NEW_ORDER (
            NO_O_ID int NOT NULL, NO_D_ID int NOT NULL, NO_W_ID int NOT NULL)""",
        """CREATE TABLE ORDERS (
            O_ID int NOT NULL, O_D_ID int NOT NULL, O_W_ID int NOT NULL,
            O_C_ID int, O_ENTRY_D varchar(25), O_CARRIER_ID int,
            O_OL_CNT int, O_ALL_LOCAL int)""",
        """CREATE TABLE ORDER_LINE (
            OL_O_ID int NOT NULL, OL_D_ID int NOT NULL, OL_W_ID int NOT NULL,
            OL_NUMBER int NOT NULL, OL_I_ID int, OL_SUPPLY_W_ID int,
            OL_DELIVERY_D varchar(25), OL_QUANTITY int, OL_AMOUNT float,
            OL_DIST_INFO varchar(24))""",
        """CREATE TABLE ITEM (
            I_ID int NOT NULL, I_IM_ID int, I_NAME varchar(24),
            I_PRICE float, I_DATA varchar(50),
            PRIMARY KEY (I_ID))""",
        """CREATE TABLE STOCK (
            S_I_ID int NOT NULL, S_W_ID int NOT NULL, S_QUANTITY int,
            S_DIST_01 varchar(24), S_YTD int, S_ORDER_CNT int,
            S_REMOTE_CNT int, S_DATA varchar(50))""",
    ]


def create_index_statements(config: TpccConfig) -> list[str]:
    """Secondary indexes, including the paper's CUSTOMER_NC1."""
    return [
        "CREATE UNIQUE INDEX DISTRICT_PK ON DISTRICT(D_W_ID, D_ID)",
        "CREATE UNIQUE INDEX CUSTOMER_PK ON CUSTOMER(C_W_ID, C_D_ID, C_ID)",
        # The paper: NONCLUSTERED, non-unique, deviating from the spec.
        "CREATE NONCLUSTERED INDEX CUSTOMER_NC1 ON "
        "CUSTOMER(C_W_ID, C_D_ID, C_LAST, C_FIRST, C_ID)",
        "CREATE UNIQUE INDEX NEW_ORDER_PK ON NEW_ORDER(NO_W_ID, NO_D_ID, NO_O_ID)",
        "CREATE UNIQUE INDEX ORDERS_PK ON ORDERS(O_W_ID, O_D_ID, O_ID)",
        "CREATE UNIQUE INDEX ORDER_LINE_PK ON "
        "ORDER_LINE(OL_W_ID, OL_D_ID, OL_O_ID, OL_NUMBER)",
        "CREATE UNIQUE INDEX STOCK_PK ON STOCK(S_W_ID, S_I_ID)",
    ]
