"""TPC-C consistency invariants, checked at quiesce.

These are the spec's consistency conditions (TPC-C clause 3.3.2) adapted
to this loader's initial state, plus a physical index-vs-heap audit. They
only hold if the engine provides serializable-equivalent execution: a
single lost update to ``W_YTD`` or ``S_YTD``, a torn order-id allocation,
or a B-tree entry missed during a concurrent split all surface as a
violation here. The concurrency stress test
(``tests/workloads/test_concurrency_stress.py``) runs a multi-threaded
mix and asserts ``check_invariants`` returns no violations.

Checked conditions (loader initial state in parentheses):

* **Money conservation** — per warehouse,
  ``W_YTD − 300000 == Σ (D_YTD − 30000) == Σ H_AMOUNT``; Payment either
  commits all three writes or rolls all of them back.
* **Order-id allocation** — per district,
  ``D_NEXT_O_ID − 1 == count(ORDERS)``: the atomic increment in NewOrder
  never skips or duplicates an order id.
* **Stock flow** — per warehouse, ``Σ S_YTD`` equals the summed
  ``OL_QUANTITY`` of post-load order lines (loader orders have
  ``OL_O_ID ≤ customers_per_district``; S_YTD starts at 0).
* **Referential** — every NEW_ORDER row points at an existing order.
* **Physical** — every usable index agrees with its heap
  (:meth:`~repro.sqlengine.engine.StorageEngine.verify_index_consistency`).

All comparisons over money columns use a small absolute tolerance:
increments are applied in SQL expression order, Python re-sums in scan
order, and float addition is not associative.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

#: Float-sum tolerance (dollars). Payments are ≤ 5000.00 each; double
#: rounding over thousands of them stays far below a cent.
_TOL = 0.01

_W_YTD_INITIAL = 300000.0
_D_YTD_INITIAL = 30000.0


def check_invariants(system) -> list[str]:
    """Audit a quiesced :class:`~repro.workloads.tpcc.driver.TpccSystem`.

    Returns a list of human-readable violation strings — empty means every
    invariant holds. Must be called with no transaction in flight.
    """
    conn = system.connection
    config = system.config
    violations: list[str] = []

    # -- money conservation ------------------------------------------------
    warehouses = {
        row[0]: row[1]
        for row in conn.execute("SELECT W_ID, W_YTD FROM WAREHOUSE").rows
    }
    district_totals: dict[int, float] = defaultdict(float)
    for w_id, d_ytd in conn.execute("SELECT D_W_ID, D_YTD FROM DISTRICT").rows:
        district_totals[w_id] += d_ytd - _D_YTD_INITIAL
    history_totals: dict[int, float] = defaultdict(float)
    for w_id, amount in conn.execute("SELECT H_W_ID, H_AMOUNT FROM HISTORY").rows:
        history_totals[w_id] += amount
    for w_id, w_ytd in sorted(warehouses.items()):
        w_delta = w_ytd - _W_YTD_INITIAL
        d_delta = district_totals.get(w_id, 0.0)
        h_total = history_totals.get(w_id, 0.0)
        if not math.isclose(w_delta, d_delta, abs_tol=_TOL):
            violations.append(
                f"warehouse {w_id}: W_YTD delta {w_delta:.2f} != "
                f"sum of D_YTD deltas {d_delta:.2f}"
            )
        if not math.isclose(w_delta, h_total, abs_tol=_TOL):
            violations.append(
                f"warehouse {w_id}: W_YTD delta {w_delta:.2f} != "
                f"sum of H_AMOUNT {h_total:.2f}"
            )

    # -- order-id allocation ----------------------------------------------
    next_o_ids = {
        (row[0], row[1]): row[2]
        for row in conn.execute(
            "SELECT D_W_ID, D_ID, D_NEXT_O_ID FROM DISTRICT"
        ).rows
    }
    order_rows = conn.execute("SELECT O_W_ID, O_D_ID, O_ID FROM ORDERS").rows
    order_counts = Counter((w, d) for w, d, __ in order_rows)
    order_ids: dict[tuple[int, int], set[int]] = defaultdict(set)
    for w, d, o_id in order_rows:
        order_ids[(w, d)].add(o_id)
    for (w_id, d_id), next_o_id in sorted(next_o_ids.items()):
        count = order_counts.get((w_id, d_id), 0)
        if next_o_id - 1 != count:
            violations.append(
                f"district ({w_id}, {d_id}): D_NEXT_O_ID {next_o_id} "
                f"inconsistent with {count} orders"
            )
        if len(order_ids[(w_id, d_id)]) != count:
            violations.append(
                f"district ({w_id}, {d_id}): duplicate order ids "
                f"({count} rows, {len(order_ids[(w_id, d_id)])} distinct)"
            )

    # -- stock flow --------------------------------------------------------
    stock_totals: dict[int, int] = defaultdict(int)
    for w_id, s_ytd in conn.execute("SELECT S_W_ID, S_YTD FROM STOCK").rows:
        stock_totals[w_id] += int(s_ytd)
    line_totals: dict[int, int] = defaultdict(int)
    loader_max_o_id = config.customers_per_district
    for w_id, o_id, quantity in conn.execute(
        "SELECT OL_W_ID, OL_O_ID, OL_QUANTITY FROM ORDER_LINE"
    ).rows:
        if o_id > loader_max_o_id:
            line_totals[w_id] += int(quantity)
    for w_id in sorted(warehouses):
        if stock_totals.get(w_id, 0) != line_totals.get(w_id, 0):
            violations.append(
                f"warehouse {w_id}: sum(S_YTD) {stock_totals.get(w_id, 0)} != "
                f"new order-line quantity {line_totals.get(w_id, 0)}"
            )

    # -- referential: NEW_ORDER → ORDERS ----------------------------------
    for w_id, d_id, o_id in conn.execute(
        "SELECT NO_W_ID, NO_D_ID, NO_O_ID FROM NEW_ORDER"
    ).rows:
        if o_id not in order_ids.get((w_id, d_id), set()):
            violations.append(
                f"NEW_ORDER ({w_id}, {d_id}, {o_id}) references a missing order"
            )

    # -- physical: every index agrees with its heap ------------------------
    violations.extend(system.server.engine.verify_index_consistency())

    return violations


def assert_invariants(system) -> None:
    """Raise ``AssertionError`` listing every violated invariant."""
    violations = check_invariants(system)
    if violations:
        raise AssertionError(
            "TPC-C invariants violated:\n  " + "\n  ".join(violations)
        )


__all__ = ["check_invariants", "assert_invariants"]
