"""The Benchcraft-like TPC-C driver: system setup and measurement.

``build_system`` assembles the full stack for one configuration (enclave,
HGS, server, AE driver, schema, data). ``measure_service_times`` runs each
transaction type in a closed single-stream loop and reports per-type
service times — the calibration inputs of the Section 5 performance model
(see :mod:`repro.harness.perfmodel`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.attestation.hgs import AttestationPolicy, HostGuardianService
from repro.attestation.tpm import HostMachine
from repro.client.driver import Connection, connect
from repro.crypto.rsa import RsaKeyPair
from repro.enclave import CallMode, Enclave, EnclaveBinary
from repro.keys import KeyProviderRegistry, default_registry
from repro.sqlengine.server import SqlServer
from repro.tools.provisioning import provision_cek, provision_cmk
from repro.workloads.tpcc.config import (
    TRANSACTION_MIX,
    EncryptionMode,
    TpccConfig,
)
from repro.workloads.tpcc.generator import TpccLoader
from repro.workloads.tpcc.schema import create_index_statements, create_table_statements
from repro.workloads.tpcc.transactions import TpccTransactions

CEK_NAME = "TpccCEK"
CMK_NAME = "TpccCMK"
CMK_PATH = "https://vault.azure.net/keys/tpcc-cmk"


@dataclass
class TpccSystem:
    """A fully assembled TPC-C system under one configuration."""

    config: TpccConfig
    server: SqlServer
    connection: Connection
    registry: KeyProviderRegistry
    enclave: Enclave | None = None
    transactions: TpccTransactions = field(init=False)

    def __post_init__(self) -> None:
        self.transactions = TpccTransactions(
            connection=self.connection, config=self.config,
            rng=random.Random(self.config.seed + 1),
        )

    def new_client(
        self, seed: int, simulated_rtt_s: float = 0.0
    ) -> TpccTransactions:
        """An additional independent client stream (own connection).

        ``simulated_rtt_s`` is slept once per driver↔server round-trip,
        restoring the RTT-dominated regime of the paper's measurements
        (see :mod:`repro.harness.measured`).
        """
        connection = connect(
            self.server,
            self.registry,
            column_encryption=self.config.ae_connection,
            attestation_policy=self.connection.attestation_policy,
            cache_describe_results=self.connection.options.cache_describe_results,
            simulated_rtt_s=simulated_rtt_s,
        )
        return TpccTransactions(
            connection=connection, config=self.config, rng=random.Random(seed)
        )


def build_system(
    config: TpccConfig,
    enclave_call_mode: CallMode = CallMode.QUEUED,
    cache_describe_results: bool = False,
    worker_threads: int = 4,
    lock_timeout_s: float = 5.0,
    freshness_anchor: bool = False,
) -> TpccSystem:
    """Assemble server, enclave, attestation, driver, schema, and data.

    ``cache_describe_results`` defaults to False for benchmark fidelity:
    the paper's driver pays the sp_describe_parameter_encryption round-trip
    per execution (client-side caching is the improvement Section 5.4.1
    suggests but does not ship).

    ``freshness_anchor=True`` arms rollback detection: RND systems anchor
    in the enclave, enclave-less ones in the simulated TPM NV slot. Off
    by default so paper-mode calibration (Figures 8/9) is untouched.
    """
    enclave = None
    host = None
    hgs = None
    policy = None
    needs_enclave = config.mode is EncryptionMode.RND
    if needs_enclave:
        author = RsaKeyPair.generate(1024)
        binary = EnclaveBinary.build(author)
        enclave = Enclave(binary)
        host = HostMachine()
        hgs = HostGuardianService()
        hgs.register_host(host.boot_and_measure())
        policy = AttestationPolicy(trusted_author_ids=frozenset({binary.author_id}))

    freshness = None
    if freshness_anchor:
        from repro.attestation.tpm import TpmNvAnchor
        from repro.sqlengine.storage.freshness import (
            EnclaveAnchorBackend,
            FreshnessAnchor,
        )

        backend = EnclaveAnchorBackend(enclave) if enclave is not None else TpmNvAnchor()
        freshness = FreshnessAnchor(backend)

    server = SqlServer(
        enclave=enclave,
        host_machine=host,
        hgs=hgs,
        enclave_threads=config.enclave_threads,
        enclave_call_mode=enclave_call_mode,
        lock_timeout_s=lock_timeout_s,
        eval_batch_size=config.eval_batch_size,
        worker_threads=worker_threads,
        freshness=freshness,
    )
    registry = default_registry()
    connection = connect(
        server,
        registry,
        column_encryption=config.ae_connection,
        attestation_policy=policy,
        cache_describe_results=cache_describe_results,
    )

    if config.uses_encryption:
        provider = registry.get("AZURE_KEY_VAULT_PROVIDER")
        cmk = provision_cmk(
            connection,
            provider,
            CMK_NAME,
            CMK_PATH,
            allow_enclave_computations=needs_enclave,
        )
        provision_cek(connection, provider, cmk, CEK_NAME)

    for ddl in create_table_statements(config, CEK_NAME):
        connection.execute_ddl(ddl)
    system = TpccSystem(
        config=config,
        server=server,
        connection=connection,
        registry=registry,
        enclave=enclave,
    )
    TpccLoader(connection=connection, config=config).load()
    for ddl in create_index_statements(config):
        connection.execute_ddl(ddl)
    return system


def measure_service_times(
    system: TpccSystem, per_type: int = 20
) -> dict[str, float]:
    """Single-stream mean service time (seconds) per transaction type.

    This is the calibration run: with one client and no queueing, the
    measured wall time per transaction equals its service demand on our
    engine, including all crypto and enclave work for the configuration.
    """
    times: dict[str, float] = {}
    txns = system.transactions
    for kind in ("new_order", "payment", "order_status", "delivery", "stock_level"):
        # Warm up plan/describe caches so steady-state costs are measured.
        txns.run_one(kind)
        start = time.perf_counter()
        for __ in range(per_type):
            txns.run_one(kind)
        times[kind] = (time.perf_counter() - start) / per_type
    return times


def mixed_service_time(service_times: dict[str, float]) -> float:
    """Mix-weighted mean service time per transaction."""
    return sum(weight * service_times[kind] for kind, weight in TRANSACTION_MIX)


def run_throughput(system: TpccSystem, n_transactions: int = 100) -> float:
    """Measured single-stream throughput (txn/s) over the standard mix."""
    txns = system.transactions
    start = time.perf_counter()
    txns.run_mix(n_transactions, TRANSACTION_MIX)
    elapsed = time.perf_counter() - start
    return n_transactions / elapsed if elapsed > 0 else float("inf")


def run_concurrent(
    system: TpccSystem,
    n_clients: int,
    transactions_per_client: int,
    mix=None,
) -> tuple[float, list[TpccTransactions]]:
    """Run the mix from ``n_clients`` concurrent connections (real threads).

    Kept as the simple correctness-oriented entry point; see
    :func:`run_multi_client` for the measured-throughput variant with a
    start barrier and simulated network RTT.
    """
    result = run_multi_client(system, n_clients, transactions_per_client, mix=mix)
    return result.elapsed_s, result.clients


@dataclass
class MultiClientResult:
    """Outcome of one measured multi-client run."""

    elapsed_s: float
    clients: list[TpccTransactions]

    @property
    def transactions(self) -> int:
        return sum(client.counts.total for client in self.clients)

    @property
    def throughput(self) -> float:
        if self.elapsed_s <= 0:
            return float("inf")
        return self.transactions / self.elapsed_s


def run_multi_client(
    system: TpccSystem,
    n_clients: int,
    transactions_per_client: int,
    mix=None,
    simulated_rtt_s: float = 0.0,
    seed: int = 1000,
) -> MultiClientResult:
    """Drive the mix from ``n_clients`` real client threads, measured.

    Every client opens its own driver connection (its own describe cache,
    CEK cache, and — under RND — attestation handshake), synchronizes on a
    barrier, and the wall clock covers only the barrier-to-join window.
    ``simulated_rtt_s`` puts each round-trip to sleep, which is what lets
    N Python threads overlap their waiting and produce real measured
    scaling despite the GIL. Client errors propagate to the caller.
    """
    import threading

    mix = mix or TRANSACTION_MIX
    clients = [
        system.new_client(seed=seed + i, simulated_rtt_s=simulated_rtt_s)
        for i in range(n_clients)
    ]
    errors: list[Exception] = []
    barrier = threading.Barrier(n_clients + 1)

    def work(client: TpccTransactions) -> None:
        barrier.wait()
        try:
            client.run_mix(transactions_per_client, mix)
        except Exception as exc:  # surfaced to the caller below
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(c,), name=f"tpcc-client-{i}")
        for i, c in enumerate(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return MultiClientResult(elapsed_s=elapsed, clients=clients)
