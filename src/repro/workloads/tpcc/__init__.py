"""TPC-C (Section 5): schema, generator, transactions, driver, configs."""

from repro.workloads.tpcc.config import (
    PII_COLUMNS,
    TRANSACTION_MIX,
    EncryptionMode,
    TpccConfig,
)
from repro.workloads.tpcc.driver import (
    TpccSystem,
    build_system,
    measure_service_times,
    mixed_service_time,
    run_concurrent,
    run_throughput,
)
from repro.workloads.tpcc.generator import TpccLoader, c_last_name, nurand
from repro.workloads.tpcc.transactions import TpccTransactions, TxnCounts

__all__ = [
    "EncryptionMode",
    "PII_COLUMNS",
    "TRANSACTION_MIX",
    "TpccConfig",
    "TpccLoader",
    "TpccSystem",
    "TpccTransactions",
    "TxnCounts",
    "build_system",
    "c_last_name",
    "measure_service_times",
    "mixed_service_time",
    "nurand",
    "run_concurrent",
    "run_throughput",
]
