"""Client-side stub: the driver's server surface over a socket.

:class:`RemoteServer` duck-types exactly what
:class:`repro.client.driver.Connection` expects of a server — ``connect``,
``describe_parameter_encryption``, ``attest``, ``fetch_cek_metadata``,
``forward_enclave_package``, ``hgs.signing_public_key``, and
``catalog.ceks()/cek()/table()`` — so the AE driver runs unchanged against
a remote process. Control-plane requests share one locked channel; each
:class:`RemoteSession` opens its own socket so statements on different
sessions never serialize behind each other.

Typed errors cross back intact: an :class:`ErrorReply` is reconstructed
into the concrete :class:`~repro.errors.ReproError` subclass
(:func:`repro.net.messages.reconstruct_error`), so quarantine refusals,
lock timeouts, and constraint violations behave exactly as in-process.
Socket-level failures (``ConnectionResetError``, ``TimeoutError``)
surface as-is — the driver's retry classifier treats them as transient
for idempotent control-plane operations.
"""

from __future__ import annotations

import threading

from repro.attestation.protocol import AttestationInfo
from repro.crypto.rsa import RsaPublicKey
from repro.enclave import SealedPackage
from repro.keys.cek import ColumnEncryptionKey
from repro.net import messages as msg
from repro.net.transport import FrameChannel, connect_channel
from repro.sqlengine.catalog import TableSchema
from repro.sqlengine.exec.executor import QueryResult
from repro.sqlengine.server import CekMetadata, DescribeResult

__all__ = ["RemoteCatalog", "RemoteHgs", "RemoteServer", "RemoteSession"]


class RemoteHgs:
    """The slice of HostGuardianService the driver reads: the signing key."""

    def __init__(self, signing_public_key: RsaPublicKey):
        self.signing_public_key = signing_public_key


class RemoteCatalog:
    """Catalog reads proxied over the control channel."""

    def __init__(self, server: "RemoteServer"):
        self._server = server

    def ceks(self) -> list[ColumnEncryptionKey]:
        reply = self._server._request(msg.CekList())
        return reply.ceks

    def cek(self, name: str) -> ColumnEncryptionKey:
        return self._server.fetch_cek_metadata(name).cek

    def table(self, name: str) -> TableSchema:
        reply = self._server._request(msg.TableInfo(table_name=name))
        return reply.schema


class RemoteServer:
    """A server reached over the wire; the driver's ``server`` argument.

    ``affinity`` is the client's home-warehouse hint, carried in every
    Hello so a router pins this client's control plane — and with it the
    enclave session its attestation creates — to the owning shard.
    """

    def __init__(
        self,
        host: str,
        port: int,
        affinity: int | None = None,
        timeout_s: float | None = 30.0,
    ):
        self.host = host
        self.port = port
        self.affinity = affinity
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._control = self._open_channel()
        self.hello: msg.HelloReply = self._handshake(self._control)
        self.hgs: RemoteHgs | None = (
            None if self.hello.hgs_public is None else RemoteHgs(self.hello.hgs_public)
        )
        self.catalog = RemoteCatalog(self)

    # ------------------------------------------------------------- plumbing

    def _open_channel(self) -> FrameChannel:
        return connect_channel(self.host, self.port, timeout_s=self.timeout_s)

    def _handshake(self, channel: FrameChannel) -> msg.HelloReply:
        reply = channel.request(msg.Hello(affinity=self.affinity))
        if isinstance(reply, msg.ErrorReply):
            raise msg.reconstruct_error(reply)
        if not isinstance(reply, msg.HelloReply):
            raise ConnectionResetError(f"unexpected handshake reply {type(reply).__name__}")
        return reply

    def _request(self, message: object) -> object:
        """One control-plane round trip; reconstructs typed errors.

        On a socket-level failure the channel is dead, but every message
        routed through here is an idempotent control-plane operation — so
        we heal (reopen + re-handshake) before re-raising, and the
        driver's backoff classifier, which treats ``ConnectionError`` and
        ``TimeoutError`` as transient, retries onto the fresh channel.
        """
        with self._lock:
            try:
                reply = self._control.request(message)
            except (ConnectionError, TimeoutError, OSError) as exc:
                try:
                    self._control.close()
                    self._control = self._open_channel()
                    self._handshake(self._control)
                except Exception:
                    pass  # server gone: the retry will fail loudly instead
                raise exc
        if isinstance(reply, msg.ErrorReply):
            raise msg.reconstruct_error(reply)
        return reply

    def close(self) -> None:
        self._control.close()

    # ------------------------------------------------- driver server surface

    def connect(self) -> "RemoteSession":
        channel = self._open_channel()
        self._handshake(channel)
        reply = channel.request(msg.SessionOpen(affinity=self.affinity))
        if isinstance(reply, msg.ErrorReply):
            channel.close()
            raise msg.reconstruct_error(reply)
        return RemoteSession(self, channel, reply.session_id)

    def describe_parameter_encryption(
        self, query_text: str, client_dh_public: int | None = None
    ) -> DescribeResult:
        reply = self._request(
            msg.Describe(query_text=query_text, client_dh_public=client_dh_public)
        )
        return reply.result

    def attest(self, client_dh_public: int) -> AttestationInfo:
        return self._request(msg.Attest(client_dh_public=client_dh_public)).info

    def fetch_cek_metadata(self, cek_name: str) -> CekMetadata:
        return self._request(msg.CekFetch(cek_name=cek_name)).metadata

    def forward_enclave_package(self, enclave_session_id: int, sealed: SealedPackage) -> None:
        self._request(
            msg.ForwardPackage(enclave_session_id=enclave_session_id, sealed=sealed)
        )

    # ------------------------------------------------------ admin (harness)

    def ping(self) -> bool:
        return isinstance(self._request(msg.Ping()), msg.Ok)

    def audit(self) -> list[str]:
        return self._request(msg.AdminAudit()).violations

    def crash(self) -> None:
        self._request(msg.AdminCrash())

    def recover(self):
        return self._request(msg.AdminRecover()).report

    def commit_prepared(self, gtid: str) -> None:
        self._request(msg.TxnCommitPrepared(gtid=gtid))

    def abort_prepared(self, gtid: str) -> None:
        self._request(msg.TxnAbortPrepared(gtid=gtid))

    def indoubt_gtids(self) -> list[str]:
        return self._request(msg.TxnIndoubt()).gtids

    # ------------------------------------------------ online key lifecycle

    def rotate_start(
        self,
        table: str,
        column: str,
        new_cek: str,
        query_text: str,
        batch_size: int = 64,
        kind: str = "rotate",
        scheme=None,
    ) -> str:
        """Start an online lifecycle job on the server; returns its id."""
        reply = self._request(
            msg.AdminRotateStart(
                table=table,
                column=column,
                new_cek=new_cek,
                query_text=query_text,
                batch_size=batch_size,
                kind=kind,
                scheme=scheme,
            )
        )
        return reply.rotation_id

    def rotate_resume(
        self, rotation_id: str, query_text: str, batch_size: int = 64
    ) -> str:
        """Re-adopt a recovery-reinstated rotation (post-crash)."""
        reply = self._request(
            msg.AdminRotateStart(
                query_text=query_text,
                batch_size=batch_size,
                resume_id=rotation_id,
            )
        )
        return reply.rotation_id

    def rotate_step(self, rotation_id: str, max_batches: int = 1) -> tuple[bool, int]:
        reply = self._request(
            msg.AdminRotateStep(rotation_id=rotation_id, max_batches=max_batches)
        )
        return reply.more, reply.rows_rotated

    def rotate_run(self, rotation_id: str) -> int:
        """Drive a rotation to completion over the wire, batch by batch."""
        total = 0
        more = True
        while more:
            more, rows = self.rotate_step(rotation_id)
            total += rows
        return total

    def rotation_states(self) -> list:
        return self._request(msg.AdminRotateStatus()).statuses

    def cek_versions(self) -> dict[str, int]:
        return self._request(msg.AdminCekVersions()).versions

    def shutdown(self) -> None:
        try:
            self._request(msg.AdminShutdown())
        except (ConnectionError, OSError):
            pass  # server dropped the connection while stopping: expected
        self.close()


class RemoteSession:
    """One server session over its own socket (the driver's ``session``)."""

    def __init__(self, server: RemoteServer, channel: FrameChannel, session_id: int):
        self._server = server
        self._channel = channel
        self.session_id = session_id
        self._in_transaction = False
        self._closed = False

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    def execute(self, query_text: str, params: dict | None = None) -> QueryResult:
        reply = self._channel.request(
            msg.Execute(
                session_id=self.session_id,
                query_text=query_text,
                params=params or {},
            )
        )
        if isinstance(reply, msg.ErrorReply):
            if reply.in_transaction is not None:
                self._in_transaction = reply.in_transaction
            raise msg.reconstruct_error(reply)
        self._in_transaction = reply.in_transaction
        return reply.result

    def execute_raw(self, query_text: str, params: dict) -> tuple[int, bytes, bytes]:
        """One execute round trip returning the raw reply frame.

        The router's forwarding fast path: the reply payload — dominated
        by result rows on reads — is *not* decoded here; the caller
        forwards ``frame_bytes`` verbatim to its own peer and decodes only
        non-``execute_reply`` opcodes (errors). ``_in_transaction`` is
        deliberately untouched: a successful DML statement never changes
        the branch's transaction state, and the caller restores it from
        the decoded reply on the error path.
        """
        self._channel.send_message(
            msg.Execute(
                session_id=self.session_id,
                query_text=query_text,
                params=params,
            )
        )
        raw = self._channel.recv_frame()
        if raw is None:
            raise ConnectionResetError("connection closed while awaiting reply")
        return raw

    def prepare_transaction(self, gtid: str) -> None:
        reply = self._channel.request(
            msg.TxnPrepare(session_id=self.session_id, gtid=gtid)
        )
        if isinstance(reply, msg.ErrorReply):
            raise msg.reconstruct_error(reply)
        self._in_transaction = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._channel.request(msg.SessionClose(session_id=self.session_id))
        except (ConnectionError, OSError):
            pass  # server already gone; its connection teardown closed us
        self._channel.close()
        self._in_transaction = False
