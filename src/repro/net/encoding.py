"""Tagged recursive binary codec for wire payloads.

Every value is one tag byte followed by a type-specific body; containers
recurse. The codec is deliberately closed: only registered enum and
dataclass ("struct") types serialize, so a payload can never smuggle an
arbitrary pickled object across the trust seam — decoding untrusted bytes
constructs only primitives, containers, and the registered message /
metadata shapes.

Integers are length-prefixed signed big-endian so RSA-sized public-key
moduli ride the same tag as row counts. Structs encode as
``(type_name, {field: value})`` and decode via ``cls(**fields)``; the
field list is fixed at registration time, which is what keeps volatile
server-side attachments (e.g. ``QueryResult.stats``) off the wire.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any, Callable

from repro.errors import CorruptFrameError

__all__ = [
    "decode_value",
    "encode_value",
    "register_enum",
    "register_struct",
    "registered_struct_names",
]

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_FROZENSET = 0x0A
_T_ENUM = 0x0B
_T_STRUCT = 0x0C

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Containers deeper than this are rejected rather than recursed into.
_MAX_DEPTH = 32

_ENUMS: dict[str, type[enum.Enum]] = {}
_STRUCTS: dict[str, tuple[type, tuple[str, ...]]] = {}
_STRUCT_NAMES: dict[type, str] = {}


def register_enum(cls: type[enum.Enum]) -> type[enum.Enum]:
    """Allow ``cls`` members on the wire, addressed by class and member name."""
    _ENUMS[cls.__name__] = cls
    return cls


def register_struct(cls: type, fields: tuple[str, ...] | None = None) -> type:
    """Allow dataclass ``cls`` on the wire.

    ``fields`` defaults to every dataclass field; pass an explicit subset
    to keep server-only attachments out of the encoding. Decoding calls
    ``cls(**fields)``, so every omitted field must have a default.
    """
    if fields is None:
        fields = tuple(f.name for f in dataclasses.fields(cls))
    _STRUCTS[cls.__name__] = (cls, fields)
    _STRUCT_NAMES[cls] = cls.__name__
    return cls


def registered_struct_names() -> tuple[str, ...]:
    return tuple(_STRUCTS)


def _u32(n: int) -> bytes:
    return _U32.pack(n)


def _encode_into(out: list[bytes], value: Any, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise ValueError("value nesting exceeds wire codec depth limit")
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif type(value) is int:
        body = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out.append(bytes([_T_INT]) + _u32(len(body)) + body)
    elif type(value) is float:
        out.append(bytes([_T_FLOAT]) + _F64.pack(value))
    elif type(value) is str:
        body = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _u32(len(body)) + body)
    elif type(value) in (bytes, bytearray):
        out.append(bytes([_T_BYTES]) + _u32(len(value)) + bytes(value))
    elif type(value) is list:
        out.append(bytes([_T_LIST]) + _u32(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif type(value) is tuple:
        out.append(bytes([_T_TUPLE]) + _u32(len(value)))
        for item in value:
            _encode_into(out, item, depth + 1)
    elif type(value) is dict:
        out.append(bytes([_T_DICT]) + _u32(len(value)))
        for key, item in value.items():
            _encode_into(out, key, depth + 1)
            _encode_into(out, item, depth + 1)
    elif type(value) is frozenset:
        # Deterministic order so identical sets encode identically.
        items = sorted(value, key=repr)
        out.append(bytes([_T_FROZENSET]) + _u32(len(items)))
        for item in items:
            _encode_into(out, item, depth + 1)
    elif isinstance(value, enum.Enum) and type(value).__name__ in _ENUMS:
        _append_name_pair(out, _T_ENUM, type(value).__name__, value.name)
    elif type(value) in _STRUCT_NAMES:
        name = _STRUCT_NAMES[type(value)]
        _, fields = _STRUCTS[name]
        body = {field: getattr(value, field) for field in fields}
        name_bytes = name.encode("utf-8")
        out.append(bytes([_T_STRUCT]) + _u32(len(name_bytes)) + name_bytes)
        _encode_into(out, body, depth + 1)
    else:
        raise TypeError(f"type {type(value).__name__!r} is not wire-encodable")


def _append_name_pair(out: list[bytes], tag: int, first: str, second: str) -> None:
    a = first.encode("utf-8")
    b = second.encode("utf-8")
    out.append(bytes([tag]) + _u32(len(a)) + a + _u32(len(b)) + b)


def encode_value(value: Any) -> bytes:
    """Serialize ``value`` to tagged bytes; raises ``TypeError`` on
    unregistered types and ``ValueError`` on excessive nesting."""
    out: list[bytes] = []
    _encode_into(out, value, 0)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CorruptFrameError("payload value truncated")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def take_u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def take_str(self) -> str:
        return self.take(self.take_u32()).decode("utf-8")


def _decode_one(reader: _Reader, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise CorruptFrameError("payload nesting exceeds wire codec depth limit")
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return int.from_bytes(reader.take(reader.take_u32()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return reader.take_str()
    if tag == _T_BYTES:
        return bytes(reader.take(reader.take_u32()))
    if tag == _T_LIST:
        return [_decode_one(reader, depth + 1) for _ in range(reader.take_u32())]
    if tag == _T_TUPLE:
        return tuple(_decode_one(reader, depth + 1) for _ in range(reader.take_u32()))
    if tag == _T_DICT:
        n = reader.take_u32()
        result = {}
        for _ in range(n):
            key = _decode_one(reader, depth + 1)
            result[key] = _decode_one(reader, depth + 1)
        return result
    if tag == _T_FROZENSET:
        return frozenset(_decode_one(reader, depth + 1) for _ in range(reader.take_u32()))
    if tag == _T_ENUM:
        cls_name = reader.take_str()
        member = reader.take_str()
        cls = _ENUMS.get(cls_name)
        if cls is None:
            raise CorruptFrameError(f"unregistered enum type on wire: {cls_name!r}")
        try:
            return cls[member]
        except KeyError:
            raise CorruptFrameError(f"unknown member {member!r} of enum {cls_name!r}") from None
    if tag == _T_STRUCT:
        cls_name = reader.take_str()
        entry = _STRUCTS.get(cls_name)
        if entry is None:
            raise CorruptFrameError(f"unregistered struct type on wire: {cls_name!r}")
        cls, fields = entry
        body = _decode_one(reader, depth + 1)
        if not isinstance(body, dict) or not set(body) <= set(fields):
            raise CorruptFrameError(f"malformed struct body for {cls_name!r}")
        try:
            return cls(**body)
        except TypeError as exc:
            raise CorruptFrameError(f"struct {cls_name!r} rejected wire fields: {exc}") from None
    raise CorruptFrameError(f"unknown value tag 0x{tag:02X}")


def decode_value(data: bytes) -> Any:
    """Deserialize one tagged value occupying all of ``data``."""
    reader = _Reader(data)
    value = _decode_one(reader, 0)
    if reader.pos != len(data):
        raise CorruptFrameError(f"{len(data) - reader.pos} trailing bytes after payload value")
    return value
