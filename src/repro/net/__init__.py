"""The byte-level wire protocol (host side).

This package promotes the in-process client/server seam into a real
serialized protocol: length-prefixed, versioned, CRC-protected frames
(:mod:`repro.net.frames`) carrying typed request/reply messages
(:mod:`repro.net.messages`) whose payloads are produced by a tagged
recursive binary codec (:mod:`repro.net.encoding`). On top of the codec
sit a socket server exposing one :class:`~repro.sqlengine.server.SqlServer`
(:mod:`repro.net.wireserver`), a client-side stub implementing the exact
surface the AE driver expects (:mod:`repro.net.remote`), and a stateless
router that hash-partitions statements across N shard servers and
coordinates cross-shard two-phase commit (:mod:`repro.net.router`).

Everything here is *untrusted host* code: the strong adversary reads every
frame byte (see :meth:`repro.security.adversary.StrongAdversary`), so the
payloads it carries for encrypted columns are ciphertext envelopes —
serialization must not (and does not) change the leakage accounting.
This package must never import enclave internals; the static analyzer
enforces that (``repro.net`` is a host package) and additionally lints
that every opcode literal appears in :data:`repro.net.opcodes.OPCODES`.
"""

from repro.net.encoding import decode_value, encode_value, register_enum, register_struct
from repro.net.frames import (
    PROTOCOL_VERSION,
    CorruptFrameError,
    TruncatedFrameError,
    UnknownOpcodeError,
    VersionMismatchError,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.net.opcodes import OPCODES, opcode_byte, opcode_name

__all__ = [
    "OPCODES",
    "PROTOCOL_VERSION",
    "CorruptFrameError",
    "TruncatedFrameError",
    "UnknownOpcodeError",
    "VersionMismatchError",
    "WireError",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
    "opcode_byte",
    "opcode_name",
    "register_enum",
    "register_struct",
]
