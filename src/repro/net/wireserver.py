"""The socket server exposing one :class:`SqlServer` over the wire.

One accept-loop thread plus one handler thread per connection. Each
connection owns its sessions: a dropped socket aborts and closes every
session it opened (the usual connection-loss contract), so a client crash
never leaks session slots or row locks.

Every server-side exception is marshalled as an :class:`ErrorReply` with
the concrete type name — ``StaleRestoreError`` quarantine refusals,
``LockTimeoutError``, injected faults — so typed client handling works
identically to the in-process seam. Only wire-level failures (a peer
speaking garbage) terminate the connection.

The ``audit_hook`` is the shard harness's seam: an ``AdminAudit`` frame
runs it (e.g. TPC-C invariants + index-consistency checks over a local
plain connection) and returns the violation strings.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable

from repro.errors import FaultInjected, WireError
from repro.net import messages as msg
from repro.net.transport import FrameChannel, FrameTap
from repro.sqlengine.server import ServerSession, SqlServer

__all__ = ["WireServer"]


class WireServer:
    """Serve one :class:`SqlServer` on a TCP port."""

    def __init__(
        self,
        server: SqlServer,
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "shard",
        shard_count: int = 1,
        audit_hook: Callable[[], list[str]] | None = None,
        tap: FrameTap | None = None,
    ):
        self.server = server
        self.name = name
        self.shard_count = shard_count
        self.audit_hook = audit_hook
        #: observes every serialized frame on every connection (adversary).
        self.tap = tap
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._channels_lock = threading.Lock()
        self._channels: set[FrameChannel] = set()

    # --------------------------------------------------------------- lifecycle

    def start(self) -> "WireServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"wire-accept-{self.name}", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and drop every live connection."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._channels_lock:
            channels = list(self._channels)
        for channel in channels:
            channel.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "WireServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------ accept loop

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = FrameChannel(sock, tap=self.tap)
            with self._channels_lock:
                self._channels.add(channel)
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name=f"wire-conn-{self.name}",
                daemon=True,
            ).start()

    # ------------------------------------------------------------- connection

    def _serve_connection(self, channel: FrameChannel) -> None:
        sessions: dict[int, ServerSession] = {}
        try:
            hello = channel.recv_message()
            if not isinstance(hello, msg.Hello):
                return
            hgs = self.server.hgs
            channel.send_message(
                msg.HelloReply(
                    protocol_version=1,
                    server_name=self.name,
                    shard_count=self.shard_count,
                    hgs_public=None if hgs is None else hgs.signing_public_key,
                )
            )
            while True:
                request = channel.recv_message()
                if request is None or isinstance(request, msg.AdminShutdown):
                    if request is not None:
                        channel.send_message(msg.Ok())
                    if isinstance(request, msg.AdminShutdown):
                        threading.Thread(target=self.stop, daemon=True).start()
                    return
                try:
                    reply = self._dispatch(request, sessions)
                except WireError:
                    raise  # protocol violation: drop the connection
                except Exception as exc:  # marshalled to the client, typed
                    in_txn = None
                    if isinstance(request, msg.Execute):
                        session = sessions.get(request.session_id)
                        if session is not None:
                            in_txn = session.in_transaction
                    reply = msg.error_reply_for(exc, in_transaction=in_txn)
                channel.send_message(reply)
        except (ConnectionError, WireError, OSError, FaultInjected):
            pass  # peer vanished, spoke garbage, or an armed net.* fault
            # fired on our side of the socket: tear the connection down
        finally:
            for session in sessions.values():
                try:
                    session.close()
                except Exception:
                    pass  # a crashed engine may refuse the closing abort
            with self._channels_lock:
                self._channels.discard(channel)
            channel.close()

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, request: object, sessions: dict[int, ServerSession]) -> object:
        server = self.server
        if isinstance(request, msg.Ping):
            return msg.Ok()
        if isinstance(request, msg.Describe):
            return msg.DescribeReply(
                result=server.describe_parameter_encryption(
                    request.query_text, request.client_dh_public
                )
            )
        if isinstance(request, msg.Attest):
            return msg.AttestReply(info=server.attest(request.client_dh_public))
        if isinstance(request, msg.CekFetch):
            return msg.CekFetchReply(metadata=server.fetch_cek_metadata(request.cek_name))
        if isinstance(request, msg.CekList):
            return msg.CekListReply(ceks=server.catalog.ceks())
        if isinstance(request, msg.TableInfo):
            return msg.TableInfoReply(schema=server.catalog.table(request.table_name))
        if isinstance(request, msg.ForwardPackage):
            server.forward_enclave_package(request.enclave_session_id, request.sealed)
            return msg.Ok()
        if isinstance(request, msg.SessionOpen):
            session = server.connect()
            sessions[session.session_id] = session
            return msg.SessionOpenReply(session_id=session.session_id)
        if isinstance(request, msg.SessionClose):
            session = sessions.pop(request.session_id, None)
            if session is not None:
                session.close()
            return msg.Ok()
        if isinstance(request, msg.Execute):
            session = self._session(sessions, request.session_id)
            result = session.execute(request.query_text, request.params)
            return msg.ExecuteReply(result=result, in_transaction=session.in_transaction)
        if isinstance(request, msg.TxnPrepare):
            self._session(sessions, request.session_id).prepare_transaction(request.gtid)
            return msg.Ok()
        if isinstance(request, msg.TxnCommitPrepared):
            server.commit_prepared(request.gtid)
            return msg.Ok()
        if isinstance(request, msg.TxnAbortPrepared):
            server.abort_prepared(request.gtid)
            return msg.Ok()
        if isinstance(request, msg.TxnIndoubt):
            return msg.TxnIndoubtReply(gtids=server.indoubt_gtids())
        if isinstance(request, msg.AdminAudit):
            violations = [] if self.audit_hook is None else list(self.audit_hook())
            return msg.AdminAuditReply(violations=violations)
        if isinstance(request, msg.AdminCrash):
            # All volatile state dies with the "process": every session this
            # server handed out is gone, on this connection and others.
            server.crash()
            sessions.clear()
            return msg.Ok()
        if isinstance(request, msg.AdminRecover):
            return msg.AdminRecoverReply(report=server.recover())
        if isinstance(request, msg.AdminRotateStart):
            if request.resume_id:
                rotation_id = server.rotate_resume(
                    request.resume_id, request.query_text, request.batch_size
                )
            else:
                rotation_id = server.rotate_start(
                    request.table,
                    request.column,
                    request.new_cek,
                    request.query_text,
                    batch_size=request.batch_size,
                    kind=request.kind,
                    scheme=request.scheme,
                )
            return msg.AdminRotateStepReply(
                rotation_id=rotation_id, more=True, rows_rotated=0
            )
        if isinstance(request, msg.AdminRotateStep):
            more, rows = server.rotate_step(request.rotation_id, request.max_batches)
            return msg.AdminRotateStepReply(
                rotation_id=request.rotation_id, more=more, rows_rotated=rows
            )
        if isinstance(request, msg.AdminRotateStatus):
            return msg.AdminRotateStatusReply(statuses=server.rotation_states())
        if isinstance(request, msg.AdminCekVersions):
            return msg.AdminCekVersionsReply(versions=server.cek_versions())
        raise WireError(f"unhandled message type {type(request).__name__!r}")

    @staticmethod
    def _session(sessions: dict[int, ServerSession], session_id: int) -> ServerSession:
        try:
            return sessions[session_id]
        except KeyError:
            raise WireError(f"unknown session id {session_id}") from None
