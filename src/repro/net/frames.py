"""Length-prefixed, versioned, CRC-protected wire frames.

Frame layout (all integers big-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       2     magic ``b"AE"``
    2       1     protocol version (:data:`PROTOCOL_VERSION`)
    3       1     opcode byte (:data:`repro.net.opcodes.OPCODES`)
    4       4     payload length ``n`` (u32)
    8       4     CRC32 of the payload bytes
    12      n     payload (tagged binary value, :mod:`repro.net.encoding`)

The decoder is written for streaming use: :func:`try_decode` returns
``None`` when the buffer holds an incomplete frame (the caller reads more
bytes) and raises a typed :class:`~repro.errors.WireError` subclass when
the bytes it *does* have are already known to be invalid — a bad magic or
version or opcode is rejected before the payload arrives, so a corrupted
stream fails fast instead of waiting on a garbage length prefix.

Everything in a frame except the payload is visible plaintext to the wire
adversary by design; confidentiality lives entirely in the ciphertext
envelopes *inside* payloads, never in the framing.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import (
    CorruptFrameError,
    TruncatedFrameError,
    UnknownOpcodeError,
    VersionMismatchError,
    WireError,
)
from repro.net.opcodes import opcode_name

__all__ = [
    "FRAME_HEADER_LEN",
    "MAGIC",
    "MAX_PAYLOAD_LEN",
    "PROTOCOL_VERSION",
    "CorruptFrameError",
    "TruncatedFrameError",
    "UnknownOpcodeError",
    "VersionMismatchError",
    "WireError",
    "decode_frame",
    "encode_frame",
    "try_decode",
]

MAGIC = b"AE"
PROTOCOL_VERSION = 1

#: magic(2) + version(1) + opcode(1) + payload_len(4) + crc32(4)
FRAME_HEADER_LEN = 12
_HEADER = struct.Struct(">2sBBII")

#: Hard ceiling on a single payload (64 MiB). A length prefix beyond this
#: is treated as stream corruption rather than an allocation request.
MAX_PAYLOAD_LEN = 64 * 1024 * 1024


def encode_frame(opcode: int, payload: bytes, *, version: int = PROTOCOL_VERSION) -> bytes:
    """Serialize one frame for ``opcode`` carrying ``payload``."""
    if not 0 <= opcode <= 0xFF:
        raise ValueError(f"opcode byte out of range: {opcode}")
    if len(payload) > MAX_PAYLOAD_LEN:
        raise ValueError(f"payload too large: {len(payload)} bytes")
    header = _HEADER.pack(MAGIC, version, opcode, len(payload), zlib.crc32(payload))
    return header + payload


def try_decode(buffer: bytes) -> tuple[int, bytes, int] | None:
    """Decode the first frame in ``buffer`` if it is complete.

    Returns ``(opcode, payload, consumed)`` on success, ``None`` when more
    bytes are needed, and raises a :class:`WireError` subclass when the
    prefix already present is invalid.
    """
    if len(buffer) < FRAME_HEADER_LEN:
        # Validate what we can see so a garbage prefix fails immediately.
        if buffer[:2] not in (MAGIC, MAGIC[:1], b""):
            raise CorruptFrameError(f"bad frame magic {buffer[:2]!r}")
        return None
    magic, version, opcode, length, crc = _HEADER.unpack_from(buffer)
    if magic != MAGIC:
        raise CorruptFrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol version {version}, this endpoint speaks {PROTOCOL_VERSION}"
        )
    if opcode_name(opcode) is None:
        raise UnknownOpcodeError(f"unknown opcode byte 0x{opcode:02X}")
    if length > MAX_PAYLOAD_LEN:
        raise CorruptFrameError(f"declared payload length {length} exceeds maximum")
    total = FRAME_HEADER_LEN + length
    if len(buffer) < total:
        return None
    payload = bytes(buffer[FRAME_HEADER_LEN:total])
    if zlib.crc32(payload) != crc:
        raise CorruptFrameError("frame payload failed CRC check")
    return opcode, payload, total


def decode_frame(data: bytes) -> tuple[int, bytes]:
    """Strictly decode exactly one frame occupying all of ``data``.

    Raises :class:`TruncatedFrameError` when ``data`` ends early and
    :class:`CorruptFrameError` when trailing bytes follow the frame.
    """
    decoded = try_decode(data)
    if decoded is None:
        raise TruncatedFrameError(
            f"frame truncated: have {len(data)} bytes, need at least "
            f"{FRAME_HEADER_LEN if len(data) < FRAME_HEADER_LEN else FRAME_HEADER_LEN + _HEADER.unpack_from(data)[3]}"
        )
    opcode, payload, consumed = decoded
    if consumed != len(data):
        raise CorruptFrameError(f"{len(data) - consumed} trailing bytes after frame")
    return opcode, payload
