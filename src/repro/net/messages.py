"""Typed wire messages and the registry of shapes that may ride them.

Each message is a small dataclass whose ``OP`` class attribute names its
opcode in :data:`repro.net.opcodes.OPCODES`. A message serializes as a
frame whose payload is the tagged encoding of the message itself
(messages are registered structs), so the full round trip is::

    frame_bytes = encode_message(Hello(affinity=3))
    msg = decode_message(*decode_frame(frame_bytes))   # -> Hello(affinity=3)

This module also registers every *metadata* dataclass the protocol
carries — ciphertext envelopes, column types, CEK/CMK metadata, the
attestation bundle, query results — pinning exactly which shapes can
cross the wire. ``QueryResult`` is registered without its ``stats``
field: per-statement telemetry is a server-side attachment and never
serializes.

Error marshalling: any server-side :class:`~repro.errors.ReproError`
becomes an :class:`ErrorReply` carrying the concrete type name and
message; :func:`reconstruct_error` maps the name back to the class on the
client so typed handling (``except StaleRestoreError``, quarantine
refusals, transient classification) works identically over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import repro.errors as _errors
from repro.attestation.hgs import HealthCertificate
from repro.attestation.protocol import AttestationInfo
from repro.attestation.report import EnclaveReport, SignedReport
from repro.crypto.rsa import RsaPublicKey
from repro.enclave import SealedPackage
from repro.errors import RemoteError, ReproError, UnknownOpcodeError
from repro.keys.cek import CekEncryptedValue, ColumnEncryptionKey
from repro.keys.cmk import ColumnMasterKey
from repro.net.encoding import decode_value, encode_value, register_enum, register_struct
from repro.net.frames import decode_frame, encode_frame
from repro.net.opcodes import opcode_byte
from repro.sqlengine.catalog import ColumnSchema, IndexSchema, TableSchema
from repro.sqlengine.cells import Ciphertext
from repro.sqlengine.engine import RecoveryReport
from repro.sqlengine.exec.executor import QueryResult, ResultColumn
from repro.sqlengine.rotation import RotationStatus
from repro.sqlengine.server import CekMetadata, DescribeResult, ParameterDescription
from repro.sqlengine.storage.heap import RowId
from repro.sqlengine.types import ColumnType, EncryptionInfo, EncryptionScheme, SqlType

__all__ = [
    "MESSAGE_TYPES",
    "NONRECONSTRUCTIBLE_ERRORS",
    "AdminAudit",
    "AdminAuditReply",
    "AdminCekVersions",
    "AdminCekVersionsReply",
    "AdminCrash",
    "AdminRecover",
    "AdminRecoverReply",
    "AdminRotateStart",
    "AdminRotateStatus",
    "AdminRotateStatusReply",
    "AdminRotateStep",
    "AdminRotateStepReply",
    "AdminShutdown",
    "Attest",
    "AttestReply",
    "CekFetch",
    "CekFetchReply",
    "CekList",
    "CekListReply",
    "Describe",
    "DescribeReply",
    "ErrorReply",
    "Execute",
    "ExecuteReply",
    "ForwardPackage",
    "Hello",
    "HelloReply",
    "Ok",
    "Ping",
    "SessionClose",
    "SessionOpen",
    "SessionOpenReply",
    "TableInfo",
    "TableInfoReply",
    "TxnAbortPrepared",
    "TxnCommitPrepared",
    "TxnIndoubt",
    "TxnIndoubtReply",
    "TxnPrepare",
    "decode_message",
    "encode_message",
    "error_reply_for",
    "reconstruct_error",
]

# ------------------------------------------------------------------ metadata
# Shapes carried inside messages. Registration order only matters for
# readability; the codec addresses structs by class name.

register_enum(EncryptionScheme)
for _cls in (
    Ciphertext,
    RowId,
    SqlType,
    EncryptionInfo,
    ColumnType,
    ColumnSchema,
    IndexSchema,
    TableSchema,
    ResultColumn,
    CekEncryptedValue,
    ColumnEncryptionKey,
    ColumnMasterKey,
    ParameterDescription,
    CekMetadata,
    DescribeResult,
    RsaPublicKey,
    HealthCertificate,
    EnclaveReport,
    SignedReport,
    AttestationInfo,
    SealedPackage,
    RecoveryReport,
    RotationStatus,
):
    register_struct(_cls)

# stats is a volatile server-side attachment (QueryStats holds live
# references into the metrics registry) — it never crosses the wire.
register_struct(QueryResult, ("columns", "rows", "rowcount", "plan_info"))


# ------------------------------------------------------------------ messages

MESSAGE_TYPES: dict[str, type] = {}


def _message(cls: type) -> type:
    """Register a message dataclass under its ``OP`` opcode name."""
    op = cls.OP  # type: ignore[attr-defined]
    opcode_byte(op)  # raises KeyError if the opcode registry lacks it
    if op in MESSAGE_TYPES:
        raise AssertionError(f"duplicate message class for opcode {op!r}")
    MESSAGE_TYPES[op] = cls
    register_struct(cls)
    return cls


# -- handshake


@_message
@dataclass
class Hello:
    """First frame on every connection.

    ``affinity`` is the client's home-warehouse hint: the router pins the
    connection's control plane (describe/attest/CEK forwarding — and with
    it the enclave session) to the shard owning that warehouse.
    """

    OP = "hello"
    affinity: int | None = None


@_message
@dataclass
class HelloReply:
    OP = "hello_reply"
    protocol_version: int
    server_name: str
    shard_count: int
    #: HGS attestation-service signing key, or None for enclave-less servers.
    hgs_public: RsaPublicKey | None = None


@_message
@dataclass
class Ok:
    OP = "ok"


@_message
@dataclass
class ErrorReply:
    """Any server-side ReproError, marshalled by concrete type name."""

    OP = "error"
    error_type: str
    message: str
    #: Post-error transaction state of the session (None for sessionless
    #: control-plane errors) so the client mirror stays exact.
    in_transaction: bool | None = None


@_message
@dataclass
class Ping:
    OP = "ping"


# -- control plane


@_message
@dataclass
class Describe:
    OP = "describe"
    query_text: str
    client_dh_public: int | None = None


@_message
@dataclass
class DescribeReply:
    OP = "describe_reply"
    result: DescribeResult


@_message
@dataclass
class Attest:
    OP = "attest"
    client_dh_public: int


@_message
@dataclass
class AttestReply:
    OP = "attest_reply"
    info: AttestationInfo


@_message
@dataclass
class CekFetch:
    OP = "cek_fetch"
    cek_name: str


@_message
@dataclass
class CekFetchReply:
    OP = "cek_fetch_reply"
    metadata: CekMetadata


@_message
@dataclass
class CekList:
    OP = "cek_list"


@_message
@dataclass
class CekListReply:
    OP = "cek_list_reply"
    ceks: list[ColumnEncryptionKey] = field(default_factory=list)


@_message
@dataclass
class TableInfo:
    OP = "table_info"
    table_name: str


@_message
@dataclass
class TableInfoReply:
    OP = "table_info_reply"
    schema: TableSchema


@_message
@dataclass
class ForwardPackage:
    OP = "forward_package"
    enclave_session_id: int
    sealed: SealedPackage


# -- data plane


@_message
@dataclass
class SessionOpen:
    OP = "session_open"
    affinity: int | None = None


@_message
@dataclass
class SessionOpenReply:
    OP = "session_open_reply"
    session_id: int


@_message
@dataclass
class SessionClose:
    OP = "session_close"
    session_id: int


@_message
@dataclass
class Execute:
    OP = "execute"
    session_id: int
    query_text: str
    params: dict = field(default_factory=dict)


@_message
@dataclass
class ExecuteReply:
    OP = "execute_reply"
    result: QueryResult
    in_transaction: bool = False


# -- two-phase commit (router → shard)


@_message
@dataclass
class TxnPrepare:
    OP = "txn_prepare"
    session_id: int
    gtid: str


@_message
@dataclass
class TxnCommitPrepared:
    OP = "txn_commit_prepared"
    gtid: str


@_message
@dataclass
class TxnAbortPrepared:
    OP = "txn_abort_prepared"
    gtid: str


@_message
@dataclass
class TxnIndoubt:
    OP = "txn_indoubt"


@_message
@dataclass
class TxnIndoubtReply:
    OP = "txn_indoubt_reply"
    gtids: list[str] = field(default_factory=list)


# -- administration (harness / torture)


@_message
@dataclass
class AdminAudit:
    OP = "admin_audit"


@_message
@dataclass
class AdminAuditReply:
    OP = "admin_audit_reply"
    violations: list[str] = field(default_factory=list)


@_message
@dataclass
class AdminCrash:
    OP = "admin_crash"


@_message
@dataclass
class AdminRecover:
    OP = "admin_recover"


@_message
@dataclass
class AdminRecoverReply:
    OP = "admin_recover_reply"
    report: RecoveryReport


@_message
@dataclass
class AdminShutdown:
    OP = "admin_shutdown"


# -- online key lifecycle (rotation driven over the wire)


@_message
@dataclass
class AdminRotateStart:
    """Start (or, with ``resume_id``, re-adopt after a crash) a lifecycle
    job. ``query_text`` must already be authorized through the session's
    sealed CEK package — the server only relays it; the enclave enforces."""

    OP = "admin_rotate_start"
    table: str = ""
    column: str = ""
    new_cek: str = ""
    query_text: str = ""
    batch_size: int = 64
    kind: str = "rotate"
    scheme: EncryptionScheme | None = None
    resume_id: str = ""


@_message
@dataclass
class AdminRotateStep:
    OP = "admin_rotate_step"
    rotation_id: str = ""
    max_batches: int = 1


@_message
@dataclass
class AdminRotateStepReply:
    OP = "admin_rotate_step_reply"
    rotation_id: str = ""
    more: bool = True
    rows_rotated: int = 0


@_message
@dataclass
class AdminRotateStatus:
    OP = "admin_rotate_status"


@_message
@dataclass
class AdminRotateStatusReply:
    OP = "admin_rotate_status_reply"
    statuses: list[RotationStatus] = field(default_factory=list)


@_message
@dataclass
class AdminCekVersions:
    OP = "admin_cek_versions"


@_message
@dataclass
class AdminCekVersionsReply:
    OP = "admin_cek_versions_reply"
    versions: dict[str, int] = field(default_factory=dict)


# ------------------------------------------------------------------ codec


def encode_message(msg: Any) -> bytes:
    """Serialize a message to one complete frame."""
    op = type(msg).OP
    return encode_frame(opcode_byte(op), encode_value(msg))


def decode_message(opcode: int, payload: bytes) -> Any:
    """Decode a frame's payload back into its message dataclass."""
    msg = decode_value(payload)
    cls = type(msg)
    expected = MESSAGE_TYPES.get(getattr(cls, "OP", None))
    if cls is not expected or opcode_byte(cls.OP) != opcode:
        raise UnknownOpcodeError(
            f"frame opcode 0x{opcode:02X} does not match payload type {cls.__name__!r}"
        )
    return msg


# ------------------------------------------------------------------ errors

#: ReproError subclasses whose constructors cannot be rebuilt from a bare
#: message string by :func:`reconstruct_error` — these degrade to
#: :class:`~repro.errors.RemoteError` on the client, and that degradation
#: is acknowledged here. Append-only: the protocol-typestate analyzer
#: fails if a multi-argument error subclass is missing from this tuple
#: (silent degradation) or if an entry stops being multi-argument (rot).
NONRECONSTRUCTIBLE_ERRORS: tuple[str, ...] = ("RemoteError",)


def error_reply_for(exc: BaseException, in_transaction: bool | None = None) -> ErrorReply:
    """Marshal a server-side exception by concrete type name."""
    return ErrorReply(
        error_type=type(exc).__name__,
        message=str(exc),
        in_transaction=in_transaction,
    )


def reconstruct_error(reply: ErrorReply) -> ReproError:
    """Client side: rebuild the typed exception from an :class:`ErrorReply`.

    Classes that cannot be rebuilt faithfully from a bare message string
    define a ``from_wire`` classmethod (fault-injection types recover
    their site argument there). Anything else falls back to
    :class:`~repro.errors.RemoteError`: an unknown name, a non-ReproError
    type, or a constructor that rejects a single message.
    """
    cls = getattr(_errors, reply.error_type, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        rebuild = getattr(cls, "from_wire", None)
        if rebuild is not None:
            return rebuild(reply.message)
        try:
            return cls(reply.message)
        except TypeError:
            pass
    return RemoteError(reply.error_type, reply.message)
