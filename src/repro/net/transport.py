"""Socket transport: one framed message channel per connection.

:class:`FrameChannel` wraps a connected stream socket and speaks whole
messages (:mod:`repro.net.messages`): ``send_message`` writes one frame,
``recv_message`` buffers bytes until :func:`repro.net.frames.try_decode`
yields a complete frame. The channel is intentionally dumb — no retries,
no error reconstruction; those live in the driver-facing stub
(:mod:`repro.net.remote`) where idempotency is known.

Two fault sites instrument the byte boundary:

* ``net.send_frame`` — fires before bytes hit the socket. A
  ``DropMessage`` directive simulates the peer resetting mid-send
  (raises :class:`ConnectionResetError`, which the driver's classifier
  treats as transient for idempotent control-plane ops).
* ``net.recv_frame`` — fires before blocking on the socket; the same
  directive simulates a reset while awaiting a reply.

The optional ``tap`` callable observes every serialized frame —
``tap(direction, opcode, frame_bytes)`` — and is how the strong adversary
reads the real wire: length prefix, opcode byte, and ciphertext payload,
exactly what a network observer sees.
"""

from __future__ import annotations

import socket
from typing import Any, Callable

from repro.errors import TruncatedFrameError
from repro.faults import DropMessageDirective, fault_point, register_fault_site
from repro.net.frames import FRAME_HEADER_LEN, try_decode
from repro.net.messages import decode_message, encode_message

__all__ = ["FrameChannel", "connect_channel"]

register_fault_site("net.send_frame", "outbound wire frame about to be written")
register_fault_site("net.recv_frame", "inbound wire frame about to be read")

#: tap(direction, opcode, frame_bytes); direction is "send" or "recv".
FrameTap = Callable[[str, int, bytes], None]

_RECV_CHUNK = 64 * 1024


class FrameChannel:
    """A framed message channel over one connected stream socket."""

    def __init__(self, sock: socket.socket, tap: FrameTap | None = None):
        self.sock = sock
        self.tap = tap
        self._buffer = bytearray()
        self._closed = False

    # ------------------------------------------------------------- sending

    def send_frame(self, frame: bytes) -> None:
        """Write one already-encoded frame (the router's forwarding path)."""
        directive = fault_point("net.send_frame", frame=frame)
        if isinstance(directive, DropMessageDirective):
            # The peer will never see this frame; surface it as the socket
            # error a real half-open connection produces.
            raise ConnectionResetError("injected: frame dropped on send")
        if self.tap is not None:
            self.tap("send", frame[3], frame)
        self.sock.sendall(frame)

    def send_message(self, msg: Any) -> None:
        self.send_frame(encode_message(msg))

    # ------------------------------------------------------------ receiving

    def recv_frame(self) -> tuple[int, bytes, bytes] | None:
        """Receive one raw frame: ``(opcode, payload, frame_bytes)``.

        ``None`` on clean EOF at a frame boundary. The caller chooses
        whether to decode the payload (:func:`decode_message`) or forward
        ``frame_bytes`` verbatim — validation (magic, version, opcode,
        length, CRC) has already happened in :func:`try_decode` either way.
        """
        directive = fault_point("net.recv_frame")
        if isinstance(directive, DropMessageDirective):
            raise ConnectionResetError("injected: frame dropped on receive")
        while True:
            decoded = try_decode(bytes(self._buffer))
            if decoded is not None:
                opcode, payload, consumed = decoded
                frame = bytes(self._buffer[:consumed])
                if self.tap is not None:
                    self.tap("recv", opcode, frame)
                del self._buffer[:consumed]
                return opcode, payload, frame
            chunk = self.sock.recv(_RECV_CHUNK)
            if not chunk:
                if self._buffer:
                    raise TruncatedFrameError(
                        f"connection closed mid-frame with {len(self._buffer)} buffered bytes"
                    )
                return None
            self._buffer.extend(chunk)

    def recv_message(self) -> Any | None:
        """Receive one message; ``None`` on clean EOF at a frame boundary."""
        raw = self.recv_frame()
        if raw is None:
            return None
        opcode, payload, _frame = raw
        return decode_message(opcode, payload)

    def request(self, msg: Any) -> Any:
        """Send one message and block for the peer's reply frame."""
        self.send_message(msg)
        reply = self.recv_message()
        if reply is None:
            raise ConnectionResetError("connection closed while awaiting reply")
        return reply

    # -------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def connect_channel(
    host: str, port: int, *, timeout_s: float | None = None, tap: FrameTap | None = None
) -> FrameChannel:
    """Dial ``host:port`` and return a ready :class:`FrameChannel`."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return FrameChannel(sock, tap=tap)


# Re-exported for introspection/tests: minimum bytes a valid frame needs.
MIN_FRAME_LEN = FRAME_HEADER_LEN
