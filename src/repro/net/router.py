"""The stateless shard router: one wire endpoint over N engine processes.

The router speaks the same framed protocol as :class:`WireServer` on its
front side and is a plain wire *client* of every shard on its back side,
so the AE driver cannot tell a sharded deployment from a single server.
Partitioning is by warehouse: ``shard_of(w) = (w - 1) % n_shards``, read
from the ``@w`` parameter every TPC-C statement carries.

Routing rules (in order):

* ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` — handled by the router itself;
  ``BEGIN`` is **lazy** (no shard sees it until a statement routes there).
* DDL (``CREATE``/``DROP``/``ALTER``) — broadcast to every shard, so the
  catalog (including ``CREATE COLUMN ENCRYPTION KEY``, whose DDL embeds
  the encrypted key bytes) is replicated identically.
* DML with a ``w`` parameter — routed to ``shard_of(params["w"])``.
* Keyless writes (the replicated ITEM table, loaded once) — broadcast.
* Keyless reads — the connection's *affinity shard*, derived from the
  client's home-warehouse hint in ``Hello``/``SessionOpen``.

The control plane (describe / attest / CEK fetch / enclave forwarding) is
pinned to the affinity shard: the enclave session the client's attestation
creates lives in exactly one shard process, and with home-warehouse
affinity every encrypted predicate the client sends routes there too.

Commit of a transaction that touched ≥ 2 shards runs **two-phase commit**
layered on each shard's WAL: prepare every participant (durable PREPARE
record, locks retained), make the commit decision durable in the router's
:class:`CommitDecisionLog`, then fan out ``commit_prepared``. The
protocol is *presumed abort*: a gtid absent from the decision log aborts
during :meth:`Router.resolve_indoubt`, so a coordinator crash between
prepare and decision loses nothing. A participant crash after the
decision is re-resolved from the log — the decision record, not the
fan-out, is the commit point.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
from typing import Callable

from repro.errors import FaultInjected, TransactionError, WireError
from repro.faults.registry import fault_point, register_fault_site
from repro.net import messages as msg
from repro.net.messages import decode_message
from repro.net.opcodes import opcode_byte, opcode_name
from repro.net.remote import RemoteServer, RemoteSession
from repro.net.transport import FrameChannel, FrameTap
from repro.sqlengine.exec.executor import QueryResult

__all__ = ["CommitDecisionLog", "Router", "shard_of"]

register_fault_site(
    "router.commit_decision",
    "2PC coordinator about to make the commit decision durable "
    "(all participants prepared; crash here means presumed abort)",
)


def shard_of(warehouse: int, n_shards: int) -> int:
    """Hash-partition 1-based warehouse ids round-robin over shards."""
    return (int(warehouse) - 1) % n_shards


_DDL_KEYWORDS = frozenset({"CREATE", "DROP", "ALTER"})
_WRITE_KEYWORDS = frozenset({"INSERT", "UPDATE", "DELETE"})
_TXN_KEYWORDS = frozenset({"BEGIN", "COMMIT", "ROLLBACK"})

_EXECUTE_REPLY_OP = opcode_byte("execute_reply")


def _first_keyword(query_text: str) -> str:
    parts = query_text.lstrip().split(None, 1)
    return parts[0].upper() if parts else ""


class CommitDecisionLog:
    """Durable append-only record of *committed* gtids (presumed abort).

    With a path the log is a flat file of gtid lines, fsynced per append —
    the coordinator's equivalent of a WAL flush. Without one it is
    memory-only (fine for tests that never crash the coordinator).
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self._lock = threading.Lock()
        self._gtids: set[str] = set()
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                self._gtids.update(line.strip() for line in fh if line.strip())

    def record(self, gtid: str) -> None:
        with self._lock:
            if gtid in self._gtids:
                return
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(gtid + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
            self._gtids.add(gtid)

    def __contains__(self, gtid: str) -> bool:
        with self._lock:
            return gtid in self._gtids

    def gtids(self) -> frozenset[str]:
        with self._lock:
            return frozenset(self._gtids)


class RouterSession:
    """One client session fanned out over per-shard backend sessions."""

    def __init__(self, router: "Router", session_id: int, affinity_shard: int):
        self.router = router
        self.session_id = session_id
        self.affinity_shard = affinity_shard
        self.backends: dict[int, RemoteSession] = {}
        self.in_transaction = False
        #: shards holding an open branch of the current client transaction.
        self.participants: set[int] = set()

    # ---------------------------------------------------------------- backends

    def _backend(self, shard_idx: int) -> RemoteSession:
        session = self.backends.get(shard_idx)
        if session is None:
            session = self.router.shards[shard_idx].connect()
            self.backends[shard_idx] = session
        return session

    def _enlist(self, shard_idx: int) -> RemoteSession:
        """Route a statement to a shard; open its transaction branch lazily."""
        backend = self._backend(shard_idx)
        if self.in_transaction and shard_idx not in self.participants:
            backend.execute("BEGIN TRANSACTION")
            self.participants.add(shard_idx)
        return backend

    # ----------------------------------------------------------------- execute

    def execute(self, query_text: str, params: dict) -> QueryResult:
        keyword = _first_keyword(query_text)
        if keyword == "BEGIN":
            return self._begin()
        if keyword == "COMMIT":
            return self._commit()
        if keyword == "ROLLBACK":
            return self._rollback()
        if keyword in _DDL_KEYWORDS:
            return self._execute_broadcast(query_text, params)
        if "w" in params:
            shard_idx = shard_of(params["w"], self.router.n_shards)
            return self._execute_on(shard_idx, query_text, params)
        if keyword in _WRITE_KEYWORDS:
            # Keyless write: the replicated ITEM table — every shard gets it.
            return self._execute_broadcast(query_text, params)
        return self._execute_on(self.affinity_shard, query_text, params)

    def execute_fast(self, query_text: str, params: dict) -> bytes | None:
        """Single-shard forwarding fast path: the raw reply frame, or None.

        The slow path decodes the shard's reply (rows and all) only to
        re-encode it byte-identically for the client — at benchmark rates
        that double serialization is most of the router's CPU. When a
        statement routes to exactly one shard, the shard's ``execute_reply``
        frame is forwarded verbatim instead: its ``in_transaction`` flag is
        the branch's state, which on the success path always equals this
        session's state (a DML statement never opens or closes a
        transaction). ``None`` means the statement needs the slow path
        (transaction verbs, DDL/keyless-write broadcasts); error replies
        are decoded and take the same branch-abort path as
        :meth:`_execute_on`.
        """
        keyword = _first_keyword(query_text)
        if keyword in _TXN_KEYWORDS or keyword in _DDL_KEYWORDS:
            return None
        if "w" in params:
            shard_idx = shard_of(params["w"], self.router.n_shards)
        elif keyword in _WRITE_KEYWORDS:
            return None
        else:
            shard_idx = self.affinity_shard
        backend = self._enlist(shard_idx)
        opcode, payload, frame = backend.execute_raw(query_text, params)
        if opcode == _EXECUTE_REPLY_OP:
            return frame
        reply = decode_message(opcode, payload)
        if isinstance(reply, msg.ErrorReply):
            if reply.in_transaction is not None:
                backend._in_transaction = reply.in_transaction
            if self.in_transaction and not backend.in_transaction:
                self.participants.discard(shard_idx)
                self._rollback_participants()
                self.in_transaction = False
            raise msg.reconstruct_error(reply)
        raise WireError(
            f"unexpected reply opcode {opcode_name(opcode)!r} to a forwarded execute"
        )

    def _execute_on(self, shard_idx: int, query_text: str, params: dict) -> QueryResult:
        backend = self._enlist(shard_idx)
        try:
            return backend.execute(query_text, params)
        except Exception:
            if self.in_transaction and not backend.in_transaction:
                # The shard aborted its branch (deadlock victim, lock
                # timeout): the distributed transaction cannot commit.
                # Roll the other branches back so no branch half-commits.
                self.participants.discard(shard_idx)
                self._rollback_participants()
                self.in_transaction = False
            raise

    def _execute_broadcast(self, query_text: str, params: dict) -> QueryResult:
        result: QueryResult | None = None
        for shard_idx in range(self.router.n_shards):
            result = self._execute_on(shard_idx, query_text, params)
        assert result is not None
        return result

    # ------------------------------------------------------- transaction verbs

    def _begin(self) -> QueryResult:
        if self.in_transaction:
            raise TransactionError("transaction already in progress")
        self.in_transaction = True
        self.participants.clear()
        return QueryResult()

    def _rollback(self) -> QueryResult:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        self._rollback_participants()
        self.in_transaction = False
        return QueryResult()

    def _rollback_participants(self) -> None:
        for shard_idx in sorted(self.participants):
            backend = self.backends.get(shard_idx)
            if backend is None or not backend.in_transaction:
                continue
            try:
                backend.execute("ROLLBACK")
            except Exception:
                pass  # a crashed shard aborts the branch on its own
        self.participants.clear()

    def _commit(self) -> QueryResult:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        participants = sorted(self.participants)
        try:
            if len(participants) <= 1:
                for shard_idx in participants:
                    self.backends[shard_idx].execute("COMMIT")
            else:
                self.router.two_phase_commit(
                    {idx: self.backends[idx] for idx in participants}
                )
        finally:
            self.in_transaction = False
            self.participants.clear()
        return QueryResult()

    def close(self) -> None:
        if self.in_transaction:
            try:
                self._rollback_participants()
            finally:
                self.in_transaction = False
        for backend in self.backends.values():
            try:
                backend.close()
            except Exception:
                pass  # connection-loss close is best-effort by contract
        self.backends.clear()


class Router:
    """Front-side wire server + back-side client of every shard."""

    def __init__(
        self,
        shard_addresses: list[tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "router",
        decision_log: CommitDecisionLog | None = None,
        timeout_s: float | None = 30.0,
        tap: FrameTap | None = None,
    ):
        self.name = name
        self.shards: list[RemoteServer] = [
            RemoteServer(h, p, timeout_s=timeout_s) for (h, p) in shard_addresses
        ]
        self.n_shards = len(self.shards)
        if self.n_shards == 0:
            raise ValueError("router needs at least one shard")
        self.decisions = decision_log or CommitDecisionLog()
        self.tap = tap
        self._gtid_counter = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._channels_lock = threading.Lock()
        self._channels: set[FrameChannel] = set()

    # --------------------------------------------------------------- lifecycle

    def start(self) -> "Router":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"router-accept-{self.name}", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._channels_lock:
            channels = list(self._channels)
        for channel in channels:
            channel.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for shard in self.shards:
            try:
                shard.close()
            except Exception:
                pass

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------- 2PC engine

    def next_gtid(self) -> str:
        return f"{self.name}:{next(self._gtid_counter)}"

    def two_phase_commit(self, branches: dict[int, RemoteSession]) -> str:
        """Commit one transaction spanning ``branches`` (shard_idx → session).

        Phase 1 prepares every branch; any failure aborts all of them and
        re-raises. Phase 2 appends the gtid to the decision log — the
        commit point — then fans out ``commit_prepared``. Fan-out errors
        are swallowed: the decision is durable, so a crashed participant
        re-commits via :meth:`resolve_indoubt` after recovery.
        """
        gtid = self.next_gtid()
        prepared: list[int] = []
        try:
            for shard_idx in sorted(branches):
                branches[shard_idx].prepare_transaction(gtid)
                prepared.append(shard_idx)
            fault_point("router.commit_decision", gtid=gtid)
        except Exception:
            for shard_idx in sorted(branches):
                try:
                    if shard_idx in prepared:
                        self.shards[shard_idx].abort_prepared(gtid)
                    elif branches[shard_idx].in_transaction:
                        branches[shard_idx].execute("ROLLBACK")
                except Exception:
                    pass  # unreachable shard: presumed abort resolves it
            raise
        self.decisions.record(gtid)
        for shard_idx in sorted(branches):
            try:
                self.shards[shard_idx].commit_prepared(gtid)
            except Exception:
                pass  # decision is durable; resolve_indoubt finishes the job
        return gtid

    def resolve_indoubt(self) -> dict[str, str]:
        """Drive every shard's in-doubt gtids to an outcome (recovery).

        A gtid in the decision log commits; anything else is presumed
        abort. Returns ``{gtid: "commit" | "abort"}``.
        """
        outcomes: dict[str, str] = {}
        for shard in self.shards:
            for gtid in shard.indoubt_gtids():
                if gtid in self.decisions:
                    shard.commit_prepared(gtid)
                    outcomes[gtid] = "commit"
                else:
                    shard.abort_prepared(gtid)
                    outcomes[gtid] = "abort"
        return outcomes

    def audit(self) -> list[str]:
        violations: list[str] = []
        for idx, shard in enumerate(self.shards):
            violations.extend(f"shard{idx}: {v}" for v in shard.audit())
        return violations

    # ------------------------------------------------------------ accept loop

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            channel = FrameChannel(sock, tap=self.tap)
            with self._channels_lock:
                self._channels.add(channel)
            threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name=f"router-conn-{self.name}",
                daemon=True,
            ).start()

    def _affinity_shard(self, affinity: int | None) -> int:
        if affinity is None:
            return 0
        return shard_of(affinity, self.n_shards)

    def _serve_connection(self, channel: FrameChannel) -> None:
        sessions: dict[int, RouterSession] = {}
        affinity_shard = 0
        try:
            hello = channel.recv_message()
            if not isinstance(hello, msg.Hello):
                return
            affinity_shard = self._affinity_shard(hello.affinity)
            shard_hello = self.shards[affinity_shard].hello
            channel.send_message(
                msg.HelloReply(
                    protocol_version=1,
                    server_name=self.name,
                    shard_count=self.n_shards,
                    hgs_public=shard_hello.hgs_public,
                )
            )
            while True:
                request = channel.recv_message()
                if request is None or isinstance(request, msg.AdminShutdown):
                    if request is not None:
                        channel.send_message(msg.Ok())
                    if isinstance(request, msg.AdminShutdown):
                        threading.Thread(target=self.stop, daemon=True).start()
                    return
                try:
                    if isinstance(request, msg.Execute):
                        session = self._session(sessions, request.session_id)
                        raw = session.execute_fast(request.query_text, request.params)
                        if raw is not None:
                            channel.send_frame(raw)
                            continue
                        # Slow path: nothing was sent to any shard yet.
                    reply = self._dispatch(request, sessions, affinity_shard)
                except WireError:
                    raise  # protocol violation: drop the connection
                except Exception as exc:
                    in_txn = None
                    if isinstance(request, msg.Execute):
                        session = sessions.get(request.session_id)
                        if session is not None:
                            in_txn = session.in_transaction
                    reply = msg.error_reply_for(exc, in_transaction=in_txn)
                channel.send_message(reply)
        except (ConnectionError, WireError, OSError, FaultInjected):
            pass  # peer vanished, spoke garbage, or a net.* fault fired here
        finally:
            for session in sessions.values():
                try:
                    session.close()
                except Exception:
                    pass
            with self._channels_lock:
                self._channels.discard(channel)
            channel.close()

    # --------------------------------------------------------------- dispatch

    #: control-plane types forwarded verbatim to the affinity shard (the
    #: enclave session created by Attest lives in that one process). The
    #: rotation verbs ride the same rule on purpose: the enclave's batched
    #: recrypt is gated on the query authorization inside the *affinity*
    #: shard's enclave, so a fleet-wide rotation opens one connection per
    #: shard (affinity hints covering every shard) and rotates each
    #: shard's partition through its own enclave — keys never leave any
    #: of them.
    _FORWARDED = (
        msg.Describe,
        msg.Attest,
        msg.CekFetch,
        msg.CekList,
        msg.TableInfo,
        msg.ForwardPackage,
        msg.AdminRotateStart,
        msg.AdminRotateStep,
        msg.AdminRotateStatus,
        msg.AdminCekVersions,
    )

    def _dispatch(
        self,
        request: object,
        sessions: dict[int, RouterSession],
        affinity_shard: int,
    ) -> object:
        if isinstance(request, msg.Ping):
            return msg.Ok()
        if isinstance(request, self._FORWARDED):
            return self.shards[affinity_shard]._request(request)
        if isinstance(request, msg.SessionOpen):
            shard_idx = (
                affinity_shard
                if request.affinity is None
                else self._affinity_shard(request.affinity)
            )
            session = RouterSession(self, next(self._session_ids), shard_idx)
            sessions[session.session_id] = session
            return msg.SessionOpenReply(session_id=session.session_id)
        if isinstance(request, msg.SessionClose):
            session = sessions.pop(request.session_id, None)
            if session is not None:
                session.close()
            return msg.Ok()
        if isinstance(request, msg.Execute):
            session = self._session(sessions, request.session_id)
            result = session.execute(request.query_text, request.params)
            return msg.ExecuteReply(result=result, in_transaction=session.in_transaction)
        if isinstance(request, msg.TxnIndoubt):
            gtids: list[str] = []
            for shard in self.shards:
                gtids.extend(g for g in shard.indoubt_gtids() if g not in gtids)
            return msg.TxnIndoubtReply(gtids=gtids)
        if isinstance(request, msg.AdminAudit):
            return msg.AdminAuditReply(violations=self.audit())
        raise WireError(f"message type {type(request).__name__!r} not valid at router")

    @staticmethod
    def _session(sessions: dict[int, RouterSession], session_id: int) -> RouterSession:
        try:
            return sessions[session_id]
        except KeyError:
            raise WireError(f"unknown session id {session_id}") from None
