"""The wire opcode registry: one name, one byte, forever.

Every frame carries a single opcode byte identifying the message type it
transports. The registry below is the *only* place opcode numbers are
assigned; message classes reference opcodes by name (their ``OP`` class
attribute) and the static analyzer lints that every opcode string literal
in the source appears here — a frame writer cannot invent an opcode the
registry (and therefore the decoder and the adversary's tap) does not
know about.

Opcode bytes are append-only: renumbering an existing opcode is a wire
format break and requires a protocol version bump in
:mod:`repro.net.frames`.
"""

from __future__ import annotations

#: name → wire byte. Grouped by plane; gaps leave room for growth.
OPCODES: dict[str, int] = {
    # connection handshake
    "hello": 0x01,
    "hello_reply": 0x02,
    "ok": 0x03,
    "error": 0x04,
    "ping": 0x05,
    # control plane (describe / attestation / key metadata)
    "describe": 0x10,
    "describe_reply": 0x11,
    "attest": 0x12,
    "attest_reply": 0x13,
    "cek_fetch": 0x14,
    "cek_fetch_reply": 0x15,
    "cek_list": 0x16,
    "cek_list_reply": 0x17,
    "table_info": 0x18,
    "table_info_reply": 0x19,
    "forward_package": 0x1A,
    # data plane (sessions and statements)
    "session_open": 0x20,
    "session_open_reply": 0x21,
    "session_close": 0x22,
    "execute": 0x23,
    "execute_reply": 0x24,
    # two-phase commit (router → shard)
    "txn_prepare": 0x30,
    "txn_commit_prepared": 0x31,
    "txn_abort_prepared": 0x32,
    "txn_indoubt": 0x33,
    "txn_indoubt_reply": 0x34,
    # administration (benchmark harness / torture tests)
    "admin_audit": 0x40,
    "admin_audit_reply": 0x41,
    "admin_crash": 0x42,
    "admin_recover": 0x43,
    "admin_recover_reply": 0x44,
    "admin_shutdown": 0x45,
    # online key lifecycle (rotation driven through router / shards)
    "admin_rotate_start": 0x46,
    "admin_rotate_step": 0x47,
    "admin_rotate_step_reply": 0x48,
    "admin_rotate_status": 0x49,
    "admin_rotate_status_reply": 0x4A,
    "admin_cek_versions": 0x4B,
    "admin_cek_versions_reply": 0x4C,
}

_BY_BYTE: dict[int, str] = {byte: name for name, byte in OPCODES.items()}

if len(_BY_BYTE) != len(OPCODES):
    raise AssertionError("duplicate opcode byte in OPCODES")


def opcode_byte(name: str) -> int:
    """The wire byte for an opcode name; raises ``KeyError`` on unknowns."""
    return OPCODES[name]


def opcode_name(byte: int) -> str | None:
    """The opcode name for a wire byte, or ``None`` if unassigned."""
    return _BY_BYTE.get(byte)
