"""The measured transition-cost model (ROADMAP item 4's input).

The batch executor currently picks its chunk size from a fixed default;
the paper's argument for batching (Section 4.6) is *quantitative* — the
boundary-crossing cost per row falls as the batch grows. This module
records what each ecall actually cost, bucketed by batch size, and
persists the distribution so a cost model can choose batch sizes from
measurement instead of folklore.

Fed by the enclave call gateway (every eval/eval_batch measures its wall
time); persisted as JSON by the ``flightrec record`` CLI; consumed via
:meth:`TransitionCostModel.cost_per_row_s` and
:meth:`TransitionCostModel.recommended_batch_size`.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

#: Power-of-two batch-size buckets, matching the ``worker.batch_size``
#: histogram edges; an observation lands in the first bucket >= rows.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

_SCHEMA = "repro-transition-costs"
_VERSION = 1


class TransitionCostModel:
    """Per-batch-size wall-time statistics for enclave calls."""

    def __init__(self):
        self._lock = threading.Lock()
        #: bucket -> {"calls", "total_s", "min_s", "max_s"}
        self._buckets: dict[int, dict] = {}

    @staticmethod
    def bucket_of(rows: int) -> int:
        for bucket in BATCH_BUCKETS:
            if rows <= bucket:
                return bucket
        return BATCH_BUCKETS[-1]

    def observe(self, rows: int, wall_s: float) -> None:
        bucket = self.bucket_of(max(1, rows))
        with self._lock:
            entry = self._buckets.get(bucket)
            if entry is None:
                entry = {"calls": 0, "total_s": 0.0, "min_s": wall_s, "max_s": wall_s}
                self._buckets[bucket] = entry
            entry["calls"] += 1
            entry["total_s"] += wall_s
            entry["min_s"] = min(entry["min_s"], wall_s)
            entry["max_s"] = max(entry["max_s"], wall_s)

    # -- queries -----------------------------------------------------------

    @property
    def observations(self) -> int:
        with self._lock:
            return sum(entry["calls"] for entry in self._buckets.values())

    def mean_cost_s(self, rows: int) -> float | None:
        """Mean measured wall time for a call of ``rows`` (its bucket)."""
        bucket = self.bucket_of(max(1, rows))
        with self._lock:
            entry = self._buckets.get(bucket)
            if entry is None or entry["calls"] == 0:
                return None
            return entry["total_s"] / entry["calls"]

    def cost_per_row_s(self, rows: int) -> float | None:
        mean = self.mean_cost_s(rows)
        if mean is None:
            return None
        return mean / self.bucket_of(max(1, rows))

    def recommended_batch_size(self, default: int = 64) -> int:
        """The observed bucket with the lowest per-row cost.

        Falls back to ``default`` when nothing has been measured — the
        executor's behaviour is unchanged until there is evidence.
        """
        best = None
        best_cost = None
        with self._lock:
            for bucket, entry in self._buckets.items():
                if entry["calls"] == 0:
                    continue
                per_row = entry["total_s"] / entry["calls"] / bucket
                if best_cost is None or per_row < best_cost:
                    best, best_cost = bucket, per_row
        return best if best is not None else default

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "schema": _SCHEMA,
                "version": _VERSION,
                "buckets": {str(k): dict(v) for k, v in sorted(self._buckets.items())},
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransitionCostModel":
        if payload.get("schema") != _SCHEMA or payload.get("version") != _VERSION:
            raise ValueError("not a transition-cost model payload")
        model = cls()
        for bucket, entry in payload.get("buckets", {}).items():
            model._buckets[int(bucket)] = {
                "calls": int(entry["calls"]),
                "total_s": float(entry["total_s"]),
                "min_s": float(entry["min_s"]),
                "max_s": float(entry["max_s"]),
            }
        return model

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: str | Path) -> "TransitionCostModel":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()


_global_model = TransitionCostModel()


def get_transition_cost_model() -> TransitionCostModel:
    """The process-global model the enclave gateway reports into."""
    return _global_model
