"""The process-global metrics registry.

Every component of the reproduction reports into one registry so a single
snapshot captures the quantities the paper argues about: enclave boundary
crossings (Section 4.6), buffer-pool behaviour under ciphertext rows,
driver cache effectiveness (Section 4.1), and lock waits around deferred
transactions (Section 4.5).

Design rules:

* **Naming** follows ``component.noun_verb`` — lowercase dot-separated
  segments of ``[a-z][a-z0-9_]*``, at least two segments, where the first
  segment names the reporting component (``enclave``, ``bufferpool``, ...)
  and the last describes what is counted (``pages_read``, ``wait_seconds``).
  ``scripts/check_metrics.py`` lints this.
* **Registration is get-or-create** per (name, kind); re-registering the
  same name with a *different* kind raises — that is always a bug.
* **Thread safety**: every mutation takes the metric's lock; concurrent
  increments never lose counts.
* **Cheap when disabled**: ``registry.enabled = False`` turns every
  ``inc``/``set``/``observe`` into a single attribute check and return.
* **Exposition**: ``to_json()`` and ``to_prometheus_text()`` both
  round-trip through the matching parsers with identical values.

Per-instance stats objects (a gateway's ``WorkerStats``, a pool's
``hits``) are *views* over the global counters: they record a baseline at
construction and report ``counter - baseline``, so many instances can
share one process-global metric while keeping per-instance semantics.
"""

from __future__ import annotations

import contextlib
import enum
import json
import re
import threading
from bisect import bisect_left

METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Default histogram buckets for durations in seconds (upper bounds; a
# +inf bucket is implicit). Matches the Prometheus convention: a value v
# lands in the first bucket with v <= upper_bound.
DEFAULT_TIME_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0
)


class MetricKind(enum.Enum):
    COUNTER = "counter"
    GAUGE = "gauge"
    HISTOGRAM = "histogram"


class MetricError(ValueError):
    """Bad metric name, kind conflict, or malformed exposition text."""


def validate_metric_name(name: str) -> None:
    if not METRIC_NAME_RE.match(name):
        raise MetricError(
            f"metric name {name!r} violates the component.noun_verb "
            "convention (lowercase dot-separated [a-z][a-z0-9_]* segments, "
            "at least two)"
        )


class AttributionContext:
    """A per-statement bucket of counter increments.

    While a context is active on a thread (``registry.push_context``),
    every ``Counter.inc`` on that thread *also* adds into the context —
    so a statement reads back exactly the counts its own execution caused,
    even when other sessions increment the same global counters
    concurrently. Contexts can be adopted by worker threads
    (``registry.adopt_contexts``) so enclave-gateway work done on behalf
    of a statement still attributes to it.
    """

    __slots__ = ("_values", "_lock")

    def __init__(self):
        self._values: dict[str, int | float] = {}
        self._lock = threading.Lock()

    def add(self, name: str, amount: int | float) -> None:
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount

    def value(self, name: str) -> int | float:
        with self._lock:
            return self._values.get(name, 0)

    def snapshot(self) -> dict[str, int | float]:
        with self._lock:
            return dict(self._values)


class Counter:
    """A monotonically increasing value (ints stay ints, floats allowed)."""

    __slots__ = ("name", "help", "_value", "_lock", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry", help: str = ""):
        self.name = name
        self.help = help
        self._value: int | float = 0
        self._lock = threading.Lock()
        self._registry = registry

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount
        for ctx in self._registry.current_contexts():
            ctx.add(self.name, amount)

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down (queue depth, cached pages)."""

    __slots__ = ("name", "help", "_value", "_lock", "_registry")

    def __init__(self, name: str, registry: "MetricsRegistry", help: str = ""):
        self.name = name
        self.help = help
        self._value: int | float = 0
        self._lock = threading.Lock()
        self._registry = registry

    def set(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> int | float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative exposition).

    ``buckets`` are finite ascending upper bounds; an implicit +inf bucket
    catches the tail. ``observe(v)`` places v in the first bucket with
    ``v <= bound`` — bucket edges are inclusive, which the unit tests pin.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock", "_registry")

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S,
        help: str = "",
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise MetricError(f"histogram {name!r} needs ascending, non-empty buckets")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +inf
        self._sum: float = 0.0
        self._count: int = 0
        self._lock = threading.Lock()
        self._registry = registry

    def observe(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """Cumulative bucket counts keyed by upper bound (prom semantics)."""
        with self._lock:
            cumulative: dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, self._counts):
                running += count
                cumulative[repr(bound)] = running
            cumulative["+Inf"] = running + self._counts[-1]
            return {"count": self._count, "sum": self._sum, "buckets": cumulative}

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named metrics with get-or-create registration and exposition."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: dict[str, Metric] = {}
        self._kinds: dict[str, MetricKind] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- attribution contexts ----------------------------------------------

    def _context_stack(self) -> list[AttributionContext]:
        stack = getattr(self._tls, "contexts", None)
        if stack is None:
            stack = []
            self._tls.contexts = stack
        return stack

    def current_contexts(self) -> tuple[AttributionContext, ...]:
        """The contexts active on the calling thread (innermost last)."""
        stack = getattr(self._tls, "contexts", None)
        if not stack:
            return ()
        return tuple(stack)

    def push_context(self, ctx: AttributionContext) -> AttributionContext:
        self._context_stack().append(ctx)
        return ctx

    def pop_context(self, ctx: AttributionContext) -> None:
        stack = self._context_stack()
        if ctx in stack:
            stack.remove(ctx)

    @contextlib.contextmanager
    def adopt_contexts(self, contexts: tuple[AttributionContext, ...]):
        """Attribute this thread's increments to ``contexts`` for the
        duration — used by worker threads doing a statement's work."""
        stack = self._context_stack()
        for ctx in contexts:
            stack.append(ctx)
        try:
            yield
        finally:
            for ctx in contexts:
                if ctx in stack:
                    stack.remove(ctx)

    # -- registration -------------------------------------------------------

    def _register(self, name: str, kind: MetricKind, factory) -> Metric:
        validate_metric_name(name)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if self._kinds[name] is not kind:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{self._kinds[name].value}, cannot re-register as {kind.value}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            self._kinds[name] = kind
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, MetricKind.COUNTER, lambda: Counter(name, self, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, MetricKind.GAUGE, lambda: Gauge(name, self, help))

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS_S,
        help: str = "",
    ) -> Histogram:
        return self._register(
            name, MetricKind.HISTOGRAM, lambda: Histogram(name, self, buckets, help)
        )

    # -- introspection ------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def kind_of(self, name: str) -> MetricKind:
        return self._kinds[name]

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def value(self, name: str) -> int | float:
        """Scalar value of a counter/gauge (0 if never registered)."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise MetricError(f"{name!r} is a histogram; use snapshot()")
        return metric.value

    # -- snapshot / reset ---------------------------------------------------

    def snapshot(self) -> dict:
        """All metric values: scalars for counters/gauges, dicts for
        histograms ({count, sum, buckets})."""
        with self._lock:
            items = list(self._metrics.items())
        out: dict[str, object] = {}
        for name, metric in items:
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def reset(self) -> None:
        """Zero every metric (benchmark isolation). Per-instance stats
        views clamp at zero so a reset never produces negative readings."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric._reset()

    # -- exposition: JSON ---------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "metrics": {
                    name: {"kind": self._kinds[name].value, "value": value}
                    for name, value in self.snapshot().items()
                }
            },
            sort_keys=True,
        )

    # -- exposition: Prometheus text ---------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text format. Dots are illegal in prom names, so the
        sanitized name carries the real one in a ``metric`` label —
        lossless, which is what makes the round-trip test exact."""
        lines: list[str] = []
        snap = self.snapshot()
        for name in sorted(snap):
            kind = self._kinds[name]
            prom = name.replace(".", "_")
            lines.append(f"# TYPE {prom} {kind.value}")
            value = snap[name]
            if kind is MetricKind.HISTOGRAM:
                assert isinstance(value, dict)
                for bound, count in value["buckets"].items():
                    lines.append(
                        f'{prom}_bucket{{metric="{name}",le="{bound}"}} {count}'
                    )
                lines.append(f'{prom}_sum{{metric="{name}"}} {_fmt(value["sum"])}')
                lines.append(f'{prom}_count{{metric="{name}"}} {value["count"]}')
            else:
                lines.append(f'{prom}{{metric="{name}"}} {_fmt(value)}')
        return "\n".join(lines) + "\n"


def _fmt(value: int | float) -> str:
    # repr() round-trips python floats exactly; ints print as ints.
    return repr(value)


def _parse_num(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        return float(text)


def snapshot_from_json(text: str) -> dict:
    """Parse ``to_json()`` output back into a ``snapshot()``-shaped dict."""
    payload = json.loads(text)
    return {name: entry["value"] for name, entry in payload["metrics"].items()}


_PROM_LINE_RE = re.compile(
    r'^(?P<prom>[A-Za-z_][A-Za-z0-9_]*)\{metric="(?P<name>[^"]+)"(?:,le="(?P<le>[^"]+)")?\} '
    r"(?P<value>\S+)$"
)


def snapshot_from_prometheus_text(text: str) -> dict:
    """Parse ``to_prometheus_text()`` output back into a snapshot dict."""
    out: dict[str, object] = {}
    histograms: dict[str, dict] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _PROM_LINE_RE.match(line)
        if match is None:
            raise MetricError(f"unparseable prometheus line: {line!r}")
        prom = match.group("prom")
        name = match.group("name")
        value = _parse_num(match.group("value"))
        sanitized = name.replace(".", "_")
        if prom == sanitized + "_bucket":
            histograms.setdefault(name, {"buckets": {}})["buckets"][match.group("le")] = value
        elif prom == sanitized + "_sum":
            histograms.setdefault(name, {"buckets": {}})["sum"] = value
        elif prom == sanitized + "_count":
            histograms.setdefault(name, {"buckets": {}})["count"] = value
        else:
            out[name] = value
    out.update(histograms)
    return out


# --------------------------------------------------------------------------
# The process-global registry and per-instance views over it.

_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every component reports into."""
    return _global_registry


class StatsView:
    """Per-instance view over global counters, offset by a creation-time
    baseline — many instances share one global metric, each still reads
    "my counts since I was created".

    Subclasses declare ``FIELDS`` mapping attribute name → metric name;
    reads come through ``__getattr__``, writes go through :meth:`inc`.
    ``max(0, ...)`` keeps readings sane if the registry was reset under us.
    """

    FIELDS: dict[str, str] = {}

    def __init__(self, registry: MetricsRegistry | None = None):
        registry = registry or get_registry()
        counters = {
            attr: registry.counter(metric_name)
            for attr, metric_name in self.FIELDS.items()
        }
        baseline = {attr: counter.value for attr, counter in counters.items()}
        # Avoid __setattr__/__getattr__ recursion by writing __dict__ directly.
        self.__dict__["_counters"] = counters
        self.__dict__["_baseline"] = baseline

    def __getattr__(self, attr: str):
        counters = self.__dict__.get("_counters", {})
        if attr in counters:
            value = counters[attr].value - self.__dict__["_baseline"][attr]
            return max(0, value) if not isinstance(value, float) else max(0.0, value)
        raise AttributeError(attr)

    def inc(self, attr: str, amount: int | float = 1) -> None:
        self.__dict__["_counters"][attr].inc(amount)

    def snapshot(self) -> dict[str, int | float]:
        return {attr: getattr(self, attr) for attr in self.FIELDS}

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={getattr(self, k)}" for k in self.FIELDS)
        return f"{type(self).__name__}({fields})"
