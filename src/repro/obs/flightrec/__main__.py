"""``python -m repro.obs.flightrec`` — record, validate, convert, report.

Subcommands:

* ``record --out DIR`` — build a small RND TPC-C system (QUEUED enclave
  gateway, multi-threaded scheduler), drive it from concurrent clients,
  and export ``flight.jsonl``, ``flight.chrome.json`` (Perfetto-loadable)
  and ``transition_costs.json``;
* ``validate PATH`` — check a JSONL recording against the event schema;
* ``chrome PATH --out PATH`` — convert a JSONL recording to Chrome
  trace-event format;
* ``report PATH`` — print the leakage / contention / transition-cost /
  slowest-statement summary of a recording.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_record(args) -> int:
    from repro.enclave import CallMode
    from repro.obs.flightrec import get_recorder
    from repro.obs.flightrec.export import write_chrome_trace, write_jsonl
    from repro.obs.flightrec.report import build_report, format_report
    from repro.obs.transition_cost import get_transition_cost_model
    from repro.workloads.tpcc.config import EncryptionMode, TpccConfig
    from repro.workloads.tpcc.driver import build_system, run_multi_client

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    config = TpccConfig(
        warehouses=1,
        districts_per_warehouse=1,
        customers_per_district=args.customers,
        items=20,
        mode=EncryptionMode.RND,
        enclave_threads=2,
        eval_batch_size=args.batch_size,
    )
    print(
        f"building {config.label} system "
        f"(worker_threads={args.workers}, QUEUED gateway) ...",
        flush=True,
    )
    system = build_system(
        config,
        enclave_call_mode=CallMode.QUEUED,
        worker_threads=args.workers,
    )
    recorder = get_recorder()
    # The schema/load phase floods the ring; the recording of interest is
    # the concurrent client run.
    recorder.clear()
    get_transition_cost_model().reset()
    print(
        f"recording {args.clients} clients x {args.txns} transactions ...",
        flush=True,
    )
    result = run_multi_client(
        system, n_clients=args.clients, transactions_per_client=args.txns
    )
    events = recorder.events()
    jsonl_path = out_dir / "flight.jsonl"
    chrome_path = out_dir / "flight.chrome.json"
    costs_path = out_dir / "transition_costs.json"
    n_events = write_jsonl(recorder, jsonl_path)
    n_slices = write_chrome_trace(recorder, chrome_path)
    get_transition_cost_model().save(costs_path)
    print(
        f"ran {result.transactions} transactions in {result.elapsed_s:.2f}s "
        f"({result.throughput:.1f} txn/s)"
    )
    print(f"wrote {jsonl_path} ({n_events} events, {recorder.dropped} dropped)")
    print(f"wrote {chrome_path} ({n_slices} trace events)")
    print(f"wrote {costs_path} "
          f"({get_transition_cost_model().observations} observations)")
    if args.report:
        print()
        print(format_report(build_report(events)))
    return 0


def _cmd_validate(args) -> int:
    from repro.obs.flightrec.export import SchemaError, validate_jsonl

    try:
        count = validate_jsonl(args.path)
    except SchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {args.path} ({count} events, schema valid)")
    return 0


def _cmd_chrome(args) -> int:
    from repro.obs.flightrec.export import (
        read_chrome_trace,
        read_jsonl,
        write_chrome_trace,
    )

    __, events = read_jsonl(args.path)
    count = write_chrome_trace(events, args.out)
    # Round-trip: re-read what we just wrote so a malformed export fails here.
    read_chrome_trace(args.out)
    print(f"wrote {args.out} ({count} trace events, round-trip ok)")
    return 0


def _cmd_report(args) -> int:
    from repro.obs.flightrec.export import read_jsonl
    from repro.obs.flightrec.report import build_report, format_report

    __, events = read_jsonl(args.path)
    print(format_report(build_report(events, top_statements=args.top)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.flightrec",
        description="flight recorder: record / validate / chrome / report",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser("record", help="record a short TPC-C run")
    p_record.add_argument("--out", default="flightrec-out", help="output directory")
    p_record.add_argument("--clients", type=int, default=2)
    p_record.add_argument("--txns", type=int, default=10,
                          help="transactions per client")
    p_record.add_argument("--workers", type=int, default=2,
                          help="statement scheduler worker threads")
    p_record.add_argument("--customers", type=int, default=10,
                          help="customers per district")
    p_record.add_argument("--batch-size", type=int, default=8,
                          help="enclave eval batch size")
    p_record.add_argument("--report", action="store_true",
                          help="print the summary report after recording")
    p_record.set_defaults(fn=_cmd_record)

    p_validate = sub.add_parser("validate", help="validate a JSONL recording")
    p_validate.add_argument("path")
    p_validate.set_defaults(fn=_cmd_validate)

    p_chrome = sub.add_parser("chrome", help="convert JSONL to Chrome trace")
    p_chrome.add_argument("path")
    p_chrome.add_argument("--out", required=True)
    p_chrome.set_defaults(fn=_cmd_chrome)

    p_report = sub.add_parser("report", help="summarize a recording")
    p_report.add_argument("path")
    p_report.add_argument("--top", type=int, default=5,
                          help="slowest statements to show")
    p_report.set_defaults(fn=_cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
