"""The flight recorder: a bounded, thread-safe structured event log.

Every instrumentation point in the stack — spans closing, ecall
observations, lock and latch waits, fault injections, WAL flushes,
scheduler queue events, leakage observations — feeds one process-global
:class:`FlightRecorder`. The recorder is a ring buffer: it never grows
without bound, and eviction is *counted*, never silent.

Event kinds are a closed registry (:data:`EVENT_KINDS`), mirroring the
``ECALL_SURFACE`` pattern: instrumentation may only record declared
kinds, the static analyzer validates every ``record_event("...")``
literal against this registry, and the JSONL schema validator rejects
files carrying undeclared kinds. Kind names follow the same
``component.noun`` convention as metric names (:data:`EVENT_NAME_RE`).

Events carry the emitting thread's :class:`~repro.obs.tracing.TraceContext`
(statement id, session id) when one is active, which is what lets the
exporters parent every ecall and lock-wait under the correct statement —
the cross-thread propagation PR this recorder ships with.

Recording is near-free when disabled: ``recorder.enabled = False`` or
``get_registry().enabled = False`` both reduce :func:`record_event` to an
attribute check and return.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.obs.tracing import Span, TraceContext, get_tracer

#: Shares the metric-name convention: lowercase dot-separated segments.
EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

SCHEMA_NAME = "repro-flightrec"
SCHEMA_VERSION = 1

#: The closed registry of event kinds: name → description. The analyzer's
#: site-metric rule validates every ``record_event`` literal against this
#: map, so an undeclared kind fails ``python -m repro.analysis --strict``
#: before it can fail at runtime.
EVENT_KINDS: dict[str, str] = {
    "stmt.begin": "a statement started executing on the server",
    "stmt.end": "a statement finished (attrs: elapsed_s, rows, ok)",
    "span.end": "a tracer span closed (attrs: name, span_kind, duration_s)",
    "sched.enqueue": "a statement entered the scheduler queue",
    "sched.dispatch": "a scheduler worker picked a statement up",
    "enclave.ecall": "one enclave boundary crossing (attrs: name)",
    "enclave.transition": "measured ecall wall time (attrs: rows, duration_s)",
    "lock.wait": "a txn lock wait ended (attrs: resource, duration_s)",
    "lock.timeout": "a txn lock wait timed out (attrs: resource, duration_s)",
    "latch.wait": "a contended latch acquisition (attrs: latch, level, duration_s)",
    "wal.flush": "the WAL forced to disk (attrs: flushed_lsn)",
    "fault.injected": "an armed fault fired (attrs: site)",
    "leak.det_equality": "adversary-observable DET equality reveal (attrs: column)",
    "leak.rnd_comparison": "adversary-observable RND comparison verdict (attrs: column)",
    "leak.index_touch": "adversary-observable index traversal touch (attrs: column)",
    "anchor.advance": "freshness anchor advanced (attrs: epoch, position, kind)",
    "anchor.verify": "recovery-time freshness check passed (attrs: epoch, anchored_lsn)",
    "anchor.mismatch": "stale restore detected at recovery (attrs: epoch, violations)",
    "rotation.begin": "an online key-lifecycle job started (attrs: rotation_id, job)",
    "rotation.batch": "one rotation batch committed (attrs: rotation_id, rows, watermark)",
    "rotation.resume": "recovery reinstated a mid-flight rotation (attrs: rotation_id, watermark)",
    "rotation.end": "an online key-lifecycle job completed (attrs: rotation_id, rows, version)",
}

DEFAULT_CAPACITY = 65536


class FlightRecorderError(ValueError):
    """Undeclared event kind or malformed recorder input."""


@dataclass
class Event:
    """One recorded event. ``ts_s`` is ``time.perf_counter()`` based, the
    same clock spans use, so span and event timelines interleave exactly."""

    seq: int
    ts_s: float
    kind: str
    thread: str
    trace_id: int | None = None
    statement_id: int | None = None
    session_id: int | None = None
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out: dict = {"seq": self.seq, "ts_s": self.ts_s, "kind": self.kind,
                     "thread": self.thread}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
            out["statement_id"] = self.statement_id
            out["session_id"] = self.session_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        return cls(
            seq=payload["seq"],
            ts_s=payload["ts_s"],
            kind=payload["kind"],
            thread=payload.get("thread", "?"),
            trace_id=payload.get("trace_id"),
            statement_id=payload.get("statement_id"),
            session_id=payload.get("session_id"),
            attrs=dict(payload.get("attrs", {})),
        )


class FlightRecorder:
    """Bounded in-memory event log with drop accounting.

    ``capacity`` bounds memory: the oldest events are evicted when the
    ring fills and ``dropped`` counts them, so a consumer always knows
    whether it is looking at a complete recording.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, registry=None, tracer=None):
        if capacity < 1:
            raise FlightRecorderError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        self._registry = registry or get_registry()
        self._tracer = tracer or get_tracer()
        # The ring holds raw tuples, not Event objects — the record() hot
        # path sits inside every instrumented code path, so it builds one
        # tuple; Event dataclasses materialize only at snapshot time.
        self._events: deque[tuple] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dropped = 0
        # Registry counters are batched: record() tallies plain ints under
        # the ring lock and _sync_counters() (called by every reader)
        # settles them, so the hot path never touches the metric locks.
        self._pending_recorded = 0
        self._pending_dropped = 0
        self._recorded_counter = self._registry.counter(
            "flightrec.events_recorded", help="events accepted by the flight recorder"
        )
        self._dropped_counter = self._registry.counter(
            "flightrec.events_dropped", help="events evicted from the bounded ring"
        )

    # -- state -------------------------------------------------------------

    @property
    def recording(self) -> bool:
        """Both switches must be on: the recorder's own and the registry's
        (so one global kill switch silences metrics *and* events)."""
        return self.enabled and self._registry.enabled

    def clear(self) -> None:
        self._sync_counters()
        with self._lock:
            self._events.clear()
            self.dropped = 0
            self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- recording ---------------------------------------------------------

    def record(self, kind: str, **attrs) -> None:
        """Record one event of a *declared* kind; trace identity is read
        from the calling thread's tracer context."""
        if not (self.enabled and self._registry.enabled):
            return
        if kind not in EVENT_KINDS:
            raise FlightRecorderError(
                f"event kind {kind!r} is not declared in "
                "repro.obs.flightrec.EVENT_KINDS; declare it there (and let "
                "the analyzer validate call sites) before recording it"
            )
        # Inlined current_trace(): this path runs inside every instrumented
        # hot loop, so it reads the tracer's thread-local directly.
        context = getattr(self._tracer._local, "trace", None)
        thread = threading.current_thread().name
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
                self._pending_dropped += 1
            self._seq += 1
            self._pending_recorded += 1
            self._events.append(
                (self._seq, time.perf_counter(), kind, thread, context, attrs)
            )

    def _sync_counters(self) -> None:
        """Settle batched tallies into the registry counters. Called from
        every reader, so exported counts are exact whenever observed."""
        with self._lock:
            recorded, self._pending_recorded = self._pending_recorded, 0
            dropped, self._pending_dropped = self._pending_dropped, 0
        if recorded:
            self._recorded_counter.inc(recorded)
        if dropped:
            self._dropped_counter.inc(dropped)

    def events(self) -> list[Event]:
        """A consistent snapshot of the ring, oldest first."""
        self._sync_counters()
        with self._lock:
            raw = list(self._events)
        return [
            Event(
                seq=seq,
                ts_s=ts_s,
                kind=kind,
                thread=thread,
                trace_id=context.trace_id if context else None,
                statement_id=context.statement_id if context else None,
                session_id=context.session_id if context else None,
                attrs=attrs,
            )
            for seq, ts_s, kind, thread, context, attrs in raw
        ]

    # -- span sink ---------------------------------------------------------

    def _span_sink(self, span: Span, context: TraceContext | None) -> None:
        """Installed on the tracer: every closing span becomes a
        ``span.end`` event (the exporters rebuild complete spans from it).
        ``context`` is already the closing thread's trace, but the event
        re-reads it via ``record`` — same value, one code path."""
        self.record(
            "span.end",
            name=span.name,
            span_kind=span.kind,
            duration_s=span.duration_s,
        )

    def install(self) -> None:
        """Attach the recorder to the tracer's span stream."""
        self._tracer.add_span_sink(self._span_sink)

    def uninstall(self) -> None:
        self._tracer.remove_span_sink(self._span_sink)


# --------------------------------------------------------------------------
# The process-global recorder, installed on the global tracer at import.

_global_recorder = FlightRecorder()
_global_recorder.install()


def get_recorder() -> FlightRecorder:
    """The process-global flight recorder every component records into."""
    return _global_recorder


#: The instrumentation hook: record one event at a *literal* kind. Call
#: sites must pass the kind as a string literal (outside
#: ``repro.obs``/``repro.faults``) — the static analyzer audits every
#: literal against :data:`EVENT_KINDS`, exactly like fault sites. Bound
#: directly to the global recorder's method so the hot path pays no
#: wrapper-call or kwargs re-expansion cost.
record_event = _global_recorder.record
