"""Persistent flight-recorder export: schema-versioned JSONL and Chrome
trace-event JSON (loadable in Perfetto / ``chrome://tracing``).

JSONL layout — one header line, then one event per line::

    {"schema": "repro-flightrec", "version": 1, "events": N, "dropped": D}
    {"seq": 1, "ts_s": ..., "kind": "stmt.begin", "thread": "...", ...}

The Chrome export turns every event with a ``duration_s`` attribute
(closed spans, lock/latch waits, measured transitions) into a complete
``"X"`` slice and everything else into an instant ``"i"`` marker. Slices
are grouped by thread (tid): a statement runs start-to-finish on one
scheduler worker and ecall spans close on that same thread, so Perfetto's
time-nesting parents every ecall and wait slice under its statement span.
Statement and session ids travel in ``args`` on every slice.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.flightrec import (
    EVENT_KINDS,
    EVENT_NAME_RE,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    Event,
    FlightRecorder,
    FlightRecorderError,
)


class SchemaError(FlightRecorderError):
    """A JSONL file that does not conform to the flight-recorder schema."""


def _coerce_events(source) -> tuple[list[Event], int]:
    if isinstance(source, FlightRecorder):
        return source.events(), source.dropped
    return list(source), 0


# -- JSONL ------------------------------------------------------------------

def write_jsonl(source, path: str | Path) -> int:
    """Write the recording to ``path``; returns the event count."""
    events, dropped = _coerce_events(source)
    path = Path(path)
    header = {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "events": len(events),
        "dropped": dropped,
    }
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
    return len(events)


def read_jsonl(path: str | Path) -> tuple[dict, list[Event]]:
    """Load and *validate* a JSONL recording; raises :class:`SchemaError`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise SchemaError(f"{path}: empty file (missing schema header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}:1: unparseable header: {exc}") from exc
    _validate_header(header, path)
    events: list[Event] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}:{lineno}: unparseable event: {exc}") from exc
        _validate_event(payload, path, lineno)
        events.append(Event.from_dict(payload))
    if header["events"] != len(events):
        raise SchemaError(
            f"{path}: header declares {header['events']} events, file has {len(events)}"
        )
    return header, events


def _validate_header(header: dict, path: Path) -> None:
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_NAME:
        raise SchemaError(f"{path}: not a {SCHEMA_NAME} file")
    if header.get("version") != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schema version {header.get('version')!r} != {SCHEMA_VERSION}"
        )
    for key in ("events", "dropped"):
        if not isinstance(header.get(key), int):
            raise SchemaError(f"{path}: header field {key!r} missing or non-integer")


def _validate_event(payload: dict, path: Path, lineno: int) -> None:
    for key, types in (("seq", int), ("ts_s", (int, float)), ("kind", str),
                       ("thread", str)):
        if not isinstance(payload.get(key), types):
            raise SchemaError(f"{path}:{lineno}: event field {key!r} missing/mistyped")
    kind = payload["kind"]
    if not EVENT_NAME_RE.match(kind):
        raise SchemaError(f"{path}:{lineno}: malformed event kind {kind!r}")
    if kind not in EVENT_KINDS:
        raise SchemaError(f"{path}:{lineno}: undeclared event kind {kind!r}")
    attrs = payload.get("attrs", {})
    if not isinstance(attrs, dict):
        raise SchemaError(f"{path}:{lineno}: attrs must be an object")


def validate_jsonl(path: str | Path) -> int:
    """Validate a file against the schema; returns its event count."""
    __, events = read_jsonl(path)
    return len(events)


# -- Chrome trace-event format ---------------------------------------------

_PID = 1


def to_chrome_trace(source) -> dict:
    """Build a Chrome trace-event object (``{"traceEvents": [...]}``)."""
    events, __ = _coerce_events(source)
    trace: list[dict] = []
    tids: dict[str, int] = {}

    def tid_of(thread: str) -> int:
        if thread not in tids:
            tids[thread] = len(tids) + 1
            trace.append({
                "ph": "M", "pid": _PID, "tid": tids[thread],
                "name": "thread_name", "args": {"name": thread},
            })
        return tids[thread]

    trace.append({
        "ph": "M", "pid": _PID, "tid": 0,
        "name": "process_name", "args": {"name": "repro-sql-server"},
    })
    for event in events:
        tid = tid_of(event.thread)
        args: dict = dict(event.attrs)
        if event.statement_id is not None:
            args["statement_id"] = event.statement_id
            args["session_id"] = event.session_id
        duration_s = event.attrs.get("duration_s")
        ts_us = event.ts_s * 1e6
        name = event.attrs.get("name", event.kind)
        if isinstance(duration_s, (int, float)):
            # ts_s stamps the *end* of a timed region (the recording
            # moment); the slice starts duration earlier.
            trace.append({
                "ph": "X", "pid": _PID, "tid": tid,
                "ts": ts_us - duration_s * 1e6, "dur": duration_s * 1e6,
                "name": name, "cat": event.kind, "args": args,
            })
        else:
            trace.append({
                "ph": "i", "pid": _PID, "tid": tid, "ts": ts_us, "s": "t",
                "name": name, "cat": event.kind, "args": args,
            })
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(source, path: str | Path) -> int:
    """Write the Chrome-format trace; returns the traceEvents count."""
    payload = to_chrome_trace(source)
    Path(path).write_text(json.dumps(payload), encoding="utf-8")
    return len(payload["traceEvents"])


def read_chrome_trace(path: str | Path) -> list[dict]:
    """Round-trip loader: parse a Chrome trace file back to its events.

    Validates the structural invariants the exporter guarantees — a
    traceEvents list, known phase codes, numeric timestamps, and
    non-negative durations on complete events.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise SchemaError(f"{path}: not a Chrome trace-event file")
    for i, entry in enumerate(payload["traceEvents"]):
        if entry.get("ph") not in ("X", "i", "M"):
            raise SchemaError(f"{path}: traceEvents[{i}] has unknown phase")
        if entry["ph"] != "M":
            if not isinstance(entry.get("ts"), (int, float)):
                raise SchemaError(f"{path}: traceEvents[{i}] missing ts")
        if entry["ph"] == "X" and entry.get("dur", 0) < 0:
            raise SchemaError(f"{path}: traceEvents[{i}] negative duration")
    return payload["traceEvents"]
