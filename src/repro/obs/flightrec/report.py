"""Summarize a flight recording: the ``flightrec report`` CLI backend.

Four sections, each answering one of the questions the paper's analysis
asks of a run:

* **leakage per column** — how many adversary-observable events each
  encrypted column produced (DET equality reveals, RND comparison
  verdicts, index traversal touches);
* **contention per latch** — cumulative/max wait per latch and per
  declared hierarchy level;
* **transition-cost distribution** — measured ecall wall time bucketed by
  batch size (the batch executor's cost-model input);
* **slowest statements** — the top statement timelines, each statement's
  events in order.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.flightrec import Event

_LEAK_KINDS = {
    "leak.det_equality": "det_equality",
    "leak.rnd_comparison": "rnd_comparison",
    "leak.index_touch": "index_touch",
}


def build_report(events: list[Event], top_statements: int = 5) -> dict:
    leakage: dict[str, dict[str, int]] = defaultdict(
        lambda: {"det_equality": 0, "rnd_comparison": 0, "index_touch": 0}
    )
    latches: dict[str, dict] = {}
    lock_waits = {"waits": 0, "timeouts": 0, "total_s": 0.0, "max_s": 0.0}
    transitions: dict[int, dict] = {}
    statements: dict[int, dict] = {}
    by_statement: dict[int, list[Event]] = defaultdict(list)

    for event in events:
        if event.statement_id is not None:
            by_statement[event.statement_id].append(event)
        if event.kind in _LEAK_KINDS:
            column = str(event.attrs.get("column", "<unlabelled>"))
            leakage[column][_LEAK_KINDS[event.kind]] += int(
                event.attrs.get("count", 1)
            )
        elif event.kind == "latch.wait":
            key = str(event.attrs.get("latch", "<unknown>"))
            entry = latches.setdefault(
                key,
                {"level": event.attrs.get("level"), "waits": 0,
                 "total_s": 0.0, "max_s": 0.0},
            )
            wait = float(event.attrs.get("duration_s", 0.0))
            entry["waits"] += 1
            entry["total_s"] += wait
            entry["max_s"] = max(entry["max_s"], wait)
        elif event.kind in ("lock.wait", "lock.timeout"):
            wait = float(event.attrs.get("duration_s", 0.0))
            lock_waits["waits"] += 1
            if event.kind == "lock.timeout":
                lock_waits["timeouts"] += 1
            lock_waits["total_s"] += wait
            lock_waits["max_s"] = max(lock_waits["max_s"], wait)
        elif event.kind == "enclave.transition":
            rows = int(event.attrs.get("rows", 1))
            bucket = transitions.setdefault(
                _bucket(rows), {"calls": 0, "total_s": 0.0, "max_s": 0.0}
            )
            wall = float(event.attrs.get("duration_s", 0.0))
            bucket["calls"] += 1
            bucket["total_s"] += wall
            bucket["max_s"] = max(bucket["max_s"], wall)
        elif event.kind == "stmt.end":
            assert event.statement_id is not None
            statements[event.statement_id] = {
                "statement_id": event.statement_id,
                "session_id": event.session_id,
                "elapsed_s": float(event.attrs.get("elapsed_s", 0.0)),
                "query": event.attrs.get("query", ""),
                "rows": event.attrs.get("rows", 0),
            }

    slowest = sorted(
        statements.values(), key=lambda s: s["elapsed_s"], reverse=True
    )[:top_statements]
    for entry in slowest:
        entry["timeline"] = [
            {"kind": ev.kind, "ts_s": ev.ts_s, "thread": ev.thread,
             "attrs": ev.attrs}
            for ev in sorted(
                by_statement[entry["statement_id"]], key=lambda e: (e.ts_s, e.seq)
            )
        ]
    return {
        "events": len(events),
        "statements": len(statements),
        "leakage_per_column": {k: dict(v) for k, v in sorted(leakage.items())},
        "latch_contention": dict(sorted(latches.items())),
        "lock_waits": lock_waits,
        "transition_costs": dict(sorted(transitions.items())),
        "slowest_statements": slowest,
    }


def _bucket(rows: int) -> int:
    """Power-of-two batch-size bucket (1, 2, 4, ... capped at 512)."""
    bucket = 1
    while bucket < rows and bucket < 512:
        bucket *= 2
    return bucket


def format_report(report: dict) -> str:
    lines = [
        "FLIGHT RECORDER REPORT",
        f"  events: {report['events']}   statements: {report['statements']}",
        "",
        "leakage per column (adversary-observable events):",
    ]
    if report["leakage_per_column"]:
        for column, counts in report["leakage_per_column"].items():
            lines.append(
                f"  {column:<32} det_equality={counts['det_equality']:<8} "
                f"rnd_comparison={counts['rnd_comparison']:<8} "
                f"index_touch={counts['index_touch']}"
            )
    else:
        lines.append("  (none observed)")
    lines += ["", "latch contention (per latch, declared-order level):"]
    if report["latch_contention"]:
        for latch, entry in report["latch_contention"].items():
            level = entry["level"] if entry["level"] is not None else "?"
            lines.append(
                f"  L{level:<3} {latch:<56} waits={entry['waits']:<6} "
                f"total={entry['total_s'] * 1000:.3f}ms "
                f"max={entry['max_s'] * 1000:.3f}ms"
            )
    else:
        lines.append("  (no contended latch acquisitions)")
    locks = report["lock_waits"]
    lines.append(
        f"  txn locks: waits={locks['waits']} timeouts={locks['timeouts']} "
        f"total={locks['total_s'] * 1000:.3f}ms max={locks['max_s'] * 1000:.3f}ms"
    )
    lines += ["", "transition-cost distribution (ecall wall time by batch size):"]
    if report["transition_costs"]:
        for bucket, entry in report["transition_costs"].items():
            mean_us = entry["total_s"] / entry["calls"] * 1e6
            lines.append(
                f"  rows<={bucket:<4} calls={entry['calls']:<7} "
                f"mean={mean_us:.1f}us max={entry['max_s'] * 1e6:.1f}us"
            )
    else:
        lines.append("  (no measured transitions)")
    lines += ["", "slowest statements:"]
    if report["slowest_statements"]:
        for entry in report["slowest_statements"]:
            query = str(entry["query"])[:60]
            lines.append(
                f"  #{entry['statement_id']} (session {entry['session_id']}) "
                f"{entry['elapsed_s'] * 1000:.3f}ms rows={entry['rows']}  {query}"
            )
            start = entry["timeline"][0]["ts_s"] if entry["timeline"] else 0.0
            for item in entry["timeline"][:20]:
                offset_ms = (item["ts_s"] - start) * 1000
                detail = item["attrs"].get("name") or item["attrs"].get(
                    "latch") or item["attrs"].get("resource") or ""
                lines.append(
                    f"    +{offset_ms:8.3f}ms {item['kind']:<20} "
                    f"[{item['thread']}] {detail}"
                )
            if len(entry["timeline"]) > 20:
                lines.append(
                    f"    ... {len(entry['timeline']) - 20} more events"
                )
    else:
        lines.append("  (no statements recorded)")
    return "\n".join(lines)
