"""Zero-dependency telemetry: metrics registry, span tracer, QueryStats.

Three pillars (see ``docs/OBSERVABILITY.md``):

* :class:`MetricsRegistry` — process-global named counters, gauges, and
  fixed-bucket histograms with JSON and Prometheus-text exposition;
* :class:`Tracer` — context-manager spans forming per-query trees, with a
  dedicated ``enclave.ecall`` span kind for boundary transitions;
* :class:`QueryStats` — the per-statement cost facade the engine attaches
  to every result, plus the ``EXPLAIN STATS`` pretty-printer.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricKind,
    MetricsRegistry,
    StatsView,
    get_registry,
    snapshot_from_json,
    snapshot_from_prometheus_text,
    validate_metric_name,
)
from repro.obs.querystats import (
    DriverStatsCollector,
    QueryStats,
    QueryStatsCollector,
    format_explain_stats,
)
from repro.obs.tracing import ECALL, OPERATOR, STATEMENT, Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "DriverStatsCollector",
    "ECALL",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricKind",
    "MetricsRegistry",
    "OPERATOR",
    "QueryStats",
    "QueryStatsCollector",
    "STATEMENT",
    "Span",
    "StatsView",
    "Tracer",
    "format_explain_stats",
    "get_registry",
    "get_tracer",
    "snapshot_from_json",
    "snapshot_from_prometheus_text",
    "validate_metric_name",
]
