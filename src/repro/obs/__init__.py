"""Zero-dependency telemetry: metrics registry, span tracer, QueryStats,
and the flight recorder.

Pillars (see ``docs/OBSERVABILITY.md``):

* :class:`MetricsRegistry` — process-global named counters, gauges, and
  fixed-bucket histograms with JSON and Prometheus-text exposition;
* :class:`Tracer` — context-manager spans forming per-query trees, with a
  dedicated ``enclave.ecall`` span kind for boundary transitions and
  cross-thread propagation via :meth:`Tracer.capture`/:meth:`Tracer.adopt`;
* :class:`QueryStats` — the per-statement cost facade the engine attaches
  to every result, plus the ``EXPLAIN STATS`` / ``EXPLAIN ANALYZE``
  pretty-printers;
* :mod:`repro.obs.flightrec` — the bounded structured event log every
  instrumentation point feeds, with JSONL and Chrome-trace export;
* :mod:`repro.obs.latchprof` — latch-contention profiling against the
  declared lock hierarchy;
* :mod:`repro.obs.leakage` — per-column accounting of adversary-observable
  events.
"""

from repro.obs.flightrec import (
    EVENT_KINDS,
    FlightRecorder,
    FlightRecorderError,
    get_recorder,
    record_event,
)
from repro.obs.latchprof import LatchProfiler, TimedLatch, get_latch_profiler
from repro.obs.leakage import LeakageAccountant, get_leakage_accountant, record_leak
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricKind,
    MetricsRegistry,
    StatsView,
    get_registry,
    snapshot_from_json,
    snapshot_from_prometheus_text,
    validate_metric_name,
)
from repro.obs.querystats import (
    DriverStatsCollector,
    QueryStats,
    QueryStatsCollector,
    format_explain_analyze,
    format_explain_stats,
)
from repro.obs.tracing import (
    ECALL,
    OPERATOR,
    STATEMENT,
    CapturedTrace,
    Span,
    TraceContext,
    TraceOrphanError,
    Tracer,
    get_tracer,
)
from repro.obs.transition_cost import TransitionCostModel, get_transition_cost_model

__all__ = [
    "CapturedTrace",
    "Counter",
    "DriverStatsCollector",
    "ECALL",
    "EVENT_KINDS",
    "FlightRecorder",
    "FlightRecorderError",
    "Gauge",
    "Histogram",
    "LatchProfiler",
    "LeakageAccountant",
    "MetricError",
    "MetricKind",
    "MetricsRegistry",
    "OPERATOR",
    "QueryStats",
    "QueryStatsCollector",
    "STATEMENT",
    "Span",
    "StatsView",
    "TimedLatch",
    "TraceContext",
    "TraceOrphanError",
    "Tracer",
    "TransitionCostModel",
    "format_explain_analyze",
    "format_explain_stats",
    "get_latch_profiler",
    "get_leakage_accountant",
    "get_recorder",
    "get_registry",
    "get_tracer",
    "get_transition_cost_model",
    "record_event",
    "record_leak",
    "snapshot_from_json",
    "snapshot_from_prometheus_text",
    "validate_metric_name",
]
