"""Leakage accounting: per-column counters of adversary-observable events.

The paper's Figure 5 analysis treats leakage qualitatively (which ecalls
reveal what); "Information Flows in Encrypted Databases" argues leakage
should be an *accountable quantity*. This module makes it one: every
adversary-observable event is attributed to the column whose data it
reveals something about —

* ``det_equality`` — a DET ciphertext byte comparison (equality classes
  of the column become visible wherever its ciphertexts are ordered);
* ``rnd_comparison`` — an RND comparison verdict returned in the clear
  by the enclave (ordering leakage of range processing);
* ``index_touch`` — a B+-tree node touched during a descent over the
  column's index (access-pattern leakage).

Counts are global per (column, kind); every observation also lands in
the flight recorder as a ``leak.*`` event carrying the active statement
identity, so a recording answers "which statement leaked what about
which column".
"""

from __future__ import annotations

import threading

from repro.obs.flightrec import record_event
from repro.obs.metrics import get_registry

#: Accountable leakage kinds → the flight-recorder event they emit.
LEAK_KINDS: dict[str, str] = {
    "det_equality": "leak.det_equality",
    "rnd_comparison": "leak.rnd_comparison",
    "index_touch": "leak.index_touch",
}

#: Label used when instrumentation cannot name the column (e.g. an
#: ad-hoc comparator outside any table schema).
UNLABELLED = "<unlabelled>"


class LeakageAccountant:
    """Per-(column, kind) counts of adversary-observable events."""

    def __init__(self, registry=None):
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, str], int] = {}
        self._total = self._registry.counter(
            "leakage.events_observed",
            help="adversary-observable events attributed to columns",
        )

    def record(self, column: str | None, kind: str, count: int = 1) -> None:
        if kind not in LEAK_KINDS:
            raise ValueError(
                f"unknown leakage kind {kind!r}; declared: {sorted(LEAK_KINDS)}"
            )
        if count <= 0 or not self._registry.enabled:
            return
        column = column or UNLABELLED
        with self._lock:
            key = (column, kind)
            self._counts[key] = self._counts.get(key, 0) + count
        self._total.inc(count)
        record_event(LEAK_KINDS[kind], column=column, count=count)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """``{column: {kind: count}}`` with zero-count kinds omitted."""
        with self._lock:
            items = dict(self._counts)
        out: dict[str, dict[str, int]] = {}
        for (column, kind), count in sorted(items.items()):
            out.setdefault(column, {})[kind] = count
        return out

    def total(self, column: str | None = None) -> int:
        with self._lock:
            return sum(
                count
                for (col, __), count in self._counts.items()
                if column is None or col == column
            )

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


_global_accountant = LeakageAccountant()


def get_leakage_accountant() -> LeakageAccountant:
    """The process-global accountant comparators and indexes report into."""
    return _global_accountant


def record_leak(column: str | None, kind: str, count: int = 1) -> None:
    """Module-level hook used by comparators and the B+-tree."""
    _global_accountant.record(column, kind, count)
