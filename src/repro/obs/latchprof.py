"""Latch-contention profiling over the declared lock hierarchy.

The repo declares a total lock order (``DEFAULT_LOCK_ORDER`` in
:mod:`repro.analysis.config`) that the static analyzer enforces — but
until now nothing measured *contention* along it: which level threads
actually queue on, for how long, attributed to which statement. This
module adds that:

* :class:`TimedLatch` — a drop-in reentrant latch for the storage-layer
  ``_latch``/``_lock`` attributes. Uncontended acquisition is one extra
  non-blocking ``acquire`` attempt; only contended acquisitions measure
  and report their wait.
* :class:`LatchProfiler` — per-level and per-latch cumulative/max wait
  accounting. Waits also feed per-level *counters* (``latch.l07_waits``,
  ``latch.l07_wait_seconds``), which is what routes them through the
  active :class:`~repro.obs.metrics.AttributionContext` into the waiting
  statement's :class:`~repro.obs.querystats.QueryStats` — per-statement
  contention in ``EXPLAIN STATS`` without any per-statement plumbing.

Every contended wait is also a ``latch.wait`` flight-recorder event, so
recordings show contention on the timeline next to the statement spans.
"""

from __future__ import annotations

import threading
import time
from fnmatch import fnmatch

from repro.analysis.config import DEFAULT_LOCK_ORDER
from repro.obs.metrics import get_registry


class LatchProfiler:
    """Attributes latch waits to levels of the declared lock order."""

    def __init__(self, levels: tuple[str, ...] = DEFAULT_LOCK_ORDER, registry=None):
        self.levels = levels
        self._registry = registry or get_registry()
        self._lock = threading.Lock()
        self._level_cache: dict[str, int] = {}
        #: latch id -> {"level", "waits", "total_s", "max_s"}
        self._stats: dict[str, dict] = {}
        self._total_waits = self._registry.counter(
            "latch.waits", help="contended latch acquisitions"
        )
        self._total_seconds = self._registry.counter(
            "latch.wait_seconds", help="cumulative time blocked on latches"
        )

    def level_of(self, latch_id: str) -> int:
        """Index of the first declared pattern matching ``latch_id``
        (``len(levels)`` when undeclared — below every declared level)."""
        cached = self._level_cache.get(latch_id)
        if cached is not None:
            return cached
        level = len(self.levels)
        for i, pattern in enumerate(self.levels):
            if fnmatch(latch_id, pattern):
                level = i
                break
        with self._lock:
            self._level_cache[latch_id] = level
        return level

    def record_wait(self, latch_id: str, wait_s: float) -> None:
        """Account one contended wait on ``latch_id``."""
        if not self._registry.enabled:
            return
        level = self.level_of(latch_id)
        with self._lock:
            entry = self._stats.setdefault(
                latch_id,
                {"level": level, "waits": 0, "total_s": 0.0, "max_s": 0.0},
            )
            entry["waits"] += 1
            entry["total_s"] += wait_s
            entry["max_s"] = max(entry["max_s"], wait_s)
        self._total_waits.inc()
        self._total_seconds.inc(wait_s)
        # Per-level counters carry the wait into the active statement's
        # attribution context; registration is lazy and get-or-create.
        self._registry.counter(f"latch.l{level:02d}_waits").inc()
        self._registry.counter(f"latch.l{level:02d}_wait_seconds").inc(wait_s)
        # Imported here, not at module top: flightrec pulls in the tracer,
        # and keeping the profiler importable from storage modules first
        # avoids ordering surprises during interpreter start-up.
        from repro.obs.flightrec import record_event

        record_event(
            "latch.wait", latch=latch_id, level=level, duration_s=wait_s
        )

    def snapshot(self) -> dict[str, dict]:
        """Per-latch stats (copy), keyed by latch id."""
        with self._lock:
            return {latch: dict(entry) for latch, entry in self._stats.items()}

    def by_level(self) -> dict[int, dict]:
        """Aggregate the per-latch stats up to hierarchy levels."""
        out: dict[int, dict] = {}
        for latch, entry in self.snapshot().items():
            level = entry["level"]
            agg = out.setdefault(
                level,
                {
                    "pattern": (
                        self.levels[level]
                        if level < len(self.levels)
                        else "<undeclared>"
                    ),
                    "waits": 0,
                    "total_s": 0.0,
                    "max_s": 0.0,
                    "latches": [],
                },
            )
            agg["waits"] += entry["waits"]
            agg["total_s"] += entry["total_s"]
            agg["max_s"] = max(agg["max_s"], entry["max_s"])
            agg["latches"].append(latch)
        return dict(sorted(out.items()))

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()


class TimedLatch:
    """A reentrant latch that reports contended waits to the profiler.

    ``name`` is the latch's fully-qualified id (``module.Class.attr``),
    matched against the declared lock order exactly like the static
    analyzer matches lock identities — the runtime and static views of
    the hierarchy use the same names.
    """

    __slots__ = ("name", "_inner", "_profiler")

    def __init__(self, name: str, profiler: "LatchProfiler | None" = None):
        self.name = name
        self._inner = threading.RLock()
        self._profiler = profiler or get_latch_profiler()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # Fast path: uncontended (or reentrant) acquisition measures nothing.
        if self._inner.acquire(blocking=False):
            return True
        if not blocking:
            return False
        started = time.perf_counter()
        acquired = self._inner.acquire(timeout=timeout)
        self._profiler.record_wait(self.name, time.perf_counter() - started)
        return acquired

    def release(self) -> None:
        self._inner.release()

    def __enter__(self) -> "TimedLatch":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TimedLatch({self.name!r})"


_global_profiler = LatchProfiler()


def get_latch_profiler() -> LatchProfiler:
    """The process-global latch profiler."""
    return _global_profiler
