"""Per-statement execution statistics.

The engine attaches a :class:`QueryStats` to every statement result: the
registry deltas accumulated while the statement ran, plus (when tracing is
on) the statement's span tree. This is the repro's ``SET STATISTICS``
equivalent — and the measurement substrate the paper's claims are checked
against: ecalls per query (Section 4.6), pages touched per index seek over
ciphertext (Section 3.1.2), and driver cache effectiveness (Section 4.1).

The collector works by pushing a thread-local :class:`AttributionContext`
onto the registry for the duration of the statement: every counter
increment made by the executing thread (and by enclave-gateway worker
threads acting on its behalf, which adopt the context) is also added into
the context. Concurrent statements therefore read back exactly their own
counts instead of folding into each other's deltas — the fix the
threaded regression test in ``tests/obs/test_querystats_concurrent.py``
pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import AttributionContext, MetricsRegistry, get_registry
from repro.obs.tracing import ECALL, Span

# Counter names diffed into QueryStats. Keys are QueryStats field names.
_SERVER_DELTA_FIELDS: dict[str, str] = {
    "ecalls": "enclave.ecalls",
    "enclave_evals": "enclave.evals",
    "enclave_eval_batches": "enclave.eval_batches",
    "enclave_batched_rows": "enclave.batched_rows",
    "enclave_comparisons": "enclave.comparisons",
    "boundary_transitions": "worker.boundary_transitions",
    "rows_scanned": "executor.rows_scanned",
    "index_node_visits": "index.nodes_visited",
    "page_hits": "bufferpool.page_hits",
    "page_misses": "bufferpool.page_misses",
    "pages_evicted": "bufferpool.pages_evicted",
    "wal_records": "wal.records_appended",
    "wal_bytes": "wal.bytes_written",
    "lock_waits": "locks.waits",
    "latch_waits": "latch.waits",
    "latch_wait_seconds": "latch.wait_seconds",
    "plan_cache_hits": "server.plan_cache_hits",
    "faults_injected": "faults.injected",
}

#: Per-level latch counters (``latch.l07_wait_seconds``) are dynamic —
#: one pair per contended hierarchy level — so they are harvested from
#: the context snapshot by prefix instead of a fixed field map.
_LATCH_LEVEL_PREFIX = "latch.l"

_DRIVER_DELTA_FIELDS: dict[str, str] = {
    "cek_cache_hits": "driver.cek_cache_hits",
    "cek_cache_misses": "driver.cek_cache_misses",
    "describe_roundtrips": "driver.describe_roundtrips",
    "retries": "driver.retries",
}


@dataclass
class QueryStats:
    """What one statement cost, in the units the paper argues in."""

    query_text: str = ""
    plan_info: str = ""
    elapsed_s: float = 0.0
    rows_returned: int = 0

    # Trace identity (filled by the server; 0 = not assigned).
    statement_id: int = 0
    session_id: int = 0

    # Server-side registry deltas.
    ecalls: int = 0
    enclave_evals: int = 0
    enclave_eval_batches: int = 0
    enclave_batched_rows: int = 0
    enclave_comparisons: int = 0
    boundary_transitions: int = 0
    rows_scanned: int = 0
    index_node_visits: int = 0
    page_hits: int = 0
    page_misses: int = 0
    pages_evicted: int = 0
    wal_records: int = 0
    wal_bytes: int = 0
    lock_waits: int = 0
    latch_waits: int = 0
    latch_wait_seconds: float = 0.0
    plan_cache_hits: int = 0
    faults_injected: int = 0

    #: Per-hierarchy-level latch waits this statement caused:
    #: ``{"latch.l07_waits": 2, "latch.l07_wait_seconds": 0.003, ...}``.
    latch_level_waits: dict[str, int | float] = field(default_factory=dict)

    # Driver-side registry deltas (filled by the client driver).
    cek_cache_hits: int = 0
    cek_cache_misses: int = 0
    describe_roundtrips: int = 0
    retries: int = 0

    # The statement's span tree when tracing was enabled.
    root_span: Span | None = None

    @property
    def pages_read(self) -> int:
        """Pages touched through the buffer pool (hits + misses)."""
        return self.page_hits + self.page_misses

    @property
    def ecall_spans(self) -> int:
        """Boundary-crossing spans in the trace (0 when tracing is off)."""
        if self.root_span is None:
            return 0
        return self.root_span.count(ECALL)

    def as_dict(self) -> dict:
        out = {
            "query_text": self.query_text,
            "plan_info": self.plan_info,
            "elapsed_s": self.elapsed_s,
            "rows_returned": self.rows_returned,
            "pages_read": self.pages_read,
        }
        for attr in (*_SERVER_DELTA_FIELDS, *_DRIVER_DELTA_FIELDS):
            out[attr] = getattr(self, attr)
        return out


class QueryStatsCollector:
    """Context-based collector wrapped around one statement execution.

    Construction pushes an attribution context onto the calling thread;
    :meth:`finish` (success path) or :meth:`cancel` (exception path) pops
    it. The collector must be created on the same thread that executes
    the statement.
    """

    def __init__(self, registry: MetricsRegistry | None = None, query_text: str = ""):
        self.registry = registry or get_registry()
        self.query_text = query_text
        self._ctx = self.registry.push_context(AttributionContext())

    def cancel(self) -> None:
        """Pop the context without building stats (statement failed)."""
        self.registry.pop_context(self._ctx)

    def finish(
        self,
        elapsed_s: float | None = None,
        rows_returned: int = 0,
        plan_info: str = "",
        root_span: Span | None = None,
    ) -> QueryStats:
        self.registry.pop_context(self._ctx)
        if root_span is not None and root_span.end_s is None:
            # The disabled-tracer null span (never finished): drop it.
            root_span = None
        if elapsed_s is None:
            elapsed_s = root_span.duration_s if root_span is not None else 0.0
        stats = QueryStats(
            query_text=self.query_text,
            plan_info=plan_info,
            elapsed_s=elapsed_s,
            rows_returned=rows_returned,
            root_span=root_span,
        )
        for attr, name in _SERVER_DELTA_FIELDS.items():
            setattr(stats, attr, self._ctx.value(name))
        stats.latch_level_waits = {
            name: value
            for name, value in self._ctx.snapshot().items()
            if name.startswith(_LATCH_LEVEL_PREFIX)
        }
        return stats


class DriverStatsCollector:
    """The driver-side half: cache and round-trip counts around execute()."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or get_registry()
        self._ctx = self.registry.push_context(AttributionContext())

    def cancel(self) -> None:
        self.registry.pop_context(self._ctx)

    def apply(self, stats: QueryStats | None) -> None:
        self.registry.pop_context(self._ctx)
        if stats is None:
            return
        for attr, name in _DRIVER_DELTA_FIELDS.items():
            setattr(stats, attr, self._ctx.value(name))


def format_explain_stats(stats: QueryStats) -> str:
    """The ``EXPLAIN STATS`` pretty-printer: one statement's cost profile."""
    rows = [
        ("query", stats.query_text or "<unknown>"),
        ("plan", stats.plan_info or "<n/a>"),
        ("elapsed_ms", f"{stats.elapsed_s * 1000:.3f}"),
        ("rows_returned", stats.rows_returned),
        ("rows_scanned", stats.rows_scanned),
        ("pages_read", stats.pages_read),
        ("  page_hits", stats.page_hits),
        ("  page_misses", stats.page_misses),
        ("pages_evicted", stats.pages_evicted),
        ("index_node_visits", stats.index_node_visits),
        ("wal_records", stats.wal_records),
        ("wal_bytes", stats.wal_bytes),
        ("ecalls", stats.ecalls),
        ("  enclave_evals", stats.enclave_evals),
        ("  enclave_eval_batches", stats.enclave_eval_batches),
        ("  enclave_batched_rows", stats.enclave_batched_rows),
        ("  enclave_comparisons", stats.enclave_comparisons),
        ("boundary_transitions", stats.boundary_transitions),
        ("lock_waits", stats.lock_waits),
        ("latch_waits", stats.latch_waits),
        ("latch_wait_ms", f"{stats.latch_wait_seconds * 1000:.3f}"),
        ("plan_cache_hits", stats.plan_cache_hits),
        ("faults_injected", stats.faults_injected),
        ("cek_cache_hits", stats.cek_cache_hits),
        ("cek_cache_misses", stats.cek_cache_misses),
        ("describe_roundtrips", stats.describe_roundtrips),
        ("retries", stats.retries),
    ]
    for name in sorted(stats.latch_level_waits):
        if name.endswith("_waits") and stats.latch_level_waits[name]:
            seconds = stats.latch_level_waits.get(
                name.replace("_waits", "_wait_seconds"), 0.0
            )
            rows.append(
                (f"  {name}", f"{stats.latch_level_waits[name]} "
                              f"({seconds * 1000:.3f}ms)")
            )
    width = max(len(str(label)) for label, __ in rows)
    lines = ["EXPLAIN STATS"]
    lines += [f"  {str(label).ljust(width)}  {value}" for label, value in rows]
    if stats.root_span is not None:
        lines.append("  span tree:")
        for line in stats.root_span.format_tree().splitlines():
            lines.append("    " + line)
    return "\n".join(lines)


def format_explain_analyze(stats: QueryStats) -> str:
    """The ``EXPLAIN ANALYZE`` timeline view: the statement's span tree as
    a waterfall (offset from statement start, duration, self-evident
    nesting) plus its contention profile — where this statement waited.
    """
    lines = [
        "EXPLAIN ANALYZE",
        f"  statement #{stats.statement_id} (session {stats.session_id})  "
        f"{stats.elapsed_s * 1000:.3f}ms  rows={stats.rows_returned}",
        f"  query: {stats.query_text or '<unknown>'}",
    ]
    root = stats.root_span
    if root is not None:
        lines.append("  timeline:")

        def walk(span, depth: int) -> None:
            offset_ms = (span.start_s - root.start_s) * 1000
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(
                f"    +{offset_ms:9.3f}ms {'  ' * depth}{span.name} "
                f"({span.kind}) {span.duration_s * 1000:.3f}ms{attrs}"
            )
            for child in span.children:
                walk(child, depth + 1)
            if span.dropped_children:
                lines.append(
                    f"    {'  ' * (depth + 1)}... {span.dropped_children} "
                    "more spans (capped)"
                )

        walk(root, 0)
    else:
        lines.append("  timeline: <tracing disabled>")
    lines.append("  waits:")
    lines.append(
        f"    lock_waits={stats.lock_waits}  latch_waits={stats.latch_waits}  "
        f"latch_wait_ms={stats.latch_wait_seconds * 1000:.3f}"
    )
    for name in sorted(stats.latch_level_waits):
        if name.endswith("_waits") and stats.latch_level_waits[name]:
            seconds = stats.latch_level_waits.get(
                name.replace("_waits", "_wait_seconds"), 0.0
            )
            lines.append(
                f"    {name}={stats.latch_level_waits[name]} "
                f"({seconds * 1000:.3f}ms)"
            )
    lines.append(
        f"  enclave: ecalls={stats.ecalls} "
        f"transitions={stats.boundary_transitions} "
        f"batched_rows={stats.enclave_batched_rows}"
    )
    return "\n".join(lines)
