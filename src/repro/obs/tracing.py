"""Query-scoped span traces.

A span is one timed region of work (a statement, an operator, an enclave
crossing) with attributes and optional captured metric deltas. Spans nest
through a thread-local stack, so instrumented code never threads a context
object around:

    with tracer.span("exec.index_seek", table="T") as span:
        ...

The dedicated :data:`ECALL` span kind makes enclave boundary transitions
first-class in every query's trace — the quantity Section 4.6 of the
paper optimizes and the one every perf PR here must report.

Spans with no enclosing parent are returned to the caller but retained
nowhere, so tracing a hot loop without an active statement trace cannot
leak memory. Child lists are capped (:data:`MAX_CHILDREN_PER_SPAN`); the
overflow is *counted*, never silently dropped.

Cross-thread propagation: a statement executing on a scheduler worker (or
shipping work to the QUEUED enclave gateway) establishes a
:class:`TraceContext`; submitting code calls :meth:`Tracer.capture` and
the receiving thread wraps the work in :meth:`Tracer.adopt`, so spans and
flight-recorder events emitted on the worker parent under the submitting
statement's trace instead of silently rooting a fresh one. With
``tracer.strict`` set (tests), an adopted thread opening a span with no
inherited context raises :class:`TraceOrphanError` — the loud failure
mode for broken propagation.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

# Span kinds. Plain strings so instrumentation can invent operator kinds
# freely; ECALL is special-cased by QueryStats and the pretty-printer.
INTERNAL = "internal"
STATEMENT = "statement"
OPERATOR = "operator"
ECALL = "enclave.ecall"

MAX_CHILDREN_PER_SPAN = 512

# Guards cross-thread child attachment: gateway/scheduler workers append
# children onto a span owned by the (blocked) submitting thread.
_CHILD_LOCK = threading.Lock()


class TraceOrphanError(RuntimeError):
    """A worker-thread span had no adopted trace context (strict mode)."""


@dataclass(frozen=True)
class TraceContext:
    """Identity of the statement a trace belongs to.

    ``trace_id`` currently equals ``statement_id`` (one trace per
    statement); they are separate fields so multi-statement traces can
    exist later without a schema change.
    """

    trace_id: int
    statement_id: int
    session_id: int = 0


@dataclass(frozen=True)
class CapturedTrace:
    """What :meth:`Tracer.capture` snapshots for hand-off to a worker."""

    context: TraceContext | None = None
    parent: "Span | None" = None

    @property
    def empty(self) -> bool:
        return self.context is None and self.parent is None


#: Shared empty capture so hot submit paths allocate nothing.
EMPTY_CAPTURE = CapturedTrace()


@dataclass
class Span:
    """One timed region; ``metrics`` holds captured registry deltas."""

    name: str
    kind: str = INTERNAL
    attrs: dict = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float | None = None
    children: list["Span"] = field(default_factory=list)
    dropped_children: int = 0
    metrics: dict[str, int | float] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def add_child(self, child: "Span") -> None:
        # Adopted parents receive children from whichever worker thread is
        # doing the statement's work; the submitter is blocked meanwhile,
        # but gateway and scheduler workers can interleave, so attachment
        # is serialized.
        with _CHILD_LOCK:
            if len(self.children) >= MAX_CHILDREN_PER_SPAN:
                self.dropped_children += 1
                return
            self.children.append(child)

    def count(self, kind: str | None = None) -> int:
        """Spans in this subtree (excluding self), optionally by kind."""
        total = 0
        for child in self.children:
            if kind is None or child.kind == kind:
                total += 1
            total += child.count(kind)
        return total

    def format_tree(self, indent: int = 0) -> str:
        pad = "  " * indent
        attrs = ""
        if self.attrs:
            attrs = " " + " ".join(f"{k}={v}" for k, v in self.attrs.items())
        deltas = ""
        if self.metrics:
            deltas = " [" + " ".join(f"{k}={v}" for k, v in sorted(self.metrics.items())) + "]"
        line = f"{pad}{self.name} ({self.kind}) {self.duration_s * 1000:.3f}ms{attrs}{deltas}"
        lines = [line]
        for child in self.children:
            lines.append(child.format_tree(indent + 1))
        if self.dropped_children:
            lines.append(f"{pad}  ... {self.dropped_children} more spans (capped)")
        return "\n".join(lines)


class _SpanContext:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_capture", "_baseline", "_parent")

    def __init__(self, tracer: "Tracer", span: Span, capture: tuple[str, ...]):
        self._tracer = tracer
        self._span = span
        self._capture = capture
        self._baseline: dict[str, int | float] = {}
        self._parent: Span | None = None

    def __enter__(self) -> Span:
        registry = self._tracer.registry
        for name in self._capture:
            self._baseline[name] = registry.value(name)
        self._span.start_s = time.perf_counter()
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        span.end_s = time.perf_counter()
        registry = self._tracer.registry
        for name, base in self._baseline.items():
            span.metrics[name] = registry.value(name) - base
        stack = self._tracer._stack()
        # Pop this span plus anything still stacked above it: a generator
        # suspended at a yield inside a span never runs its __exit__ when
        # an exception unwinds past it in the *consumer*, so an ancestor
        # exiting must sweep those abandoned descendants or the
        # thread-local stack leaks for the life of the thread.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                del stack[i:]
                break
        if self._parent is not None:
            self._parent.add_child(span)
        tracer = self._tracer
        if tracer._sinks:
            context = tracer.current_trace()
            for sink in tuple(tracer._sinks):
                sink(span, context)


class _NullSpanContext:
    """Returned when tracing is disabled: one shared, do-nothing object."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = Span(name="disabled", kind=INTERNAL)
_NULL_CONTEXT = _NullSpanContext()


class Tracer:
    """Produces nested spans; one instance is process-global (:func:`get_tracer`)."""

    def __init__(self, registry: MetricsRegistry | None = None, enabled: bool = True):
        self.enabled = enabled
        #: Fail loudly when an adopted worker thread opens a span with no
        #: inherited trace context or parent (tests flip this on).
        self.strict = False
        self.registry = registry or get_registry()
        self._local = threading.local()
        #: Span sinks: callables ``(span, trace_context)`` invoked when a
        #: span closes — how the flight recorder sees spans without the
        #: tracer importing it (that would be a cycle).
        self._sinks: list = []
        # Histogram of ecall span durations — boundary-crossing latency is
        # a first-class observable, not just a count.
        self._ecall_hist: Histogram | None = None

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- trace-context propagation ----------------------------------------

    def current_trace(self) -> TraceContext | None:
        """The trace context active on the calling thread, if any."""
        return getattr(self._local, "trace", None)

    @contextlib.contextmanager
    def trace(self, context: TraceContext):
        """Establish ``context`` as the thread's trace for the duration."""
        previous = getattr(self._local, "trace", None)
        self._local.trace = context
        try:
            yield context
        finally:
            self._local.trace = previous

    def capture(self) -> CapturedTrace:
        """Snapshot the calling thread's trace state for worker hand-off."""
        context = self.current_trace()
        parent = self.current()
        if context is None and parent is None:
            return EMPTY_CAPTURE
        return CapturedTrace(context=context, parent=parent)

    @contextlib.contextmanager
    def adopt(self, captured: CapturedTrace):
        """Run the body under a captured trace on a *different* thread.

        The captured parent span (if any) is pushed onto this thread's
        stack so spans opened here nest under it; it is popped — without
        re-attaching, it belongs to the submitter's stack — at exit. Safe
        because the submitting thread blocks on the work's completion
        while its span is open.
        """
        local = self._local
        previous_trace = getattr(local, "trace", None)
        previously_adopted = getattr(local, "adopted", False)
        local.trace = captured.context
        local.adopted = True
        stack = self._stack()
        pushed = captured.parent is not None
        if pushed:
            stack.append(captured.parent)
        try:
            yield
        finally:
            if pushed:
                # Pop the foreign parent plus any spans abandoned above it
                # (same sweep rationale as _SpanContext.__exit__).
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is captured.parent:
                        del stack[i:]
                        break
            local.trace = previous_trace
            local.adopted = previously_adopted

    # -- span sinks --------------------------------------------------------

    def add_span_sink(self, sink) -> None:
        """``sink(span, trace_context)`` is called at every span close."""
        if sink not in self._sinks:
            self._sinks.append(sink)

    def remove_span_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def span(
        self,
        name: str,
        kind: str = INTERNAL,
        capture: tuple[str, ...] = (),
        **attrs,
    ) -> _SpanContext | _NullSpanContext:
        """Open a span. ``capture`` names registry metrics whose deltas are
        recorded on the span at exit."""
        if not self.enabled:
            return _NULL_CONTEXT
        if (
            self.strict
            and getattr(self._local, "adopted", False)
            and self.current() is None
            and self.current_trace() is None
        ):
            raise TraceOrphanError(
                f"span {name!r} opened on an adopted worker thread with no "
                "trace context or parent span — the submitting side failed "
                "to capture/propagate its trace"
            )
        return _SpanContext(self, Span(name=name, kind=kind, attrs=attrs), capture)

    def ecall_span(self, name: str, **attrs) -> _SpanContext | _NullSpanContext:
        """A span for one enclave boundary crossing."""
        return self.span(name, kind=ECALL, **attrs)


_global_tracer = Tracer()


def get_tracer() -> Tracer:
    return _global_tracer
