"""Experiment runners that regenerate the paper's Figures 8 and 9.

The pipeline per DESIGN.md Section 5:

1. **Calibrate** — run the real TPC-C mix single-stream on our engine for
   each configuration, measuring per-transaction wall time (= service
   demand), enclave CPU seconds (from the enclave's own accounting), and
   client↔server round-trips (from the driver's accounting).
2. **Model** — feed the demands into the closed queueing network
   (:mod:`repro.harness.perfmodel`) with the paper's hardware parameters
   (20 server cores; 1 or 4 enclave threads).
3. **Report** — normalized throughput exactly as the figures plot it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.harness.perfmodel import (
    ModelConfig,
    NormalizedFigure,
    ServiceDemands,
    sweep,
)
from repro.workloads.tpcc.config import TRANSACTION_MIX, EncryptionMode, TpccConfig
from repro.workloads.tpcc.driver import TpccSystem, build_system

FIGURE8_CLIENTS = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


@dataclass
class Calibration:
    """Measured per-transaction demands for one configuration."""

    label: str
    wall_s_per_txn: float
    enclave_s_per_txn: float
    roundtrips_per_txn: float
    transactions_run: int

    def demands(self) -> ServiceDemands:
        return ServiceDemands(
            label=self.label,
            host_cpu_s=max(self.wall_s_per_txn - self.enclave_s_per_txn, 1e-9),
            enclave_cpu_s=self.enclave_s_per_txn,
            roundtrips=self.roundtrips_per_txn,
        )


def calibrate_system(system: TpccSystem, n_transactions: int = 60) -> Calibration:
    """Run the standard mix single-stream and extract demands."""
    txns = system.transactions
    # Warm up caches (plan cache; describe cache only if enabled; CEK cache).
    txns.run_mix(10, TRANSACTION_MIX)

    rt_before = system.connection.stats.total_roundtrips
    enclave_before = system.enclave.counters.cpu_seconds if system.enclave else 0.0
    start = time.perf_counter()
    txns.run_mix(n_transactions, TRANSACTION_MIX)
    wall = time.perf_counter() - start
    rt_after = system.connection.stats.total_roundtrips
    enclave_after = system.enclave.counters.cpu_seconds if system.enclave else 0.0

    return Calibration(
        label=system.config.label,
        wall_s_per_txn=wall / n_transactions,
        enclave_s_per_txn=(enclave_after - enclave_before) / n_transactions,
        roundtrips_per_txn=(rt_after - rt_before) / n_transactions,
        transactions_run=n_transactions,
    )


@dataclass
class TpccScale:
    """Reduced calibration scale (the model maps it to the W=800 setting)."""

    warehouses: int = 1
    districts_per_warehouse: int = 2
    customers_per_district: int = 30
    items: int = 50


def _config(mode: EncryptionMode, scale: TpccScale, enclave_threads: int = 4) -> TpccConfig:
    return TpccConfig(
        warehouses=scale.warehouses,
        districts_per_warehouse=scale.districts_per_warehouse,
        customers_per_district=scale.customers_per_district,
        items=scale.items,
        mode=mode,
        enclave_threads=enclave_threads,
    )


@dataclass
class Figure8Result:
    figure: NormalizedFigure
    calibrations: dict[str, Calibration] = field(default_factory=dict)

    def print_rows(self) -> str:
        labels = [c.label for c in self.figure.curves]
        lines = ["clients  " + "  ".join(f"{label:>16s}" for label in labels)]
        for row in self.figure.rows():
            clients, *values = row
            lines.append(
                f"{clients:7d}  " + "  ".join(f"{v:16.3f}" for v in values)
            )
        return "\n".join(lines)


def run_figure8(
    scale: TpccScale | None = None,
    model: ModelConfig | None = None,
    n_transactions: int = 60,
    client_counts: list[int] | None = None,
) -> Figure8Result:
    """Figure 8: normalized throughput vs client threads for SQL-PT,
    SQL-PT-AEConn, and SQL-AE (RND, 4 enclave threads)."""
    scale = scale or TpccScale()
    model = model or ModelConfig()
    clients = client_counts or FIGURE8_CLIENTS

    calibrations: dict[str, Calibration] = {}
    curves = []
    for mode in (EncryptionMode.PLAINTEXT, EncryptionMode.PLAINTEXT_AECONN, EncryptionMode.RND):
        system = build_system(_config(mode, scale))
        calibration = calibrate_system(system, n_transactions)
        calibrations[calibration.label] = calibration
        curves.append(sweep(calibration.demands(), model, clients))
    figure = NormalizedFigure(curves=curves, baseline_label="SQL-PT")
    return Figure8Result(figure=figure, calibrations=calibrations)


@dataclass
class Figure9Result:
    """Normalized throughput at 100 clients for the four AE configurations."""

    normalized: dict[str, float]
    calibrations: dict[str, Calibration]
    enclave_vs_det_gap: float  # (DET - RND4) / DET, the paper's 12.3%

    def print_rows(self) -> str:
        lines = [f"{'configuration':>16s}  normalized"]
        for label, value in self.normalized.items():
            lines.append(f"{label:>16s}  {value:10.3f}")
        lines.append(
            f"enclave (RND-4) vs DET gap: {self.enclave_vs_det_gap * 100:.1f}% "
            "(paper: 12.3%)"
        )
        return "\n".join(lines)


def run_figure9(
    scale: TpccScale | None = None,
    model: ModelConfig | None = None,
    n_transactions: int = 60,
    clients: int = 100,
) -> Figure9Result:
    """Figure 9: SQL-PT-AEConn vs SQL-AE-DET vs SQL-AE-RND-1 vs SQL-AE-RND-4
    at 100 client threads (plus SQL-PT for normalization)."""
    scale = scale or TpccScale()
    model = model or ModelConfig()

    calibrations: dict[str, Calibration] = {}

    def measure(mode: EncryptionMode, threads: int = 4) -> Calibration:
        system = build_system(_config(mode, scale, enclave_threads=threads))
        calibration = calibrate_system(system, n_transactions)
        calibrations[calibration.label] = calibration
        return calibration

    pt = measure(EncryptionMode.PLAINTEXT)
    aeconn = measure(EncryptionMode.PLAINTEXT_AECONN)
    det = measure(EncryptionMode.DET)
    rnd = measure(EncryptionMode.RND)  # same demands serve RND-1 and RND-4

    from repro.harness.perfmodel import solve_throughput

    pt_peak = solve_throughput(pt.demands(), model, clients)
    results = {
        "SQL-PT": 1.0,
        "SQL-PT-AEConn": solve_throughput(aeconn.demands(), model, clients) / pt_peak,
        "SQL-AE-DET": solve_throughput(det.demands(), model, clients) / pt_peak,
        "SQL-AE-RND-1": solve_throughput(
            rnd.demands(), ModelConfig(model.server_cores, 1, model.rtt_s, model.client_think_s), clients
        ) / pt_peak,
        "SQL-AE-RND-4": solve_throughput(
            rnd.demands(), ModelConfig(model.server_cores, 4, model.rtt_s, model.client_think_s), clients
        ) / pt_peak,
    }
    det_x = results["SQL-AE-DET"]
    gap = (det_x - results["SQL-AE-RND-4"]) / det_x if det_x else 0.0
    return Figure9Result(normalized=results, calibrations=calibrations, enclave_vs_det_gap=gap)
