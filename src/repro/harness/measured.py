"""Measured multi-client Figure 8: real threads, real locks, real enclave.

The modeled Figure 8 (:mod:`repro.harness.experiments`) calibrates
single-stream service demands and solves a queueing network, because pure
Python under the GIL cannot natively exhibit 100-thread concurrency. This
module produces the *measured* companion: N real client threads, each
with its own driver connection, driving the standard TPC-C mix through
the concurrent session layer (bounded worker pool, two-phase locking,
shared plan cache, shared enclave sessions).

To make measured scaling meaningful despite the GIL, each driver
round-trip sleeps ``simulated_rtt_s`` (an in-datacenter RTT), restoring
the regime the paper measures in: a single client is RTT-bound, so
additional clients overlap their network waits and throughput rises until
the (GIL-serialized) server CPU saturates. The same RTT is fed to the
queueing model, so the modeled and measured curves are directly
comparable — EXPERIMENTS.md overlays them.

The run doubles as a concurrency-correctness gate: after the largest
client count, the TPC-C invariants
(:mod:`repro.workloads.tpcc.invariants`) are checked at quiesce, so a
lost update or index torn by concurrency fails the benchmark rather than
silently skewing the curve.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.experiments import TpccScale, _config, calibrate_system
from repro.harness.perfmodel import ModelConfig, solve_throughput
from repro.workloads.tpcc.config import TRANSACTION_MIX, EncryptionMode
from repro.workloads.tpcc.driver import build_system, run_multi_client
from repro.workloads.tpcc.invariants import check_invariants

#: Real-thread client counts. The paper sweeps 10–100 Benchcraft threads;
#: real Python threads are meaningful up to the teens, past which the GIL
#: serializes everything and adds only scheduling noise.
MEASURED_CLIENT_COUNTS = (1, 2, 4, 8, 16)

#: Simulated in-datacenter RTT per driver round-trip. Large against the
#: per-statement CPU cost at small scale, so the single-client stream is
#: network-bound exactly as in the paper's setup.
MEASURED_RTT_S = 0.002

MEASURED_MODES = (
    EncryptionMode.PLAINTEXT,
    EncryptionMode.PLAINTEXT_AECONN,
    EncryptionMode.RND,
)


@dataclass
class MeasuredCurve:
    """Measured throughput for one configuration across client counts."""

    label: str
    clients: list[int]
    throughput: list[float]          # txn/s, wall-clock measured
    modeled: list[float]             # txn/s from the queueing model
    transactions: list[int]          # committed+rolled-back per point
    rollbacks: list[int]
    invariant_violations: list[str] = field(default_factory=list)

    def at(self, n: int) -> float:
        return self.throughput[self.clients.index(n)]


@dataclass
class Figure8MeasuredResult:
    rtt_s: float
    worker_threads: int
    transactions_per_client: int
    curves: list[MeasuredCurve]

    def curve(self, label: str) -> MeasuredCurve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(label)

    def normalized(self) -> dict[str, list[float]]:
        """Each curve normalized to SQL-PT's peak, as Figure 8 plots."""
        peak = max(self.curve("SQL-PT").throughput)
        return {
            curve.label: [t / peak for t in curve.throughput]
            for curve in self.curves
        }

    def print_rows(self) -> str:
        labels = [c.label for c in self.curves]
        lines = [
            "clients  "
            + "  ".join(f"{label:>16s}" for label in labels)
            + "  (measured txn/s; modeled in parens)"
        ]
        counts = self.curves[0].clients
        for i, n in enumerate(counts):
            cells = [
                f"{c.throughput[i]:7.1f} ({c.modeled[i]:6.1f})"
                for c in self.curves
            ]
            lines.append(f"{n:7d}  " + "  ".join(f"{cell:>16s}" for cell in cells))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "figure": "8-measured",
            "rtt_s": self.rtt_s,
            "worker_threads": self.worker_threads,
            "transactions_per_client": self.transactions_per_client,
            "normalized": self.normalized(),
            "curves": [
                {
                    "label": c.label,
                    "clients": c.clients,
                    "throughput_txn_s": c.throughput,
                    "modeled_txn_s": c.modeled,
                    "transactions": c.transactions,
                    "rollbacks": c.rollbacks,
                    "invariant_violations": c.invariant_violations,
                }
                for c in self.curves
            ],
        }


def run_figure8_measured(
    scale: TpccScale | None = None,
    client_counts: tuple[int, ...] = MEASURED_CLIENT_COUNTS,
    transactions_per_client: int = 16,
    rtt_s: float = MEASURED_RTT_S,
    worker_threads: int = 16,
    lock_timeout_s: float = 0.15,
    output_path: Path | str | None = None,
) -> Figure8MeasuredResult:
    """Measure TPC-C throughput with real concurrent clients per mode.

    For each of SQL-PT / SQL-PT-AEConn / SQL-AE-RND-4: build one system,
    warm its caches, then for each client count spawn that many real
    client threads (each with its own connection and simulated RTT) and
    measure wall-clock throughput. After the largest count the TPC-C
    invariants are audited at quiesce. The queueing model is solved with
    ``server_cores=1`` (the GIL) and the same RTT, giving the modeled
    curve the measured one should track in shape.
    """
    scale = scale or TpccScale(
        warehouses=8, districts_per_warehouse=2, customers_per_district=15, items=40
    )
    curves: list[MeasuredCurve] = []
    for mode in MEASURED_MODES:
        config = _config(mode, scale)
        # A short lock timeout keeps deadlock victims cheap: under real
        # contention a victim rolls back and retries in ~lock_timeout_s
        # instead of stalling the whole curve for the default 5 s.
        system = build_system(
            config, worker_threads=worker_threads, lock_timeout_s=lock_timeout_s
        )
        # Warm the plan cache / CEK cache / enclave sessions before timing.
        system.transactions.run_mix(8, TRANSACTION_MIX)

        calibration = calibrate_system(system, n_transactions=20)
        model = ModelConfig(
            server_cores=1,                    # the GIL is one core
            enclave_threads=config.enclave_threads,
            rtt_s=rtt_s,
        )
        demands = calibration.demands()

        throughput: list[float] = []
        modeled: list[float] = []
        transactions: list[int] = []
        rollbacks: list[int] = []
        for n in client_counts:
            result = run_multi_client(
                system,
                n_clients=n,
                transactions_per_client=transactions_per_client,
                simulated_rtt_s=rtt_s,
                seed=5000 + n,
            )
            throughput.append(result.throughput)
            modeled.append(solve_throughput(demands, model, n))
            transactions.append(result.transactions)
            rollbacks.append(
                sum(client.counts.rollbacks for client in result.clients)
            )
        violations = check_invariants(system)
        curves.append(
            MeasuredCurve(
                label=config.label,
                clients=list(client_counts),
                throughput=throughput,
                modeled=modeled,
                transactions=transactions,
                rollbacks=rollbacks,
                invariant_violations=violations,
            )
        )

    result = Figure8MeasuredResult(
        rtt_s=rtt_s,
        worker_threads=worker_threads,
        transactions_per_client=transactions_per_client,
        curves=curves,
    )
    if output_path is not None:
        path = Path(output_path)
        path.write_text(json.dumps(result.to_json(), indent=2, sort_keys=True))
    return result


__all__ = [
    "MEASURED_CLIENT_COUNTS",
    "MEASURED_RTT_S",
    "MeasuredCurve",
    "Figure8MeasuredResult",
    "run_figure8_measured",
]
