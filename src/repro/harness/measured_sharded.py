"""Measured sharded Figure 8: breaking the single-process ceiling.

The measured Figure 8 (:mod:`repro.harness.measured`) tops out where one
Python process tops out: with every shard of work behind one GIL, adding
clients past CPU saturation adds nothing. This module measures the same
multi-client TPC-C mix against the *sharded* deployment
(:mod:`repro.workloads.tpcc.sharded`): N engine shards as separate OS
processes behind the router process, the unmodified AE driver speaking
the binary wire protocol to one address.

The sweep keeps the single-process run's mix, per-round-trip RTT and
per-client transaction budget, with two deliberate differences:

* **Warehouses scale with the peak client count** (16), TPC-C's own
  scaling rule (one home warehouse per terminal). At the single-process
  run's 8 warehouses, 16 clients pair up two-per-warehouse and Payment's
  exclusive warehouse-row lock serializes each pair — the wire lengthens
  every lock-hold window by two hops, so the 8-warehouse sharded mix
  measures lock-convoy collapse, not deployment scaling. One warehouse
  per client removes cross-client contention from *both* systems being
  compared; the same scale is used for the same-host in-process
  reference measured alongside.
* **Shards run statements inline on their connection threads**
  (``worker_threads=0``). The bounded worker pool exists to cap
  concurrency *inside one shared process*; a shard process already has
  exactly one connection thread per client it serves, and hopping each
  statement through submit→worker→reply-wakeup adds three thread
  switches per statement — measurably slower at every shard count.

Whether sharding can *exceed* the in-process ceiling is a property of
the host, so the result records the host topology and a same-host
in-process reference. In-process execution saturates one core with zero
wire overhead; N shard processes need N cores to show parallel speedup.
On a multi-core host (≥4 effective CPUs) the ≥4-shard curve must clear
the in-process 16-client number by 1.5x; on a single-core host that is
arithmetically impossible for *any* multi-process design — every frame
costs CPU the in-process build does not spend — and the honest claim
becomes a bounded wire tax: the 4-shard deployment must stay within a
small factor of the same-host in-process ceiling. Both numbers ship in
``BENCH_figure8_sharded.json`` so the curve is interpretable wherever
it was produced.

Clients are pinned to home warehouses round-robin, so every shard serves
an equal slice of the client population (the partitioned-OLTP regime the
paper's TPC-C configuration assumes; cross-shard 2PC is exercised by
``tests/net/test_2pc_torture.py``, not the steady-state mix). After the
largest client count, every shard's TPC-C invariants are audited at
quiesce over the wire — a lost update on any shard fails the benchmark
rather than flattering the curve.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.experiments import TpccScale, _config
from repro.harness.measured import MEASURED_CLIENT_COUNTS, MEASURED_RTT_S
from repro.workloads.tpcc.config import TRANSACTION_MIX, EncryptionMode
from repro.workloads.tpcc.driver import build_system, run_multi_client
from repro.workloads.tpcc.invariants import check_invariants
from repro.workloads.tpcc.sharded import start_sharded_system, wait_for_quiesce

#: Shard-process counts swept by the benchmark. 1 shard isolates the pure
#: wire/router overhead against the in-process baseline; 8 shards is past
#: the point where the client process or router becomes the bottleneck.
SHARD_COUNTS = (1, 2, 4, 8)

#: Worker threads per shard process. 0 = execute inline on the shard's
#: connection threads: each shard already has one thread per client
#: connection, and the submit→worker→reply chain costs three thread
#: wakeups per statement. The pool only pays for itself when many
#: sessions share one process — exactly what sharding removes.
SHARD_WORKER_THREADS = 0

#: Home warehouses at the peak client count: one per client (TPC-C's
#: terminal-per-warehouse scaling rule). See the module docstring.
SHARDED_WAREHOUSES = 16


def default_sharded_scale() -> TpccScale:
    """The sweep's scale: one home warehouse per peak client."""
    return TpccScale(
        warehouses=SHARDED_WAREHOUSES,
        districts_per_warehouse=2,
        customers_per_district=15,
        items=40,
    )


def host_info() -> dict:
    """CPU topology the curve was measured on — scaling depends on it."""
    try:
        effective = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        effective = os.cpu_count() or 1
    cpu_max = None
    try:
        cpu_max = Path("/sys/fs/cgroup/cpu.max").read_text().strip()
    except OSError:
        pass
    return {
        "cpu_count": os.cpu_count(),
        "effective_cpus": effective,
        "cgroup_cpu_max": cpu_max,
    }


@dataclass
class ShardedCurve:
    """Measured throughput for one shard count across client counts."""

    n_shards: int
    clients: list[int]
    throughput: list[float]          # txn/s, wall-clock measured
    transactions: list[int]
    rollbacks: list[int]
    invariant_violations: list[str] = field(default_factory=list)
    mode: str = "SQL-PT"

    def at(self, n: int) -> float:
        return self.throughput[self.clients.index(n)]

    def to_json(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "mode": self.mode,
            "clients": self.clients,
            "throughput_txn_s": self.throughput,
            "transactions": self.transactions,
            "rollbacks": self.rollbacks,
            "invariant_violations": self.invariant_violations,
        }


@dataclass
class Figure8ShardedResult:
    rtt_s: float
    worker_threads_per_shard: int
    transactions_per_client: int
    mode: str
    inprocess_baseline_txn_s: float | None   # archived artifact, 16 clients
    curves: list[ShardedCurve]
    host: dict = field(default_factory=host_info)
    inprocess_same_host_txn_s: float | None = None  # measured this run
    ae_curves: list[ShardedCurve] = field(default_factory=list)

    @property
    def scaling_gate_applicable(self) -> bool:
        """Can N processes beat one? Only with cores to run them on."""
        return (self.host.get("effective_cpus") or 1) >= 4

    def curve(self, n_shards: int) -> ShardedCurve:
        for curve in self.curves:
            if curve.n_shards == n_shards:
                return curve
        raise KeyError(n_shards)

    def speedup_over_inprocess(self, n_shards: int, n_clients: int) -> float | None:
        if not self.inprocess_baseline_txn_s:
            return None
        return self.curve(n_shards).at(n_clients) / self.inprocess_baseline_txn_s

    def wire_tax(self, n_shards: int, n_clients: int) -> float | None:
        """Sharded throughput over the *same-host* in-process ceiling."""
        if not self.inprocess_same_host_txn_s:
            return None
        return self.curve(n_shards).at(n_clients) / self.inprocess_same_host_txn_s

    def print_rows(self) -> str:
        lines = [
            "clients  "
            + "  ".join(f"{c.n_shards:>2d} shard(s)" for c in self.curves)
            + "  (measured txn/s)"
        ]
        counts = self.curves[0].clients
        for i, n in enumerate(counts):
            cells = [f"{c.throughput[i]:10.1f}" for c in self.curves]
            lines.append(f"{n:7d}  " + "  ".join(cells))
        if self.inprocess_same_host_txn_s:
            lines.append(
                f"same-host in-process 16-client ceiling: "
                f"{self.inprocess_same_host_txn_s:.1f} txn/s"
            )
        if self.inprocess_baseline_txn_s:
            lines.append(
                f"archived in-process 16-client baseline: "
                f"{self.inprocess_baseline_txn_s:.1f} txn/s"
            )
        lines.append(
            f"host: {self.host.get('effective_cpus')} effective CPU(s) "
            f"(scaling gate {'applies' if self.scaling_gate_applicable else 'off'})"
        )
        for curve in self.ae_curves:
            pts = ", ".join(
                f"{n} cl: {t:.1f}" for n, t in zip(curve.clients, curve.throughput)
            )
            lines.append(f"AE ({curve.mode}) {curve.n_shards} shard(s): {pts}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "figure": "8-sharded",
            "mode": self.mode,
            "rtt_s": self.rtt_s,
            "worker_threads_per_shard": self.worker_threads_per_shard,
            "transactions_per_client": self.transactions_per_client,
            "host": self.host,
            "scaling_gate_applicable": self.scaling_gate_applicable,
            "inprocess_baseline_txn_s": self.inprocess_baseline_txn_s,
            "inprocess_same_host_txn_s": self.inprocess_same_host_txn_s,
            "speedup_over_inprocess_at_16": {
                str(c.n_shards): self.speedup_over_inprocess(c.n_shards, 16)
                for c in self.curves
                if 16 in c.clients
            },
            "wire_tax_at_16": {
                str(c.n_shards): self.wire_tax(c.n_shards, 16)
                for c in self.curves
                if 16 in c.clients
            },
            "curves": [c.to_json() for c in self.curves],
            "ae_curves": [c.to_json() for c in self.ae_curves],
        }


def _load_inprocess_baseline(path: Path | None) -> float | None:
    """PT 16-client txn/s from ``BENCH_figure8_measured.json``, if present."""
    if path is None or not path.exists():
        return None
    data = json.loads(path.read_text())
    for curve in data.get("curves", ()):
        if curve.get("label") == "SQL-PT":
            clients = curve["clients"]
            if 16 in clients:
                return curve["throughput_txn_s"][clients.index(16)]
    return None


def measure_inprocess_reference(
    scale: TpccScale,
    n_clients: int = 16,
    transactions_per_client: int = 16,
    rtt_s: float = MEASURED_RTT_S,
    lock_timeout_s: float = 0.15,
) -> float:
    """Same-host, same-scale in-process PT ceiling for the wire-tax ratio.

    Re-measured in the same run (rather than read from the archived
    artifact) because the ceiling is a property of the host executing the
    benchmark: comparing a sharded curve measured here against an
    in-process number measured on different hardware says nothing.
    """
    config = _config(EncryptionMode.PLAINTEXT, scale)
    system = build_system(config, worker_threads=16, lock_timeout_s=lock_timeout_s)
    try:
        system.transactions.run_mix(8, TRANSACTION_MIX)
        result = run_multi_client(
            system,
            n_clients=n_clients,
            transactions_per_client=transactions_per_client,
            simulated_rtt_s=rtt_s,
            seed=5000 + n_clients,
        )
        violations = check_invariants(system)
        if violations:
            raise AssertionError(
                f"in-process reference violated invariants: {violations}"
            )
        return result.throughput
    finally:
        # Drain the reference system's worker threads: leaving 16 parked
        # workers in this process skews every measurement taken after it.
        system.server.scheduler.shutdown()


def _measure_one_shard_count(
    n_shards: int,
    scale: TpccScale,
    client_counts: tuple[int, ...],
    transactions_per_client: int,
    rtt_s: float,
    worker_threads: int,
    lock_timeout_s: float,
    mode: EncryptionMode = EncryptionMode.PLAINTEXT,
) -> ShardedCurve:
    config = _config(mode, scale)
    system = start_sharded_system(
        config,
        n_shards=n_shards,
        worker_threads=worker_threads,
        lock_timeout_s=lock_timeout_s,
    )
    try:
        # Warm every shard's plan cache with one pinned client per shard
        # (seeds 0..n-1 map to warehouses 1..n, which round-robin onto
        # shards 0..n-1) so the timed window measures steady state.
        for shard_idx in range(n_shards):
            system.new_client(seed=shard_idx).run_mix(4, TRANSACTION_MIX)

        throughput: list[float] = []
        transactions: list[int] = []
        rollbacks: list[int] = []
        for n in client_counts:
            result = run_multi_client(
                system,
                n_clients=n,
                transactions_per_client=transactions_per_client,
                simulated_rtt_s=rtt_s,
                seed=5000 + n,
            )
            throughput.append(result.throughput)
            transactions.append(result.transactions)
            rollbacks.append(
                sum(client.counts.rollbacks for client in result.clients)
            )
        wait_for_quiesce(system)
        violations = system.audit()
        return ShardedCurve(
            n_shards=n_shards,
            clients=list(client_counts),
            throughput=throughput,
            transactions=transactions,
            rollbacks=rollbacks,
            invariant_violations=violations,
            mode=config.label,
        )
    finally:
        system.shutdown()


def run_figure8_sharded(
    scale: TpccScale | None = None,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    client_counts: tuple[int, ...] = MEASURED_CLIENT_COUNTS,
    transactions_per_client: int = 16,
    rtt_s: float = MEASURED_RTT_S,
    worker_threads: int = SHARD_WORKER_THREADS,
    lock_timeout_s: float = 0.15,
    baseline_path: Path | str | None = None,
    output_path: Path | str | None = None,
    measure_inprocess: bool = True,
    ae_shard_counts: tuple[int, ...] = (1, 4),
    ae_client_counts: tuple[int, ...] = (1, 16),
) -> Figure8ShardedResult:
    """Measure multi-process sharded TPC-C throughput per shard count.

    For each shard count: fork that many shard processes plus the router
    process, load the standard scale through the router, warm every
    shard, then sweep real client threads exactly as the single-process
    measured Figure 8 does (same RTT, same per-client budget, same
    seeds). Shards execute statements in parallel OS processes, so on a
    host with cores for them the curve keeps rising where the single
    process flattened; on a single-core host the result instead bounds
    the wire tax against a same-host in-process reference. A smaller AE
    (RND) sweep rides along so the encrypted configuration's sharded
    behavior is published next to plaintext's.
    """
    scale = scale or default_sharded_scale()
    curves = [
        _measure_one_shard_count(
            n_shards,
            scale,
            client_counts,
            transactions_per_client,
            rtt_s,
            worker_threads,
            lock_timeout_s,
        )
        for n_shards in shard_counts
    ]
    ae_curves = [
        _measure_one_shard_count(
            n_shards,
            scale,
            ae_client_counts,
            transactions_per_client,
            rtt_s,
            worker_threads,
            lock_timeout_s,
            mode=EncryptionMode.RND,
        )
        for n_shards in ae_shard_counts
    ]
    # Measured LAST: the reference builds a full engine in *this* process,
    # and its thread pool must never coexist with a sharded measurement.
    inprocess_same_host = (
        measure_inprocess_reference(
            scale,
            transactions_per_client=transactions_per_client,
            rtt_s=rtt_s,
            lock_timeout_s=lock_timeout_s,
        )
        if measure_inprocess
        else None
    )
    result = Figure8ShardedResult(
        rtt_s=rtt_s,
        worker_threads_per_shard=worker_threads,
        transactions_per_client=transactions_per_client,
        mode="SQL-PT",
        inprocess_baseline_txn_s=_load_inprocess_baseline(
            Path(baseline_path) if baseline_path is not None else None
        ),
        curves=curves,
        inprocess_same_host_txn_s=inprocess_same_host,
        ae_curves=ae_curves,
    )
    if output_path is not None:
        path = Path(output_path)
        path.write_text(json.dumps(result.to_json(), indent=2, sort_keys=True))
    return result


__all__ = [
    "SHARD_COUNTS",
    "SHARD_WORKER_THREADS",
    "SHARDED_WAREHOUSES",
    "ShardedCurve",
    "Figure8ShardedResult",
    "default_sharded_scale",
    "host_info",
    "measure_inprocess_reference",
    "run_figure8_sharded",
]
