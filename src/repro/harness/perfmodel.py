"""The calibrated closed queueing-network model behind Figures 8 and 9.

Why a model (see DESIGN.md): the paper runs on a 20-core Azure VM with 100
concurrent Benchcraft threads; pure Python under the GIL cannot exhibit
that concurrency natively. What our engine *can* produce faithfully is the
per-transaction **service demand** of each configuration — real parsing,
real crypto, real enclave evaluation — and the per-transaction round-trip
count of each connection mode. Those calibrated demands feed a classic
closed queueing network solved with approximate Mean Value Analysis:

* a **server CPU** center with ``server_cores`` servers (the DS15 v2's 20),
* an **enclave** center with ``enclave_threads`` servers (1 or 4 — the
  SQL-AE-RND-1 / SQL-AE-RND-4 distinction), present only for RND configs,
* a **network delay** center: round-trips per transaction × RTT (AE
  connections pay the extra ``sp_describe_parameter_encryption`` trip).

Multi-server centers use Seidmann's approximation (a c-server center of
demand D ≈ a single-server center of demand D/c plus a delay of
D·(c−1)/c), which is standard and accurate for these populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServiceDemands:
    """Calibrated per-transaction demands for one configuration."""

    label: str
    host_cpu_s: float              # server CPU seconds per transaction
    enclave_cpu_s: float = 0.0     # enclave CPU seconds per transaction
    roundtrips: float = 0.0        # client↔server round-trips per transaction


@dataclass(frozen=True)
class ModelConfig:
    """Hardware / network parameters (paper defaults)."""

    server_cores: int = 20
    enclave_threads: int = 4
    rtt_s: float = 0.0005          # in-datacenter round-trip
    client_think_s: float = 0.0    # Benchcraft issues back-to-back


@dataclass
class _Center:
    demand: float                  # per-visit total demand (single-server equiv.)
    fixed_delay: float = 0.0       # Seidmann residual + any pure delay
    queue: float = 0.0             # MVA state


def _seidmann(demand: float, servers: int) -> tuple[float, float]:
    """(queueing demand, fixed delay) for a c-server center."""
    if servers <= 1:
        return demand, 0.0
    return demand / servers, demand * (servers - 1) / servers


def solve_throughput(
    demands: ServiceDemands, model: ModelConfig, clients: int
) -> float:
    """Closed-network throughput (txn/s) for ``clients`` concurrent threads."""
    centers: list[_Center] = []
    delay = model.client_think_s + demands.roundtrips * model.rtt_s

    cpu_demand, cpu_extra = _seidmann(demands.host_cpu_s, model.server_cores)
    centers.append(_Center(demand=cpu_demand))
    delay += cpu_extra

    if demands.enclave_cpu_s > 0:
        enclave_demand, enclave_extra = _seidmann(
            demands.enclave_cpu_s, model.enclave_threads
        )
        centers.append(_Center(demand=enclave_demand))
        delay += enclave_extra

    # Exact MVA over queueing centers + one delay center.
    throughput = 0.0
    for n in range(1, clients + 1):
        residence = delay
        for center in centers:
            center_r = center.demand * (1.0 + center.queue)
            residence += center_r
        throughput = n / residence if residence > 0 else float("inf")
        for center in centers:
            center.queue = throughput * center.demand * (1.0 + center.queue)
    return throughput


@dataclass
class ThroughputCurve:
    """X(N) for one configuration, plus normalization support."""

    label: str
    clients: list[int]
    throughput: list[float]

    def at(self, n: int) -> float:
        return self.throughput[self.clients.index(n)]

    def max_throughput(self) -> float:
        return max(self.throughput)


def sweep(
    demands: ServiceDemands,
    model: ModelConfig,
    client_counts: list[int],
) -> ThroughputCurve:
    """Throughput across client-thread counts (the Figure 8 x-axis)."""
    return ThroughputCurve(
        label=demands.label,
        clients=list(client_counts),
        throughput=[solve_throughput(demands, model, n) for n in client_counts],
    )


@dataclass
class NormalizedFigure:
    """A set of curves normalized to a baseline's maximum (as the paper's
    Figures 8 and 9 are)."""

    curves: list[ThroughputCurve]
    baseline_label: str
    normalized: dict[str, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        baseline = next(c for c in self.curves if c.label == self.baseline_label)
        peak = baseline.max_throughput()
        for curve in self.curves:
            self.normalized[curve.label] = [x / peak for x in curve.throughput]

    def rows(self) -> list[tuple]:
        """(clients, value per curve...) rows for printing."""
        clients = self.curves[0].clients
        out = []
        for i, n in enumerate(clients):
            out.append(tuple([n] + [self.normalized[c.label][i] for c in self.curves]))
        return out

    def relative_at(self, label: str, n: int) -> float:
        baseline = next(c for c in self.curves if c.label == self.baseline_label)
        i = baseline.clients.index(n)
        return self.normalized[label][i] / self.normalized[self.baseline_label][i]
