"""Experiment harness: the calibrated queueing model and figure runners."""

from repro.harness.experiments import (
    Calibration,
    Figure8Result,
    Figure9Result,
    TpccScale,
    calibrate_system,
    run_figure8,
    run_figure9,
)
from repro.harness.perfmodel import (
    ModelConfig,
    NormalizedFigure,
    ServiceDemands,
    ThroughputCurve,
    solve_throughput,
    sweep,
)

__all__ = [
    "Calibration",
    "Figure8Result",
    "Figure9Result",
    "ModelConfig",
    "NormalizedFigure",
    "ServiceDemands",
    "ThroughputCurve",
    "TpccScale",
    "calibrate_system",
    "run_figure8",
    "run_figure9",
    "solve_throughput",
    "sweep",
]
