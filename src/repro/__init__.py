"""Reproduction of "Azure SQL Database Always Encrypted" (SIGMOD 2020).

The public API mirrors the paper's architecture (Figure 3):

* :func:`repro.client.connect` — the AE-aware driver (trusted),
* :class:`repro.sqlengine.SqlServer` — the untrusted server,
* :class:`repro.enclave.Enclave` — the trusted execution environment,
* :mod:`repro.attestation` — HGS and the chain of trust,
* :mod:`repro.keys` — CMKs, CEKs, and key providers,
* :mod:`repro.tools` — client-side provisioning / encryption tooling,
* :mod:`repro.security` — the strong adversary and leakage profiling,
* :mod:`repro.workloads.tpcc` + :mod:`repro.harness` — the TPC-C
  evaluation of Section 5.

See ``examples/quickstart.py`` for the end-to-end flow.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
