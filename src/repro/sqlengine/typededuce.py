"""Encryption type deduction (Section 4.3).

Encryption types are not declared in the (transparent) input query, so they
are inferred. Following the paper, the deducer builds equivalence classes
of operands with a union-find structure:

* an equality/assignment constraint *merges* the operands' classes (both
  sides of a comparison must share scheme and CEK);
* an operation constraint (equality, range, LIKE, arithmetic, ORDER BY,
  grouping) restricts what the class's resolved type may support, checked
  against the Figure 6 lattice's operation table;
* classes that remain unconstrained resolve to Plaintext — "our preference
  is to solve using the Plaintext type".

The result is exactly the payload of ``sp_describe_parameter_encryption``:
per-parameter encryption types, plus the set of CEKs the enclave will need
to evaluate the query.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import TypeDeductionError
from repro.sqlengine.lattice import (
    GeneralizedType,
    Operation,
    generalize,
    requires_enclave,
    supports,
)
from repro.sqlengine.scope import Scope
from repro.sqlengine.sqlparser import ast
from repro.sqlengine.types import ColumnType, EncryptionInfo, SqlType


@dataclass
class _Class:
    """One union-find equivalence class."""

    encryption: EncryptionInfo | None = None
    known: bool = False                  # encryption field is authoritative
    sql_type: SqlType | None = None
    operations: set[Operation] = field(default_factory=set)
    members: list[str] = field(default_factory=list)


@dataclass
class DeductionResult:
    """The output of encryption type deduction for one statement."""

    # Parameter name → full deduced type (encryption may be None).
    param_types: dict[str, ColumnType]
    # CEKs needed inside the enclave to evaluate this statement.
    enclave_ceks: set[str]

    @property
    def uses_enclave(self) -> bool:
        return bool(self.enclave_ceks)


class UnionFind:
    """Union-find over expression nodes carrying encryption attributes."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._classes: dict[str, _Class] = {}

    def make(self, key: str, encryption: EncryptionInfo | None = None, known: bool = False, sql_type: SqlType | None = None) -> str:
        if key not in self._parent:
            self._parent[key] = key
            self._classes[key] = _Class(
                encryption=encryption, known=known, sql_type=sql_type, members=[key]
            )
        return key

    def find(self, key: str) -> str:
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def cls(self, key: str) -> _Class:
        return self._classes[self.find(key)]

    def union(self, a: str, b: str, context: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        ca, cb = self._classes[ra], self._classes[rb]
        if ca.known and cb.known:
            if ca.encryption != cb.encryption:
                raise TypeDeductionError(
                    f"{context}: operands have incompatible encryption types "
                    f"({_describe(ca.encryption)} vs {_describe(cb.encryption)}); "
                    "both operands of a comparison must share the same CEK and scheme"
                )
        merged = _Class(
            encryption=ca.encryption if ca.known else cb.encryption,
            known=ca.known or cb.known,
            sql_type=ca.sql_type or cb.sql_type,
            operations=ca.operations | cb.operations,
            members=ca.members + cb.members,
        )
        self._parent[rb] = ra
        self._classes[ra] = merged
        del self._classes[rb]

    def restrict(self, key: str, operation: Operation) -> None:
        self.cls(key).operations.add(operation)

    def classes(self) -> list[_Class]:
        return [self._classes[r] for r in set(self.find(k) for k in self._parent)]


def _describe(enc: EncryptionInfo | None) -> str:
    return "Plaintext" if enc is None else str(enc)


def _gtype(enc: EncryptionInfo | None) -> GeneralizedType:
    if enc is None:
        return GeneralizedType.PLAINTEXT
    return generalize(enc.scheme.short_name, enc.enclave_enabled)


class EncryptionTypeDeducer:
    """Runs deduction over a bound-scope AST statement.

    ``allow_enclave_order_by`` enables the paper's future-work extension:
    ORDER BY over enclave-enabled RND columns, evaluated as enclave
    comparisons (same machinery — and same ordering leakage — as range
    predicates). AEv2 as shipped does not support it, so it is off by
    default; the TPC-C benchmark keeps it off to match Section 5.3.
    """

    def __init__(self, scope: Scope, allow_enclave_order_by: bool = False):
        self._scope = scope
        self._uf = UnionFind()
        self._ids = itertools.count()
        self._allow_enclave_order_by = allow_enclave_order_by

    # -- node keys ---------------------------------------------------------------

    def _column_key(self, name: ast.ColumnName) -> str:
        resolved = self._scope.resolve(name)
        key = f"col:{resolved.binding}.{resolved.column.name.lower()}"
        self._uf.make(
            key,
            encryption=resolved.column.column_type.encryption,
            known=True,
            sql_type=resolved.column.column_type.sql_type,
        )
        return key

    def _param_key(self, param: ast.Param) -> str:
        return self._uf.make(f"param:{param.name.lower()}")

    def _fresh_plain(self, label: str) -> str:
        key = f"{label}:{next(self._ids)}"
        return self._uf.make(key, encryption=None, known=True)

    # -- expression walk ------------------------------------------------------------

    def node(self, expr: ast.AstExpr) -> str:
        """Return the union-find key for an expression node, adding constraints."""
        if isinstance(expr, ast.ColumnName):
            return self._column_key(expr)
        if isinstance(expr, ast.Param):
            return self._param_key(expr)
        if isinstance(expr, ast.Literal):
            # Literals are plaintext: the driver cannot transparently
            # encrypt an inline literal, which is why AE requires
            # parameterized queries for encrypted comparisons.
            return self._fresh_plain("lit")
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                key = self.node(expr.operand)
                self._uf.restrict(key, Operation.ARITHMETIC)
                return key
            self.predicate(expr)  # NOT — boolean context
            return self._fresh_plain("bool")
        if isinstance(expr, (ast.LikeOp, ast.BetweenOp, ast.InOp, ast.IsNullOp)):
            self.predicate(expr)
            return self._fresh_plain("bool")
        if isinstance(expr, ast.Aggregate):
            return self._aggregate(expr)
        raise TypeDeductionError(f"cannot deduce over node {type(expr).__name__}")

    def _binary(self, expr: ast.BinaryOp) -> str:
        op = expr.op.upper()
        if op in ("AND", "OR"):
            self.predicate(expr.left)
            self.predicate(expr.right)
            return self._fresh_plain("bool")
        left = self.node(expr.left)
        right = self.node(expr.right)
        if op in ("=", "<>"):
            self._uf.union(left, right, f"equality {expr.op!r}")
            self._uf.restrict(left, Operation.EQUALITY)
            return self._fresh_plain("bool")
        if op in ("<", "<=", ">", ">="):
            self._uf.union(left, right, f"comparison {expr.op!r}")
            self._uf.restrict(left, Operation.RANGE)
            return self._fresh_plain("bool")
        if op in ("+", "-", "*", "/"):
            self._uf.restrict(left, Operation.ARITHMETIC)
            self._uf.restrict(right, Operation.ARITHMETIC)
            # Arithmetic only exists over plaintext; the result is plaintext.
            return self._fresh_plain("arith")
        raise TypeDeductionError(f"unknown operator {expr.op!r}")

    def _aggregate(self, expr: ast.Aggregate) -> str:
        if expr.argument is None:  # COUNT(*) — counts rows, touches no values
            return self._fresh_plain("agg")
        key = self.node(expr.argument)
        if expr.func == "COUNT":
            return self._fresh_plain("agg")
        if expr.func in ("MIN", "MAX"):
            self._uf.restrict(key, Operation.RANGE)
            self._uf.restrict(key, Operation.ORDER_BY)
        else:  # SUM / AVG
            self._uf.restrict(key, Operation.ARITHMETIC)
        return self._fresh_plain("agg")

    def predicate(self, expr: ast.AstExpr) -> None:
        """Walk a boolean-context expression."""
        if isinstance(expr, ast.BinaryOp) and expr.op.upper() in ("AND", "OR"):
            self.predicate(expr.left)
            self.predicate(expr.right)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            self.predicate(expr.operand)
            return
        if isinstance(expr, ast.LikeOp):
            value = self.node(expr.value)
            pattern = self.node(expr.pattern)
            self._uf.union(value, pattern, "LIKE")
            self._uf.restrict(value, Operation.LIKE)
            return
        if isinstance(expr, ast.BetweenOp):
            value = self.node(expr.value)
            low = self.node(expr.low)
            high = self.node(expr.high)
            self._uf.union(value, low, "BETWEEN")
            self._uf.union(value, high, "BETWEEN")
            self._uf.restrict(value, Operation.RANGE)
            return
        if isinstance(expr, ast.InOp):
            value = self.node(expr.value)
            for option in expr.options:
                self._uf.union(value, self.node(option), "IN")
            self._uf.restrict(value, Operation.EQUALITY)
            return
        if isinstance(expr, ast.IsNullOp):
            self.node(expr.value)  # nullness is not hidden by encryption
            return
        self.node(expr)

    def assignment(self, column: ast.ColumnName, expr: ast.AstExpr) -> None:
        """col = expr in UPDATE SET / INSERT: same encryption type."""
        col_key = self._column_key(column)
        expr_key = self.node(expr)
        self._uf.union(col_key, expr_key, f"assignment to {column}")

    def order_by(self, expr: ast.AstExpr) -> None:
        key = self.node(expr)
        if self._allow_enclave_order_by:
            # The extension treats sorting as repeated range comparisons
            # routed through the enclave.
            self._uf.restrict(key, Operation.RANGE)
        else:
            self._uf.restrict(key, Operation.ORDER_BY)

    def group_by(self, expr: ast.AstExpr) -> None:
        key = self.node(expr)
        self._uf.restrict(key, Operation.EQUALITY)

    def projection(self, expr: ast.AstExpr) -> None:
        key = self.node(expr)
        self._uf.restrict(key, Operation.PROJECT)

    # -- solving ---------------------------------------------------------------------

    def solve(self) -> DeductionResult:
        """Check all constraints and extract parameter types + enclave CEKs."""
        param_types: dict[str, ColumnType] = {}
        enclave_ceks: set[str] = set()
        for cls in self._uf.classes():
            # Unknown classes resolve to Plaintext (the paper's preference).
            encryption = cls.encryption if cls.known else None
            gtype = _gtype(encryption)
            for operation in cls.operations:
                if not supports(gtype, operation):
                    raise TypeDeductionError(
                        f"operation {operation.value!r} is not supported on "
                        f"{gtype.value} data (members: {', '.join(cls.members)})"
                    )
                if encryption is not None and requires_enclave(gtype, operation):
                    enclave_ceks.add(encryption.cek_name)
            for member in cls.members:
                if member.startswith("param:"):
                    name = member[len("param:") :]
                    sql_type = cls.sql_type or SqlType("VARCHAR")
                    param_types[name] = ColumnType(sql_type=sql_type, encryption=encryption)
        return DeductionResult(param_types=param_types, enclave_ceks=enclave_ceks)


def deduce(
    stmt: ast.Statement, scope: Scope, allow_enclave_order_by: bool = False
) -> DeductionResult:
    """Run encryption type deduction for a statement against a scope."""
    deducer = EncryptionTypeDeducer(scope, allow_enclave_order_by=allow_enclave_order_by)
    if isinstance(stmt, ast.SelectStmt):
        for item in stmt.items:
            if item.expr is not None:
                deducer.projection(item.expr)
        for join in stmt.joins:
            deducer.predicate(join.condition)
        if stmt.where is not None:
            deducer.predicate(stmt.where)
        for expr in stmt.group_by:
            deducer.group_by(expr)
        for item in stmt.order_by:
            deducer.order_by(item.expr)
    elif isinstance(stmt, ast.InsertStmt):
        table = scope.bindings()[0][1]
        columns = stmt.columns or tuple(table.column_names())
        for row in stmt.rows:
            if len(row) != len(columns):
                raise TypeDeductionError(
                    f"INSERT row has {len(row)} values for {len(columns)} columns"
                )
            for column_name, expr in zip(columns, row):
                deducer.assignment(ast.ColumnName(column_name), expr)
    elif isinstance(stmt, ast.UpdateStmt):
        for column_name, expr in stmt.assignments:
            deducer.assignment(ast.ColumnName(column_name), expr)
        if stmt.where is not None:
            deducer.predicate(stmt.where)
    elif isinstance(stmt, ast.DeleteStmt):
        if stmt.where is not None:
            deducer.predicate(stmt.where)
    return deducer.solve()
