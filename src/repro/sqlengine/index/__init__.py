"""Indexes: a comparator-parameterized B+-tree (Section 3.1)."""

from repro.sqlengine.index.btree import BPlusTree
from repro.sqlengine.index.comparators import (
    CiphertextBinaryComparator,
    CountingComparator,
    EnclaveComparator,
    KeyComparator,
    PlaintextComparator,
)

__all__ = [
    "BPlusTree",
    "CiphertextBinaryComparator",
    "CountingComparator",
    "EnclaveComparator",
    "KeyComparator",
    "PlaintextComparator",
]
